//! Criterion microbenchmarks: the *real* (wall-clock) overhead of the
//! reproduction's mechanisms, independent of the virtual-time calibration.
//!
//! These substantiate the architectural claims directly on today's
//! hardware: the dispatcher's fast path is procedure-call-grade; guard
//! evaluation is linear (the §5.5 ablation); dynamic linking is cheap;
//! externalized references and the collector's allocation path are
//! constant-time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spin_core::{Dispatcher, Identity, Interface, NameServer};
use spin_rt::KernelHeap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    // Ablation: the direct-call fast path vs the guarded slow path.
    let d = Dispatcher::unmetered();
    let (fast, owner) = d.define::<u64, u64>("fast", Identity::kernel("b"));
    owner.set_primary(|x| x + 1).expect("fresh");
    g.bench_function("fast_path_single_handler", |b| {
        b.iter(|| fast.raise(black_box(1)).expect("ok"))
    });

    for guards in [1usize, 10, 50] {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("guarded", Identity::kernel("b"));
        owner.set_primary(|x| x + 1).expect("fresh");
        for _ in 0..guards {
            ev.install_guarded(Identity::extension("w"), |_| false, |x| *x)
                .expect("ok");
        }
        g.bench_with_input(BenchmarkId::new("guard_scan", guards), &guards, |b, _| {
            b.iter(|| ev.raise(black_box(1)).expect("ok"))
        });
    }

    // Baseline: a plain dynamic call, for the "procedure-call-grade" claim.
    let f: Arc<dyn Fn(u64) -> u64 + Send + Sync> = Arc::new(|x| x + 1);
    g.bench_function("plain_indirect_call", |b| b.iter(|| f(black_box(1))));
    g.finish();
}

/// Ablation (DESIGN.md #5): the snapshot raise path vs the locked-clone
/// baseline it replaced. `raise` resolves through the handle's cached weak
/// reference and clones one `Arc` snapshot; `raise_locked_baseline`
/// re-emulates the old path — global-table lookup, handler-vector deep
/// clone under the event mutex, a second lock for statistics. Identical
/// semantics and virtual-time charges; the wall-clock gap is the payoff.
fn bench_dispatch_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_snapshot");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    // Fast path: one unguarded synchronous handler.
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("fast", Identity::kernel("b"));
    owner.set_primary(|x| x + 1).expect("fresh");
    g.bench_function("snapshot/fast_path", |b| {
        b.iter(|| ev.raise(black_box(1)).expect("ok"))
    });
    g.bench_function("locked_clone/fast_path", |b| {
        b.iter(|| d.raise_locked_baseline(&ev, black_box(1)).expect("ok"))
    });

    // Slow path with guard load: the deep clone the baseline pays per
    // raise grows with installed handlers; the snapshot does not.
    for guards in [10usize, 50] {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("guarded", Identity::kernel("b"));
        owner.set_primary(|x| x + 1).expect("fresh");
        for _ in 0..guards {
            ev.install_guarded(Identity::extension("w"), |_| false, |x| *x)
                .expect("ok");
        }
        g.bench_with_input(
            BenchmarkId::new("snapshot/guards", guards),
            &guards,
            |b, _| b.iter(|| ev.raise(black_box(1)).expect("ok")),
        );
        g.bench_with_input(
            BenchmarkId::new("locked_clone/guards", guards),
            &guards,
            |b, _| b.iter(|| d.raise_locked_baseline(&ev, black_box(1)).expect("ok")),
        );
    }
    g.finish();
}

fn bench_linking(c: &mut Criterion) {
    let mut g = c.benchmark_group("linking");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    for imports in [1usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("resolve", imports), &imports, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut iface = Interface::new("I");
                    for i in 0..n {
                        iface = iface.export(&format!("s{i}"), Arc::new(i as u64));
                    }
                    let source = spin_core::Domain::create_from_module("source", vec![iface]);
                    let mut builder = spin_core::ObjectFileBuilder::new("client");
                    for i in 0..n {
                        let _slot = builder.import::<u64>("I", &format!("s{i}"));
                    }
                    (
                        source,
                        spin_core::Domain::create(builder.sign()).expect("signed"),
                    )
                },
                |(source, target)| spin_core::Domain::resolve(&source, &target).expect("links"),
            )
        });
    }

    g.bench_function("nameserver_import", |b| {
        let ns = NameServer::new();
        let d = spin_core::Domain::create_from_module(
            "m",
            vec![Interface::new("Svc").export("service", Arc::new(7u64))],
        );
        ns.register("Service", d, Identity::kernel("m"))
            .expect("fresh");
        let who = Identity::extension("client");
        b.iter(|| {
            black_box(ns.import_typed::<u64>(&who).expect("ok"));
        })
    });
    g.finish();
}

fn bench_capabilities(c: &mut Criterion) {
    let mut g = c.benchmark_group("capabilities");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));
    let table = spin_core::ExternTable::new();
    let handle = table.externalize(Arc::new(42u64));
    g.bench_function("extern_recover", |b| {
        b.iter(|| table.recover::<u64>(black_box(handle)).expect("live"))
    });
    g.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    g.bench_function("alloc", |b| {
        let heap = KernelHeap::with_capacity(64 * 1024 * 1024);
        b.iter(|| heap.alloc(black_box(7u64)).expect("capacity"))
    });

    for live in [0usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("collect_live", live), &live, |b, &n| {
            b.iter_with_setup(
                || {
                    let heap = KernelHeap::new();
                    let roots: Vec<_> = (0..n)
                        .map(|i| heap.alloc_root(i as u64).expect("fits"))
                        .collect();
                    for i in 0..1000u64 {
                        heap.alloc(i).expect("fits"); // garbage
                    }
                    (heap, roots)
                },
                |(heap, _roots)| heap.collect(),
            )
        });
    }

    // Ablation (DESIGN.md #4): pinned ambiguous roots promote pages in
    // place instead of copying — collection gets *cheaper* per survivor,
    // at the price of conservatively retained same-page garbage.
    for pinned in [0usize, 100, 1000] {
        g.bench_with_input(
            BenchmarkId::new("collect_pinned", pinned),
            &pinned,
            |b, &n| {
                b.iter_with_setup(
                    || {
                        let heap = KernelHeap::new();
                        let pins: Vec<_> = (0..n)
                            .map(|i| {
                                let gc = heap.alloc(i as u64).expect("fits");
                                heap.pin_ambiguous(gc)
                            })
                            .collect();
                        for i in 0..1000u64 {
                            heap.alloc(i).expect("fits"); // garbage
                        }
                        (heap, pins)
                    },
                    |(heap, _pins)| heap.collect(),
                )
            },
        );
    }
    g.finish();
}

/// Ablation (DESIGN.md #6): the cost of *being observable*. The obs hook
/// points compile to one relaxed atomic load when no hook is installed
/// (`OnceLock::get`), one load plus a counter bump when wired with the
/// recorder off, and additionally a ring push when recording. The
/// unwired/wired-off gap is the price every dispatch pays for the
/// subsystem existing; it must be noise-level for the cost-model
/// invariant to be honest in wall-clock terms too.
fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    let raise_bench =
        |g: &mut criterion::BenchmarkGroup<'_>, name: &str, obs: Option<spin_obs::Obs>| {
            let d = Dispatcher::unmetered();
            if let Some(obs) = &obs {
                d.set_obs(obs.domain("dispatcher"));
            }
            let (ev, owner) = d.define::<u64, u64>("probe", Identity::kernel("b"));
            owner.set_primary(|x| x + 1).expect("fresh");
            g.bench_function(name, |b| b.iter(|| ev.raise(black_box(1)).expect("ok")));
        };
    raise_bench(&mut g, "raise/unwired", None);
    let off = spin_obs::Obs::new(65536);
    off.set_recording(false);
    raise_bench(&mut g, "raise/wired_recorder_off", Some(off));
    raise_bench(
        &mut g,
        "raise/recording_64k",
        Some(spin_obs::Obs::new(65536)),
    );
    // Capacity 1 maximizes drop-oldest churn: the worst-case ring cost.
    raise_bench(&mut g, "raise/recording_cap1", Some(spin_obs::Obs::new(1)));

    // The raw hook primitives, isolated from dispatch.
    let obs = spin_obs::Obs::new(65536);
    let hook = obs.domain("net");
    g.bench_function("hook/counter_bump", |b| {
        b.iter(|| {
            hook.counters
                .packets_sent
                .fetch_add(black_box(1), std::sync::atomic::Ordering::Relaxed)
        })
    });
    g.bench_function("hook/trace_push", |b| {
        b.iter(|| hook.trace(spin_obs::TraceKind::PacketTx, black_box(60), 0))
    });
    obs.set_recording(false);
    g.bench_function("hook/trace_gated_off", |b| {
        b.iter(|| hook.trace(spin_obs::TraceKind::PacketTx, black_box(60), 0))
    });
    g.finish();
}

/// Ablation (DESIGN.md #7): the cost of *being containable*. Every
/// synchronous handler invocation now runs under `catch_unwind`, and the
/// fault-injection hook point costs one relaxed atomic load when a plan
/// is wired but disabled, a seeded hash draw when armed at zero rates,
/// and nothing at all when unwired. The fault-path-off raise overhead —
/// the unwired/wired-disabled gap — is the price every dispatch pays for
/// containment existing; EXPERIMENTS.md records it.
fn bench_fault(c: &mut Criterion) {
    use spin_fault::{FaultPlan, SiteConfig, SITE_DISPATCH};

    let mut g = c.benchmark_group("fault");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    let raise_bench =
        |g: &mut criterion::BenchmarkGroup<'_>, name: &str, plan: Option<FaultPlan>| {
            let d = Dispatcher::unmetered();
            if let Some(p) = &plan {
                d.set_fault_hook(p.hook(SITE_DISPATCH));
            }
            let (ev, owner) = d.define::<u64, u64>("probe", Identity::kernel("b"));
            owner.set_primary(|x| x + 1).expect("fresh");
            g.bench_function(name, |b| b.iter(|| ev.raise(black_box(1)).expect("ok")));
        };
    raise_bench(&mut g, "raise/unwired", None);
    let disabled = FaultPlan::new(0);
    disabled.set_enabled(false);
    raise_bench(&mut g, "raise/wired_disabled", Some(disabled));
    // Armed with no rates configured: the full decision path, no firing.
    raise_bench(&mut g, "raise/armed_zero_rates", Some(FaultPlan::new(0)));

    // The contained-fault slow case: a handler that panics on every
    // raise, with the breaker sinking (but never tripping on) the fault.
    {
        let d = Dispatcher::unmetered();
        let _c = spin_core::Containment::install(
            &d,
            None,
            spin_core::ContainmentPolicy {
                strikes: u32::MAX,
                window: u64::MAX,
                trips_to_quarantine: u32::MAX,
            },
        );
        let (ev, owner) = d.define::<u64, u64>("faulty", Identity::kernel("b"));
        owner.set_primary(|x| x + 1).expect("fresh");
        ev.install(Identity::extension("buggy"), |_| -> u64 { panic!("bug") })
            .expect("ok");
        // The default panic hook would print a backtrace per contained
        // panic; silence it for the duration of this measurement.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        g.bench_function("raise/contained_panic", |b| {
            b.iter(|| ev.raise(black_box(1)).expect("primary result survives"))
        });
        std::panic::set_hook(prev_hook);
    }

    // The raw draw primitives, isolated from dispatch.
    let disabled = FaultPlan::new(0);
    disabled.set_enabled(false);
    let off_hook = disabled.hook(SITE_DISPATCH);
    g.bench_function("hook/draw_disabled", |b| b.iter(|| off_hook.draw()));
    let armed = FaultPlan::new(0);
    armed.configure(SITE_DISPATCH, SiteConfig::default());
    let on_hook = armed.hook(SITE_DISPATCH);
    g.bench_function("hook/draw_armed_zero_rates", |b| b.iter(|| on_hook.draw()));
    g.finish();
}

/// Ablation (DESIGN.md #12): the cost of *being meterable*. An event
/// bound to a quota cell pays the cell's admission CAS and window probe
/// on every raise even while the budgets are zero-valued (unlimited) and
/// nothing ever refuses; an unbound event pays one relaxed atomic load
/// to see no cell is bound. The unbound/bound-unlimited gap is the price
/// every dispatch pays for overload containment existing; EXPERIMENTS.md
/// records it. The refusal rows price the cheap path callers are shunted
/// onto once a budget trips.
fn bench_quota(c: &mut Criterion) {
    use spin_core::{QuotaLedger, QuotaSpec};

    let mut g = c.benchmark_group("quota");
    g.measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150));

    let raise_bench = |g: &mut criterion::BenchmarkGroup<'_>, name: &str, metered: bool| {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("probe", Identity::kernel("b"));
        owner.set_primary(|x| x + 1).expect("fresh");
        if metered {
            let ledger = QuotaLedger::new();
            let cell = ledger.register("tenant", QuotaSpec::default());
            assert_eq!(ev.bind_quota(cell), Ok(true));
        }
        g.bench_function(name, |b| b.iter(|| ev.raise(black_box(1)).expect("ok")));
    };
    raise_bench(&mut g, "raise/unbound", false);
    raise_bench(&mut g, "raise/bound_unlimited", true);

    // The refused paths: a throttled raise (Normal, budget spent) and a
    // shed raise (Shedding) never reach the handler at all.
    let refused_bench = |g: &mut criterion::BenchmarkGroup<'_>, name: &str, shed: bool| {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("probe", Identity::kernel("b"));
        owner.set_primary(|x| x + 1).expect("fresh");
        let ledger = QuotaLedger::new();
        let cell = ledger.register(
            "tenant",
            QuotaSpec {
                window: u64::MAX,
                window_vt_budget: 1,
                // Trip counts saturate far below these bounds, so the
                // measured raises stay on one ladder rung throughout.
                shed_after_trips: if shed { 1 } else { u32::MAX },
                quarantine_after_sheds: u32::MAX,
                ..QuotaSpec::default()
            },
        );
        cell.admit(0).expect("budget fresh");
        cell.complete(1); // spend the window budget
        assert_eq!(ev.bind_quota(cell), Ok(true));
        g.bench_function(name, |b| {
            b.iter(|| ev.raise(black_box(1)).expect_err("refused"))
        });
    };
    refused_bench(&mut g, "raise/throttled", false);
    refused_bench(&mut g, "raise/shed", true);

    // The raw admission primitive, isolated from dispatch.
    let ledger = QuotaLedger::new();
    let cell = ledger.register("tenant", QuotaSpec::default());
    g.bench_function("cell/admit_complete_unlimited", |b| {
        b.iter(|| {
            cell.admit(black_box(7)).expect("unlimited");
            cell.complete(1);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_dispatch_snapshot,
    bench_linking,
    bench_capabilities,
    bench_gc,
    bench_obs,
    bench_fault,
    bench_quota
);
criterion_main!(benches);
