//! The Table 4 virtual-memory workloads (Appel & Li), SPIN paths.
//!
//! "Table 4 shows the time to execute several commonly referenced virtual
//! memory benchmarks" (§5.2):
//!
//! * **Dirty** — query the status of a virtual page (an interface neither
//!   DEC OSF/1 nor Mach provides);
//! * **Trap** — latency between a page fault and the handler executing;
//! * **Fault** — perceived latency of a faulting access: reflect the
//!   fault, enable access in the handler, resume the faulting thread;
//! * **Prot1 / Prot100 / Unprot100** — protection changes over 1 and 100
//!   pages;
//! * **Appel1** — fault on a protected page, resolve it in the handler and
//!   protect another page;
//! * **Appel2** — protect 100 pages, fault on each, resolving in the
//!   handler (reported per page).
//!
//! "SPIN uses kernel extensions to define application-specific system
//! calls for virtual memory management" — each workload here enters
//! through the system-call trap path and runs the extension in the kernel.

use crate::phys::{PhysAddrService, PhysAttrib, PhysRegion};
use crate::translation::{FaultAction, FaultInfo, TranslationService};
use crate::virt::{VirtAddrService, VirtRegion};
use spin_check::sync::Mutex;
use spin_core::{Dispatcher, Identity};
use spin_sal::mmu::{Access, ContextId};
use spin_sal::{Clock, MachineProfile, Nanos, PhysMem, Protection, SimBoard, PAGE_SHIFT};
use std::sync::Arc;

/// A rigged kernel with a 100-page application region, for the Table 4
/// measurements.
pub struct VmWorkbench {
    pub clock: Clock,
    pub profile: Arc<MachineProfile>,
    pub trans: TranslationService,
    pub phys: PhysAddrService,
    pub virt: VirtAddrService,
    pub mem: PhysMem,
    pub ctx: ContextId,
    pub region: Arc<VirtRegion>,
    #[allow(dead_code)]
    backing: Arc<PhysRegion>,
}

/// Pages in the benchmark region (the paper uses 100).
pub const BENCH_PAGES: u64 = 100;

impl Default for VmWorkbench {
    fn default() -> Self {
        Self::new()
    }
}

impl VmWorkbench {
    /// Builds the workbench: one context with 100 pages mapped read-write.
    pub fn new() -> VmWorkbench {
        let board = SimBoard::new();
        let host = board.new_host(256);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let trans = TranslationService::new(
            host.mmu.clone(),
            board.clock.clone(),
            board.profile.clone(),
            &disp,
        );
        let phys = PhysAddrService::new(host.mem.clone(), &disp);
        let virt = VirtAddrService::new();
        let ctx = trans.create();
        let region = virt.allocate(BENCH_PAGES).unwrap();
        let backing = phys
            .allocate(BENCH_PAGES as usize, PhysAttrib::default())
            .unwrap();
        trans
            .add_mapping(ctx, &region, &backing, Protection::READ_WRITE)
            .unwrap();
        VmWorkbench {
            clock: board.clock.clone(),
            profile: board.profile.clone(),
            trans,
            phys,
            virt,
            mem: host.mem.clone(),
            ctx,
            region,
            backing,
        }
    }

    fn page(&self, i: u64) -> u64 {
        self.region.base() + (i << PAGE_SHIFT)
    }

    /// The application-specific system-call crossing (user → extension).
    fn syscall_crossing(&self) {
        let p = &self.profile;
        self.clock.advance(
            p.trap_entry
                + p.event_raise_base
                + p.guard_eval
                + p.handler_invoke
                + p.inter_module_call,
        );
    }

    fn syscall_return(&self) {
        self.clock.advance(self.profile.trap_exit);
    }

    /// Per-call VM service entry work (capability and region validation).
    fn vm_entry(&self) {
        self.clock.advance(self.profile.vm_call_fixed);
    }

    /// **Dirty**: query the dirty state of a page from an extension.
    pub fn dirty_ns(&self) -> Nanos {
        let t0 = self.clock.now();
        let _ = self.trans.examine(self.ctx, self.page(0)).unwrap();
        self.clock.now() - t0
    }

    /// **Trap**: fault-to-handler latency.
    pub fn trap_ns(&self) -> Nanos {
        self.trans
            .protect_page(self.ctx, self.page(1), Protection::NONE)
            .unwrap();
        let entered = Arc::new(Mutex::new(0u64));
        let (e2, clock2) = (entered.clone(), self.clock.clone());
        let profile2 = self.profile.clone();
        let trans2 = self.trans.clone();
        let va = self.page(1);
        let id = self
            .trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("trapbench"),
                move |i: &FaultInfo| i.va == va,
                move |i: &FaultInfo| {
                    *e2.lock() = clock2.now();
                    clock2.advance(profile2.vm_call_fixed);
                    trans2
                        .protect_page(i.ctx, i.va, Protection::READ_WRITE)
                        .unwrap();
                    FaultAction::Resolved
                },
            )
            .unwrap();
        let t0 = self.clock.now();
        self.trans.access(self.ctx, va, Access::Read).unwrap();
        let _ = id;
        let handler_at = *entered.lock();
        handler_at - t0
    }

    /// **Fault**: full perceived fault latency (resolve + resume).
    pub fn fault_ns(&self) -> Nanos {
        let va = self.page(2);
        self.trans
            .protect_page(self.ctx, va, Protection::NONE)
            .unwrap();
        let trans2 = self.trans.clone();
        let (clock2, profile2) = (self.clock.clone(), self.profile.clone());
        self.trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("faultbench"),
                move |i: &FaultInfo| i.va == va,
                move |i: &FaultInfo| {
                    clock2.advance(profile2.vm_call_fixed);
                    trans2
                        .protect_page(i.ctx, i.va, Protection::READ_WRITE)
                        .unwrap();
                    FaultAction::Resolved
                },
            )
            .unwrap();
        let t0 = self.clock.now();
        self.trans.access(self.ctx, va, Access::Read).unwrap();
        self.clock.now() - t0
    }

    /// **Prot1**: one protection increase through the app-specific syscall.
    pub fn prot1_ns(&self) -> Nanos {
        let t0 = self.clock.now();
        self.syscall_crossing();
        self.vm_entry();
        self.trans
            .protect_page(self.ctx, self.page(3), Protection::READ)
            .unwrap();
        self.syscall_return();
        self.clock.now() - t0
    }

    /// **Prot100**: protect 100 pages in one call.
    pub fn prot100_ns(&self) -> Nanos {
        let t0 = self.clock.now();
        self.syscall_crossing();
        self.vm_entry();
        for i in 0..BENCH_PAGES {
            self.trans
                .protect_page(self.ctx, self.page(i), Protection::READ)
                .unwrap();
        }
        self.syscall_return();
        self.clock.now() - t0
    }

    /// **Unprot100**: restore 100 pages to read-write in one call. "SPIN's
    /// extension does not lazily evaluate the request, but enables the
    /// access as requested" — so it costs the same as Prot100.
    pub fn unprot100_ns(&self) -> Nanos {
        let t0 = self.clock.now();
        self.syscall_crossing();
        self.vm_entry();
        for i in 0..BENCH_PAGES {
            self.trans
                .protect_page(self.ctx, self.page(i), Protection::READ_WRITE)
                .unwrap();
        }
        self.syscall_return();
        self.clock.now() - t0
    }

    /// **Appel1**: fault on a protected page; in the handler, resolve it
    /// and protect another page.
    pub fn appel1_ns(&self) -> Nanos {
        let va = self.page(10);
        let other = self.page(11);
        self.trans
            .protect_page(self.ctx, va, Protection::NONE)
            .unwrap();
        let trans2 = self.trans.clone();
        let (clock2, profile2) = (self.clock.clone(), self.profile.clone());
        self.trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("appel1"),
                move |i: &FaultInfo| i.va == va,
                move |i: &FaultInfo| {
                    clock2.advance(2 * profile2.vm_call_fixed);
                    trans2
                        .protect_page(i.ctx, i.va, Protection::READ_WRITE)
                        .unwrap();
                    trans2.protect_page(i.ctx, other, Protection::NONE).unwrap();
                    FaultAction::Resolved
                },
            )
            .unwrap();
        let t0 = self.clock.now();
        self.trans.access(self.ctx, va, Access::Write).unwrap();
        self.clock.now() - t0
    }

    /// **Appel2**: protect 100 pages, fault on each, resolving in the
    /// handler. Returns the average cost **per page**.
    pub fn appel2_ns(&self) -> Nanos {
        let base = self.region.base();
        let end = base + (BENCH_PAGES << PAGE_SHIFT);
        let trans2 = self.trans.clone();
        let (clock2, profile2) = (self.clock.clone(), self.profile.clone());
        self.trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("appel2"),
                move |i: &FaultInfo| i.va >= base && i.va < end,
                move |i: &FaultInfo| {
                    clock2.advance(profile2.vm_call_fixed);
                    trans2
                        .protect_page(i.ctx, i.va, Protection::READ_WRITE)
                        .unwrap();
                    FaultAction::Resolved
                },
            )
            .unwrap();
        let t0 = self.clock.now();
        self.syscall_crossing();
        self.vm_entry();
        for i in 0..BENCH_PAGES {
            self.trans
                .protect_page(self.ctx, self.page(i), Protection::NONE)
                .unwrap();
        }
        self.syscall_return();
        for i in 0..BENCH_PAGES {
            self.trans
                .access(self.ctx, self.page(i), Access::Write)
                .unwrap();
        }
        (self.clock.now() - t0) / BENCH_PAGES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_is_cheapest_of_all() {
        let w = VmWorkbench::new();
        let dirty = w.dirty_ns();
        assert!(dirty < 3_000, "Dirty = {dirty} ns, paper says 2 µs");
    }

    #[test]
    fn trap_is_less_than_fault() {
        let w = VmWorkbench::new();
        let trap = w.trap_ns();
        let w2 = VmWorkbench::new();
        let fault = w2.fault_ns();
        assert!(trap < fault, "trap {trap} must undercut fault {fault}");
        // Paper: Trap 7 µs, Fault 29 µs; we assert the band loosely.
        assert!((1_000..15_000).contains(&trap), "Trap = {trap} ns");
        assert!((3_000..40_000).contains(&fault), "Fault = {fault} ns");
    }

    #[test]
    fn prot100_scales_roughly_linearly() {
        let w = VmWorkbench::new();
        let p1 = w.prot1_ns();
        let p100 = w.prot100_ns();
        assert!(p100 > 10 * p1, "Prot100 {p100} vs Prot1 {p1}");
        assert!(p100 < 200 * p1);
    }

    #[test]
    fn unprot100_equals_prot100_no_lazy_evaluation() {
        let w = VmWorkbench::new();
        let p = w.prot100_ns();
        let u = w.unprot100_ns();
        let ratio = p as f64 / u as f64;
        assert!((0.9..1.1).contains(&ratio), "Prot100 {p} vs Unprot100 {u}");
    }

    #[test]
    fn appel1_costs_more_than_a_plain_fault() {
        let w = VmWorkbench::new();
        let fault = w.fault_ns();
        let w2 = VmWorkbench::new();
        let appel1 = w2.appel1_ns();
        assert!(appel1 >= fault, "Appel1 {appel1} vs Fault {fault}");
    }

    #[test]
    fn appel2_per_page_is_fault_scale() {
        let w = VmWorkbench::new();
        let per_page = w.appel2_ns();
        assert!(
            (3_000..40_000).contains(&per_page),
            "Appel2 = {per_page} ns/page"
        );
    }
}
