//! The translation service (Figure 3, `INTERFACE Translation`).
//!
//! "The translation service is used to express the relationship between
//! virtual addresses and physical memory. This service interprets
//! references to both virtual and physical addresses, constructs mappings
//! between the two, and installs the mappings into the processor's MMU.
//! The translation service raises a set of events that correspond to
//! various exceptional MMU conditions" (§4.1):
//!
//! * `Translation.BadAddress` — access to an unallocated virtual address,
//! * `Translation.PageNotPresent` — access to an allocated, unmapped page,
//! * `Translation.ProtectionFault` — access forbidden by the protection.
//!
//! "Implementors of higher level memory management abstractions can use
//! these events to define services, such as demand paging \[or\]
//! copy-on-write" — see `spin_vm::pager` and `spin_vm::address_space`.

use crate::phys::{PhysError, PhysRegion};
use crate::virt::VirtRegion;
use spin_check::sync::Mutex;
use spin_check::sync::Ordering;
use spin_core::hooks::HookSlot;
use spin_core::{Dispatcher, Event, EventOwner, Identity};
use spin_obs::{ObsHook, TraceKind};
use spin_sal::mmu::{Access, ContextId, MmuFault, Pte};
use spin_sal::{Clock, FrameId, MachineProfile, Mmu, Protection, PAGE_SHIFT};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Information passed to fault handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInfo {
    pub ctx: ContextId,
    pub va: u64,
    pub access: Access,
}

/// What a fault handler decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The handler repaired the mapping; retry the access.
    Resolved,
    /// The access is genuinely illegal; fail it.
    Fail,
}

/// Errors from the translation service and the access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// No context with that id.
    NoSuchContext,
    /// Virtual and physical regions differ in page count.
    SizeMismatch { virt_pages: u64, phys_pages: usize },
    /// A capability was stale.
    Stale,
    /// The fault handlers failed (or declined) to resolve an access.
    Unresolved { info: FaultInfo, kind: FaultKind },
}

impl From<PhysError> for VmError {
    fn from(_: PhysError) -> Self {
        VmError::Stale
    }
}

/// Which exceptional condition a fault was classified as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    BadAddress,
    PageNotPresent,
    ProtectionFault,
}

/// The owner capability of one fault event.
type FaultOwner = EventOwner<FaultInfo, FaultAction>;

/// The three fault events, exported as a bundle.
#[derive(Clone)]
pub struct TranslationEvents {
    pub page_not_present: Event<FaultInfo, FaultAction>,
    pub bad_address: Event<FaultInfo, FaultAction>,
    pub protection_fault: Event<FaultInfo, FaultAction>,
}

struct CtxState {
    /// Virtual ranges registered (reserved or mapped) in this context;
    /// an access outside them is `BadAddress`.
    ranges: Vec<(u64, u64)>, // (base, end)
}

struct TransState {
    contexts: HashMap<ContextId, CtxState>,
    /// Reverse map: frame → mappings, used to invalidate on reclaim.
    rmap: BTreeMap<FrameId, BTreeSet<(ContextId, u64)>>,
}

/// The translation service for one host.
#[derive(Clone)]
pub struct TranslationService {
    mmu: Mmu,
    clock: Clock,
    profile: Arc<MachineProfile>,
    state: Arc<Mutex<TransState>>,
    events: TranslationEvents,
    /// Keeps the primary-implementation capabilities alive (and private).
    #[allow(dead_code)]
    owners: Arc<(FaultOwner, FaultOwner, FaultOwner)>,
    /// Observability hook (vm domain): absent until wired, and the fault
    /// path then pays one atomic load. Charges zero virtual time.
    obs: Arc<HookSlot<ObsHook>>,
}

impl TranslationService {
    /// Creates the service over a host MMU and defines the fault events.
    // uncharged: service construction is control-plane.
    pub fn new(
        mmu: Mmu,
        clock: Clock,
        profile: Arc<MachineProfile>,
        dispatcher: &Dispatcher,
    ) -> TranslationService {
        let ident = Identity::kernel("Translation");
        let (pnp, pnp_o) = dispatcher
            .define::<FaultInfo, FaultAction>("Translation.PageNotPresent", ident.clone());
        let (bad, bad_o) =
            dispatcher.define::<FaultInfo, FaultAction>("Translation.BadAddress", ident.clone());
        let (prot, prot_o) =
            dispatcher.define::<FaultInfo, FaultAction>("Translation.ProtectionFault", ident);
        // Default implementations fail the access; extensions may install
        // handlers that resolve specific faults.
        pnp_o
            .set_primary(|_| FaultAction::Fail)
            .expect("fresh event");
        bad_o
            .set_primary(|_| FaultAction::Fail)
            .expect("fresh event");
        prot_o
            .set_primary(|_| FaultAction::Fail)
            .expect("fresh event");
        TranslationService {
            mmu,
            clock,
            profile,
            state: Arc::new(Mutex::new(TransState {
                contexts: HashMap::new(),
                rmap: BTreeMap::new(),
            })),
            events: TranslationEvents {
                page_not_present: pnp,
                bad_address: bad,
                protection_fault: prot,
            },
            owners: Arc::new((pnp_o, bad_o, prot_o)),
            obs: Arc::new(HookSlot::new()),
        }
    }

    /// The fault events (for extension handler installation).
    // uncharged: accessor.
    pub fn events(&self) -> &TranslationEvents {
        &self.events
    }

    /// Wires the observability subsystem: delivered faults are traced and
    /// accounted to the vm domain. One-shot; charges zero virtual time.
    // uncharged: one-shot control-plane wiring.
    pub fn set_obs(&self, hook: ObsHook) {
        let _ = self.obs.set(hook);
    }

    /// `Translation.Create`: a new addressing context.
    // charged: in the Mmu (pte_update per context creation).
    pub fn create(&self) -> ContextId {
        let id = self.mmu.create_context();
        self.state
            .lock()
            .contexts
            .insert(id, CtxState { ranges: Vec::new() });
        id
    }

    /// `Translation.Destroy`.
    // charged: in the Mmu (tlb_invalidate on context teardown).
    pub fn destroy(&self, ctx: ContextId) -> Result<(), VmError> {
        self.state
            .lock()
            .contexts
            .remove(&ctx)
            .ok_or(VmError::NoSuchContext)?;
        self.mmu
            .destroy_context(ctx)
            .map_err(|_| VmError::NoSuchContext)?;
        let mut st = self.state.lock();
        for set in st.rmap.values_mut() {
            set.retain(|&(c, _)| c != ctx);
        }
        Ok(())
    }

    /// Registers a virtual region with a context *without mapping it*, so
    /// accesses fault as `PageNotPresent` rather than `BadAddress` (the
    /// hook demand paging hangs off).
    // uncharged: bookkeeping only; the later fault/mapping operations carry the charges.
    pub fn reserve(&self, ctx: ContextId, virt: &Arc<VirtRegion>) -> Result<(), VmError> {
        if !virt.is_live() {
            return Err(VmError::Stale);
        }
        let mut st = self.state.lock();
        let c = st.contexts.get_mut(&ctx).ok_or(VmError::NoSuchContext)?;
        c.ranges.push((virt.base(), virt.end()));
        Ok(())
    }

    /// `Translation.AddMapping`: maps `virt` onto `phys` page-for-page with
    /// `prot` in `ctx`.
    // charged: in the Mmu (pte_update per installed page).
    pub fn add_mapping(
        &self,
        ctx: ContextId,
        virt: &Arc<VirtRegion>,
        phys: &Arc<PhysRegion>,
        prot: Protection,
    ) -> Result<(), VmError> {
        if !virt.is_live() {
            return Err(VmError::Stale);
        }
        let frames: Vec<FrameId> = phys.with_frames(|f| f.to_vec())?;
        if virt.pages() != frames.len() as u64 {
            return Err(VmError::SizeMismatch {
                virt_pages: virt.pages(),
                phys_pages: frames.len(),
            });
        }
        {
            let mut st = self.state.lock();
            let c = st.contexts.get_mut(&ctx).ok_or(VmError::NoSuchContext)?;
            if !c
                .ranges
                .iter()
                .any(|&(b, e)| b == virt.base() && e == virt.end())
            {
                c.ranges.push((virt.base(), virt.end()));
            }
            for (i, &frame) in frames.iter().enumerate() {
                st.rmap
                    .entry(frame)
                    .or_default()
                    .insert((ctx, virt.vpn(i as u64)));
            }
        }
        for (i, &frame) in frames.iter().enumerate() {
            self.mmu
                .install(ctx, virt.vpn(i as u64), frame, prot)
                .map_err(|_| VmError::NoSuchContext)?;
        }
        Ok(())
    }

    /// Maps a single page of a region (used by fault handlers).
    // charged: in the Mmu (pte_update for the installed page).
    pub fn map_page(
        &self,
        ctx: ContextId,
        vpn: u64,
        frame: FrameId,
        prot: Protection,
    ) -> Result<(), VmError> {
        self.state
            .lock()
            .rmap
            .entry(frame)
            .or_default()
            .insert((ctx, vpn));
        self.mmu
            .install(ctx, vpn, frame, prot)
            .map_err(|_| VmError::NoSuchContext)
    }

    /// `Translation.RemoveMapping` for a whole region.
    // charged: in the Mmu (pte_update + tlb_invalidate per removed page).
    pub fn remove_mapping(&self, ctx: ContextId, virt: &Arc<VirtRegion>) -> Result<(), VmError> {
        for i in 0..virt.pages() {
            let vpn = virt.vpn(i);
            if let Ok(Some(pte)) = self.mmu.remove(ctx, vpn) {
                let mut st = self.state.lock();
                if let Some(set) = st.rmap.get_mut(&pte.frame) {
                    set.remove(&(ctx, vpn));
                }
            }
        }
        Ok(())
    }

    /// `Translation.ExamineMapping`: the installed PTE for `va`, if any.
    /// This is the paper's `Dirty` query path (Table 4) — a direct service
    /// call that neither OSF/1 nor Mach can express.
    pub fn examine(&self, ctx: ContextId, va: u64) -> Result<Option<Pte>, VmError> {
        self.clock
            .advance(self.profile.inter_module_call + self.profile.pmap_op);
        self.mmu
            .examine(ctx, va >> PAGE_SHIFT)
            .map_err(|_| VmError::NoSuchContext)
    }

    /// Changes the protection of one page.
    pub fn protect_page(&self, ctx: ContextId, va: u64, prot: Protection) -> Result<(), VmError> {
        self.clock.advance(self.profile.pmap_op);
        self.mmu
            .protect(ctx, va >> PAGE_SHIFT, prot)
            .map_err(|e| match e {
                MmuFault::NoSuchContext(_) => VmError::NoSuchContext,
                _ => VmError::Unresolved {
                    info: FaultInfo {
                        ctx,
                        va,
                        access: Access::Read,
                    },
                    kind: FaultKind::PageNotPresent,
                },
            })
    }

    /// Changes the protection of a whole region.
    pub fn protect_region(
        &self,
        ctx: ContextId,
        virt: &Arc<VirtRegion>,
        prot: Protection,
    ) -> Result<(), VmError> {
        for i in 0..virt.pages() {
            self.protect_page(ctx, virt.base() + (i << PAGE_SHIFT), prot)?;
        }
        Ok(())
    }

    /// Invalidates every mapping of the frames in `phys` (the reclaim
    /// path: "the translation service ultimately invalidates any mappings
    /// to a reclaimed page").
    // charged: in the Mmu (pte_update + tlb_invalidate per invalidated mapping).
    pub fn invalidate_phys(&self, phys: &Arc<PhysRegion>) -> Result<usize, VmError> {
        // Raw access: the region may already have been reclaimed.
        let frames: Vec<FrameId> = phys.with_frames_raw(|f| f.to_vec());
        let mut invalidated = 0;
        for frame in frames {
            let mappings: Vec<(ContextId, u64)> = {
                let mut st = self.state.lock();
                st.rmap
                    .remove(&frame)
                    .map(|s| s.into_iter().collect())
                    .unwrap_or_default()
            };
            for (ctx, vpn) in mappings {
                let _ = self.mmu.remove(ctx, vpn);
                invalidated += 1;
            }
        }
        Ok(invalidated)
    }

    fn classify(&self, ctx: ContextId, va: u64, fault: MmuFault) -> FaultKind {
        match fault {
            MmuFault::Protection { .. } => FaultKind::ProtectionFault,
            MmuFault::NoSuchContext(_) => FaultKind::BadAddress,
            MmuFault::Miss { .. } => {
                let st = self.state.lock();
                let reserved = st
                    .contexts
                    .get(&ctx)
                    .map(|c| c.ranges.iter().any(|&(b, e)| va >= b && va < e))
                    .unwrap_or(false);
                if reserved {
                    FaultKind::PageNotPresent
                } else {
                    FaultKind::BadAddress
                }
            }
        }
    }

    /// The CPU access path: translates `va`, and on a fault charges the
    /// trap crossing, raises the corresponding event, and retries once if
    /// a handler resolved it.
    pub fn access(&self, ctx: ContextId, va: u64, access: Access) -> Result<FrameId, VmError> {
        for attempt in 0..2 {
            match self.mmu.translate(ctx, va, access) {
                Ok(frame) => return Ok(frame),
                Err(fault) => {
                    let kind = self.classify(ctx, va, fault);
                    let info = FaultInfo { ctx, va, access };
                    if attempt == 1 {
                        return Err(VmError::Unresolved { info, kind });
                    }
                    if let Some(obs) = self.obs.get() {
                        obs.counters.vm_faults.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                        obs.trace(TraceKind::VmFault, va, kind as u64);
                    }
                    // Enter the kernel trap path and dispatch to handlers.
                    self.clock
                        .advance(self.profile.trap_entry + self.profile.vm_fault_save);
                    let ev = match kind {
                        FaultKind::PageNotPresent => &self.events.page_not_present,
                        FaultKind::BadAddress => &self.events.bad_address,
                        FaultKind::ProtectionFault => &self.events.protection_fault,
                    };
                    let action = ev.raise(info).unwrap_or(FaultAction::Fail);
                    if action == FaultAction::Fail {
                        self.clock.advance(self.profile.trap_exit);
                        return Err(VmError::Unresolved { info, kind });
                    }
                    // Resume the faulting thread and retry the access.
                    self.clock
                        .advance(self.profile.context_switch + self.profile.trap_exit);
                }
            }
        }
        unreachable!("loop returns on both paths");
    }

    /// Reads guest memory through the access path.
    pub fn read(
        &self,
        ctx: ContextId,
        va: u64,
        buf: &mut [u8],
        mem: &spin_sal::PhysMem,
    ) -> Result<(), VmError> {
        let mut done = 0;
        while done < buf.len() {
            let addr = va + done as u64;
            let frame = self.access(ctx, addr, Access::Read)?;
            let off = spin_sal::page_offset(addr);
            let n = (spin_sal::PAGE_SIZE - off).min(buf.len() - done);
            mem.read(frame, off, &mut buf[done..done + n]);
            self.clock.advance(self.profile.copy(n));
            done += n;
        }
        Ok(())
    }

    /// Writes guest memory through the access path.
    pub fn write(
        &self,
        ctx: ContextId,
        va: u64,
        buf: &[u8],
        mem: &spin_sal::PhysMem,
    ) -> Result<(), VmError> {
        let mut done = 0;
        while done < buf.len() {
            let addr = va + done as u64;
            let frame = self.access(ctx, addr, Access::Write)?;
            let off = spin_sal::page_offset(addr);
            let n = (spin_sal::PAGE_SIZE - off).min(buf.len() - done);
            mem.write(frame, off, &buf[done..done + n]);
            self.clock.advance(self.profile.copy(n));
            done += n;
        }
        Ok(())
    }

    /// The underlying MMU (trusted services only).
    // uncharged: accessor.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::{PhysAddrService, PhysAttrib};
    use crate::virt::VirtAddrService;
    use spin_sal::{PhysMem, SimBoard};

    struct Rig {
        trans: TranslationService,
        phys: PhysAddrService,
        virt: VirtAddrService,
        mem: PhysMem,
    }

    fn rig() -> Rig {
        let board = SimBoard::new();
        let host = board.new_host(64);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        Rig {
            trans: TranslationService::new(
                host.mmu.clone(),
                board.clock.clone(),
                board.profile.clone(),
                &disp,
            ),
            phys: PhysAddrService::new(host.mem.clone(), &disp),
            virt: VirtAddrService::new(),
            mem: host.mem.clone(),
        }
    }

    #[test]
    fn map_read_write_round_trip() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(2).unwrap();
        let p = r.phys.allocate(2, PhysAttrib::default()).unwrap();
        r.trans
            .add_mapping(ctx, &v, &p, Protection::READ_WRITE)
            .unwrap();
        r.trans
            .write(ctx, v.base() + 100, b"hello", &r.mem)
            .unwrap();
        let mut buf = [0u8; 5];
        r.trans.read(ctx, v.base() + 100, &mut buf, &r.mem).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(2).unwrap();
        let p = r.phys.allocate(3, PhysAttrib::default()).unwrap();
        assert!(matches!(
            r.trans.add_mapping(ctx, &v, &p, Protection::READ),
            Err(VmError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn unallocated_access_is_bad_address() {
        let r = rig();
        let ctx = r.trans.create();
        let err = r.trans.access(ctx, 0xDEAD_0000, Access::Read).unwrap_err();
        assert!(matches!(
            err,
            VmError::Unresolved {
                kind: FaultKind::BadAddress,
                ..
            }
        ));
    }

    #[test]
    fn reserved_but_unmapped_is_page_not_present() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(1).unwrap();
        r.trans.reserve(ctx, &v).unwrap();
        let err = r.trans.access(ctx, v.base(), Access::Read).unwrap_err();
        assert!(matches!(
            err,
            VmError::Unresolved {
                kind: FaultKind::PageNotPresent,
                ..
            }
        ));
    }

    #[test]
    fn write_to_read_only_is_protection_fault() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(1).unwrap();
        let p = r.phys.allocate(1, PhysAttrib::default()).unwrap();
        r.trans.add_mapping(ctx, &v, &p, Protection::READ).unwrap();
        let err = r.trans.access(ctx, v.base(), Access::Write).unwrap_err();
        assert!(matches!(
            err,
            VmError::Unresolved {
                kind: FaultKind::ProtectionFault,
                ..
            }
        ));
    }

    #[test]
    fn handler_can_resolve_a_fault() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(1).unwrap();
        let p = r.phys.allocate(1, PhysAttrib::default()).unwrap();
        r.trans.add_mapping(ctx, &v, &p, Protection::READ).unwrap();
        // An extension that upgrades protection on write faults (the Appel
        // & Li pattern).
        let trans2 = r.trans.clone();
        r.trans
            .events()
            .protection_fault
            .install(Identity::extension("gc"), move |info: &FaultInfo| {
                trans2
                    .protect_page(info.ctx, info.va, Protection::READ_WRITE)
                    .unwrap();
                FaultAction::Resolved
            })
            .unwrap();
        assert!(r.trans.access(ctx, v.base(), Access::Write).is_ok());
    }

    #[test]
    fn dirty_query_via_examine() {
        let r = rig();
        let ctx = r.trans.create();
        let v = r.virt.allocate(1).unwrap();
        let p = r.phys.allocate(1, PhysAttrib::default()).unwrap();
        r.trans
            .add_mapping(ctx, &v, &p, Protection::READ_WRITE)
            .unwrap();
        assert!(!r.trans.examine(ctx, v.base()).unwrap().unwrap().dirty);
        r.trans.write(ctx, v.base(), &[1], &r.mem).unwrap();
        assert!(r.trans.examine(ctx, v.base()).unwrap().unwrap().dirty);
    }

    #[test]
    fn invalidate_phys_removes_all_mappings() {
        let r = rig();
        let ctx_a = r.trans.create();
        let ctx_b = r.trans.create();
        let v_a = r.virt.allocate(1).unwrap();
        let v_b = r.virt.allocate(1).unwrap();
        let p = r.phys.allocate(1, PhysAttrib::default()).unwrap();
        r.trans
            .add_mapping(ctx_a, &v_a, &p, Protection::READ)
            .unwrap();
        r.trans
            .add_mapping(ctx_b, &v_b, &p, Protection::READ)
            .unwrap();
        assert!(r.trans.access(ctx_a, v_a.base(), Access::Read).is_ok());
        let n = r.trans.invalidate_phys(&p).unwrap();
        assert_eq!(n, 2);
        assert!(r.trans.access(ctx_a, v_a.base(), Access::Read).is_err());
        assert!(r.trans.access(ctx_b, v_b.base(), Access::Read).is_err());
    }

    #[test]
    fn destroyed_context_rejects_operations() {
        let r = rig();
        let ctx = r.trans.create();
        r.trans.destroy(ctx).unwrap();
        assert!(matches!(r.trans.destroy(ctx), Err(VmError::NoSuchContext)));
        let v = r.virt.allocate(1).unwrap();
        assert!(matches!(
            r.trans.reserve(ctx, &v),
            Err(VmError::NoSuchContext)
        ));
    }
}
