//! Demand paging from disk, as a kernel extension.
//!
//! One of the higher-level services §4.1 says can be defined on the fault
//! events: "Implementors of higher level memory management abstractions
//! can use these events to define services, such as demand paging". The
//! [`DiskPager`] backs a reserved virtual region with a run of disk
//! blocks; its `Translation.PageNotPresent` handler allocates a frame,
//! reads the block (blocking the faulting strand on the disk interrupt),
//! and installs the mapping.

use crate::phys::{PhysAddrService, PhysAttrib, PhysRegion};
use crate::translation::{FaultAction, FaultInfo, TranslationService};
use crate::virt::VirtRegion;
use spin_check::sync::Mutex;
use spin_core::hooks::HookSlot;
use spin_core::Identity;
use spin_fault::{FaultHook, Injection};
use spin_sal::devices::disk::{BlockId, Disk, DiskRequest};
use spin_sal::mmu::ContextId;
use spin_sal::{Protection, PAGE_SHIFT};
use spin_sched::{Executor, KChannel};
use std::sync::Arc;

/// Statistics for a pager instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    pub faults: u64,
    pub pages_read: u64,
}

/// A disk-backed demand pager for one region of one context.
pub struct DiskPager {
    stats: Arc<Mutex<PagerStats>>,
    /// Frames the pager has faulted in (kept live here).
    resident: Arc<Mutex<Vec<Arc<PhysRegion>>>>,
    /// Fault-injection hook (`vm.pager` site), drawn at the top of every
    /// page fault the pager handles. An injected panic unwinds out of the
    /// handler and is contained by the dispatcher; an injected failure
    /// surfaces as `FaultAction::Fail` — a pager that could not service
    /// the fault.
    faults: Arc<HookSlot<FaultHook>>,
}

impl DiskPager {
    /// Installs a pager: `region` (already reserved in `ctx`) is backed by
    /// blocks `base_block..base_block + region.pages()`.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        exec: Arc<Executor>,
        trans: TranslationService,
        phys: PhysAddrService,
        disk: Disk,
        ctx: ContextId,
        region: Arc<VirtRegion>,
        base_block: u64,
    ) -> Arc<DiskPager> {
        let pager = Arc::new(DiskPager {
            stats: Arc::new(Mutex::new(PagerStats::default())),
            resident: Arc::new(Mutex::new(Vec::new())),
            faults: Arc::new(HookSlot::new()),
        });
        let (stats, resident) = (pager.stats.clone(), pager.resident.clone());
        let fault_hook = pager.faults.clone();
        let guard_region = region.clone();
        trans
            .clone()
            .events()
            .page_not_present
            .install_guarded(
                Identity::extension("DiskPager"),
                move |info: &FaultInfo| info.ctx == ctx && guard_region.contains(info.va),
                move |info: &FaultInfo| {
                    stats.lock().faults += 1;
                    if let Some(h) = fault_hook.get() {
                        match h.draw() {
                            Some(Injection::Panic) => h.fire_panic(),
                            Some(Injection::Delay(ns)) => exec.clock().advance(ns),
                            Some(Injection::Fail) => return FaultAction::Fail,
                            None => {}
                        }
                    }
                    let sctx = match exec.current_ctx() {
                        Some(c) => c,
                        None => return FaultAction::Fail, // not on a strand
                    };
                    // Allocate the frame.
                    let frame_region = match phys.allocate(1, PhysAttrib::default()) {
                        Ok(r) => r,
                        Err(_) => return FaultAction::Fail,
                    };
                    let frame = match frame_region.with_frames(|f| f[0]) {
                        Ok(f) => f,
                        Err(_) => return FaultAction::Fail,
                    };
                    // Read the backing block, blocking this strand.
                    let page_index = (info.va - region.base()) >> PAGE_SHIFT;
                    let block = BlockId(base_block + page_index);
                    let done: Arc<KChannel<Vec<u8>>> = KChannel::new(exec.clone(), 1);
                    let d2 = done.clone();
                    let exec2 = exec.clone();
                    let waiter = sctx.id();
                    disk.submit(DiskRequest::Read(block), move |r| {
                        if let Ok(data) = r {
                            // Stash the data and wake the faulting strand.
                            d2.try_push(data);
                        }
                        exec2.unblock(waiter);
                    });
                    sctx.block();
                    let data = match done.try_recv() {
                        Some(d) => d,
                        None => return FaultAction::Fail,
                    };
                    phys.memory().write(frame, 0, &data);
                    let vpn = info.va >> PAGE_SHIFT;
                    if trans
                        .map_page(info.ctx, vpn, frame, Protection::READ_WRITE)
                        .is_err()
                    {
                        return FaultAction::Fail;
                    }
                    stats.lock().pages_read += 1;
                    resident.lock().push(frame_region);
                    FaultAction::Resolved
                },
            )
            .expect("install pager handler");
        pager
    }

    /// Wires the deterministic fault-injection plan's `vm.pager` site.
    /// One-shot; absent hooks cost nothing on the fault path.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        let _ = self.faults.set(hook);
    }

    /// Fault/read counters.
    pub fn stats(&self) -> PagerStats {
        *self.stats.lock()
    }

    /// Pages currently resident via this pager.
    pub fn resident_pages(&self) -> usize {
        self.resident.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virt::VirtAddrService;
    use spin_core::Dispatcher;
    use spin_sal::devices::disk::BLOCK_SIZE;
    use spin_sal::SimBoard;

    #[test]
    fn faults_read_pages_from_disk_on_demand() {
        let board = SimBoard::new();
        let host = board.new_host(128);
        let exec = Executor::for_host(&host);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let trans = TranslationService::new(
            host.mmu.clone(),
            board.clock.clone(),
            board.profile.clone(),
            &disp,
        );
        let phys = PhysAddrService::new(host.mem.clone(), &disp);
        let virt = VirtAddrService::new();

        // Write recognizable content to backing blocks 10 and 11.
        let exec2 = exec.clone();
        let disk = host.disk.clone();
        for (i, fill) in [(10u64, 0xAAu8), (11, 0xBB)] {
            let d = disk.clone();
            exec.spawn("writer", move |ctx| {
                let done: Arc<KChannel<()>> = KChannel::new(ctx.executor().clone(), 1);
                let d2 = done.clone();
                let e3 = ctx.executor().clone();
                let me = ctx.id();
                d.submit(
                    DiskRequest::Write(BlockId(i), vec![fill; BLOCK_SIZE]),
                    move |r| {
                        r.unwrap();
                        d2.try_push(());
                        e3.unblock(me);
                    },
                );
                ctx.block();
            });
        }
        exec.run_until_idle();

        let ctx_id = trans.create();
        let region = virt.allocate(2).unwrap();
        trans.reserve(ctx_id, &region).unwrap();
        let pager = DiskPager::install(
            exec2.clone(),
            trans.clone(),
            phys.clone(),
            disk,
            ctx_id,
            region.clone(),
            10,
        );

        let mem = host.mem.clone();
        let trans2 = trans.clone();
        let base = region.base();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        exec2.spawn("app", move |_| {
            let mut buf = [0u8; 1];
            trans2.read(ctx_id, base, &mut buf, &mem).unwrap();
            assert_eq!(buf, [0xAA]);
            trans2
                .read(ctx_id, base + BLOCK_SIZE as u64, &mut buf, &mem)
                .unwrap();
            assert_eq!(buf, [0xBB]);
            // Second touch: already resident, no new fault.
            trans2.read(ctx_id, base, &mut buf, &mem).unwrap();
            *ok2.lock() = true;
        });
        let outcome = exec2.run_until_idle();
        assert_eq!(outcome, spin_sched::IdleOutcome::AllComplete);
        assert!(*ok.lock());
        let stats = pager.stats();
        assert_eq!(stats.faults, 2, "one fault per page, none on re-touch");
        assert_eq!(stats.pages_read, 2);
        assert_eq!(pager.resident_pages(), 2);
    }
}
