//! The physical address service (Figure 3, `INTERFACE PhysAddr`).
//!
//! "The physical address service controls the use and allocation of
//! physical pages. Clients raise the Allocate event to request physical
//! memory with a certain size and an optional series of attributes that
//! reflect preferences for machine specific parameters such as color or
//! contiguity. ... clients of the physical address service receive a
//! capability for the memory" (§4.1).
//!
//! A [`PhysRegion`] is that capability: it names frames without exposing
//! them to arbitrary addressing, and it is invalidated on deallocation so a
//! retained stale capability errors instead of aliasing reused memory.
//!
//! "The physical page service may at any time reclaim physical memory by
//! raising the `PhysAddr.Reclaim` event. The interface allows the handler
//! for this event to volunteer an alternative page" — see
//! [`PhysAddrService::reclaim`].

use spin_check::sync::Mutex;
use spin_check::sync::{AtomicBool, AtomicU64, Ordering};
use spin_core::{Dispatcher, Event, EventOwner, Identity};
use spin_sal::{FrameId, PhysMem};
use std::sync::Arc;

/// Number of page colors the allocator distinguishes (cache-conscious
/// allocation, as in the paper's citation of Romer et al.).
pub const COLORS: u32 = 16;

/// Allocation preferences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhysAttrib {
    /// Prefer frames of this cache color.
    pub color: Option<u32>,
    /// Require physically contiguous frames.
    pub contiguous: bool,
}

/// Errors from the physical address service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysError {
    /// Not enough free frames (with the requested attributes).
    OutOfMemory { requested: usize },
    /// The capability was already deallocated.
    StaleCapability,
}

/// A capability for allocated physical memory (`PhysAddr.T`).
///
/// Opaque: holders can ask for its size and hand it to the translation
/// service, but cannot address the frames directly.
pub struct PhysRegion {
    id: u64,
    frames: Vec<FrameId>,
    live: AtomicBool,
}

impl PhysRegion {
    /// Number of pages in the region.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// Whether the capability is still valid.
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Acquire) // ordering: Acquire — pairs with the teardown swap's release half.
    }

    /// Internal: the backing frames (used by the translation service and
    /// pagers, which are trusted).
    pub(crate) fn frames(&self) -> Result<&[FrameId], PhysError> {
        if self.is_live() {
            Ok(&self.frames)
        } else {
            Err(PhysError::StaleCapability)
        }
    }

    /// Trusted accessor for core services in other crates (e.g. the file
    /// system's buffer cache). Fails on stale capabilities.
    pub fn with_frames<R>(&self, f: impl FnOnce(&[FrameId]) -> R) -> Result<R, PhysError> {
        Ok(f(self.frames()?))
    }

    /// Trusted accessor that works even on reclaimed regions — the
    /// translation service must be able to tear down mappings *after* the
    /// physical service has reclaimed the capability (§4.1's ordering:
    /// reclaim first, "ultimately invalidate" after).
    pub fn with_frames_raw<R>(&self, f: impl FnOnce(&[FrameId]) -> R) -> R {
        f(&self.frames)
    }

    /// The region's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl std::fmt::Debug for PhysRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PhysRegion#{}[{} pages]", self.id, self.frames.len())
    }
}

/// Arguments of the `PhysAddr.Reclaim` event: the service's candidate.
#[derive(Clone)]
pub struct ReclaimRequest {
    pub candidate: Arc<PhysRegion>,
}

struct FreeList {
    free: Vec<FrameId>,
}

/// The physical address service.
#[derive(Clone)]
pub struct PhysAddrService {
    mem: PhysMem,
    state: Arc<Mutex<FreeList>>,
    next_id: Arc<AtomicU64>,
    /// `PhysAddr.Reclaim`.
    pub reclaim_event: Event<ReclaimRequest, Arc<PhysRegion>>,
    reclaim_owner: Arc<EventOwner<ReclaimRequest, Arc<PhysRegion>>>,
}

impl PhysAddrService {
    /// Creates the service over a host's physical memory.
    pub fn new(mem: PhysMem, dispatcher: &Dispatcher) -> PhysAddrService {
        let free = (0..mem.frame_count() as u32).map(FrameId).collect();
        let (reclaim_event, reclaim_owner) = dispatcher.define::<ReclaimRequest, Arc<PhysRegion>>(
            "PhysAddr.Reclaim",
            Identity::kernel("PhysAddr"),
        );
        // Default implementation: accept the candidate.
        reclaim_owner
            .set_primary(|req: &ReclaimRequest| req.candidate.clone())
            .expect("fresh event");
        PhysAddrService {
            mem,
            state: Arc::new(Mutex::new(FreeList { free })),
            next_id: Arc::new(AtomicU64::new(1)),
            reclaim_event,
            reclaim_owner: Arc::new(reclaim_owner),
        }
    }

    /// The owner capability for `PhysAddr.Reclaim` (trusted services can
    /// set authorization policy on it).
    pub fn reclaim_owner(&self) -> &EventOwner<ReclaimRequest, Arc<PhysRegion>> {
        &self.reclaim_owner
    }

    /// `PhysAddr.Allocate`: allocates `pages` frames with `attrib`.
    pub fn allocate(&self, pages: usize, attrib: PhysAttrib) -> Result<Arc<PhysRegion>, PhysError> {
        let mut st = self.state.lock();
        if st.free.len() < pages {
            return Err(PhysError::OutOfMemory { requested: pages });
        }
        let frames = if attrib.contiguous {
            Self::take_contiguous(&mut st.free, pages)
                .ok_or(PhysError::OutOfMemory { requested: pages })?
        } else if let Some(color) = attrib.color {
            Self::take_colored(&mut st.free, pages, color)
                .ok_or(PhysError::OutOfMemory { requested: pages })?
        } else {
            let at = st.free.len() - pages;
            st.free.split_off(at)
        };
        for &f in &frames {
            self.mem.zero(f);
        }
        Ok(Arc::new(PhysRegion {
            id: self.next_id.fetch_add(1, Ordering::Relaxed), // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
            frames,
            live: AtomicBool::new(true),
        }))
    }

    fn take_contiguous(free: &mut Vec<FrameId>, pages: usize) -> Option<Vec<FrameId>> {
        free.sort_unstable();
        let ids: Vec<u32> = free.iter().map(|f| f.0).collect();
        let mut run_start = 0;
        for i in 0..ids.len() {
            if i > 0 && ids[i] != ids[i - 1] + 1 {
                run_start = i;
            }
            if i - run_start + 1 == pages {
                let taken: Vec<FrameId> = free.drain(run_start..=i).collect();
                return Some(taken);
            }
        }
        None
    }

    fn take_colored(free: &mut Vec<FrameId>, pages: usize, color: u32) -> Option<Vec<FrameId>> {
        let mut taken = Vec::with_capacity(pages);
        let mut i = 0;
        while i < free.len() && taken.len() < pages {
            if free[i].0 % COLORS == color % COLORS {
                taken.push(free.remove(i));
            } else {
                i += 1;
            }
        }
        if taken.len() == pages {
            Some(taken)
        } else {
            free.extend(taken);
            None
        }
    }

    /// `PhysAddr.Deallocate`: returns the region's frames and invalidates
    /// the capability.
    pub fn deallocate(&self, region: &Arc<PhysRegion>) -> Result<(), PhysError> {
        // ordering: AcqRel — exactly one unmapper wins and owns the teardown.
        if !region.live.swap(false, Ordering::AcqRel) {
            return Err(PhysError::StaleCapability);
        }
        self.state.lock().free.extend(region.frames.iter().copied());
        Ok(())
    }

    /// `PhysAddr.Reclaim`: asks handlers whether an alternative should be
    /// surrendered instead of `candidate`, then deallocates the chosen
    /// region and returns it.
    pub fn reclaim(&self, candidate: Arc<PhysRegion>) -> Result<Arc<PhysRegion>, PhysError> {
        let chosen = self
            .reclaim_event
            .raise(ReclaimRequest {
                candidate: candidate.clone(),
            })
            .unwrap_or(candidate);
        self.deallocate(&chosen)?;
        Ok(chosen)
    }

    /// Free frames remaining.
    pub fn free_frames(&self) -> usize {
        self.state.lock().free.len()
    }

    /// The backing physical memory (trusted services only).
    pub fn memory(&self) -> &PhysMem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> PhysAddrService {
        PhysAddrService::new(PhysMem::new(64), &Dispatcher::unmetered())
    }

    #[test]
    fn allocate_and_deallocate_round_trip() {
        let s = service();
        let before = s.free_frames();
        let r = s.allocate(4, PhysAttrib::default()).unwrap();
        assert_eq!(r.pages(), 4);
        assert_eq!(s.free_frames(), before - 4);
        s.deallocate(&r).unwrap();
        assert_eq!(s.free_frames(), before);
    }

    #[test]
    fn stale_capabilities_are_rejected() {
        let s = service();
        let r = s.allocate(1, PhysAttrib::default()).unwrap();
        s.deallocate(&r).unwrap();
        assert_eq!(s.deallocate(&r), Err(PhysError::StaleCapability));
        assert!(r.with_frames(|_| ()).is_err());
        assert!(!r.is_live());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let s = service();
        assert!(matches!(
            s.allocate(1000, PhysAttrib::default()),
            Err(PhysError::OutOfMemory { requested: 1000 })
        ));
    }

    #[test]
    fn contiguous_allocation_is_contiguous() {
        let s = service();
        // Fragment the free list a little first.
        let a = s.allocate(3, PhysAttrib::default()).unwrap();
        let r = s
            .allocate(
                8,
                PhysAttrib {
                    contiguous: true,
                    ..Default::default()
                },
            )
            .unwrap();
        r.with_frames(|frames| {
            for w in frames.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1, "frames must be contiguous");
            }
        })
        .unwrap();
        s.deallocate(&a).unwrap();
    }

    #[test]
    fn colored_allocation_respects_color() {
        let s = service();
        let r = s
            .allocate(
                2,
                PhysAttrib {
                    color: Some(5),
                    ..Default::default()
                },
            )
            .unwrap();
        r.with_frames(|frames| {
            for f in frames {
                assert_eq!(f.0 % COLORS, 5);
            }
        })
        .unwrap();
    }

    #[test]
    fn allocated_frames_are_zeroed() {
        let s = service();
        let r = s.allocate(1, PhysAttrib::default()).unwrap();
        let frame = r.with_frames(|f| f[0]).unwrap();
        s.memory().write(frame, 0, &[0xFF]);
        s.deallocate(&r).unwrap();
        // Reallocate until we get the same frame back; it must be zero.
        for _ in 0..64 {
            let r2 = s.allocate(1, PhysAttrib::default()).unwrap();
            let f2 = r2.with_frames(|f| f[0]).unwrap();
            if f2 == frame {
                let mut b = [0xAAu8];
                s.memory().read(f2, 0, &mut b);
                assert_eq!(b, [0]);
                return;
            }
        }
        panic!("frame never reallocated");
    }

    #[test]
    fn reclaim_lets_handlers_volunteer_alternatives() {
        let s = service();
        let precious = s.allocate(1, PhysAttrib::default()).unwrap();
        let spare = s.allocate(1, PhysAttrib::default()).unwrap();
        // A client protects its precious page by volunteering the spare.
        let (precious_id, spare2) = (precious.id(), spare.clone());
        s.reclaim_event
            .install(
                Identity::extension("buffercache"),
                move |req: &ReclaimRequest| {
                    if req.candidate.id() == precious_id {
                        spare2.clone()
                    } else {
                        req.candidate.clone()
                    }
                },
            )
            .unwrap();
        let taken = s.reclaim(precious.clone()).unwrap();
        assert_eq!(taken.id(), spare.id());
        assert!(precious.is_live(), "the volunteered page was taken instead");
        assert!(!spare.is_live());
    }
}
