//! `spin-vm` — extensible memory management for the SPIN reproduction.
//!
//! "The SPIN memory management interface decomposes memory services into
//! three basic components: physical storage, naming, and translation"
//! (§4.1, Figure 3):
//!
//! * [`PhysAddrService`] — physical pages as capabilities, allocation
//!   attributes (color, contiguity), and the `PhysAddr.Reclaim` event;
//! * [`VirtAddrService`] — virtual address regions as capabilities;
//! * [`TranslationService`] — addressing contexts, mappings into the MMU,
//!   and the fault events `PageNotPresent`, `BadAddress`,
//!   `ProtectionFault`.
//!
//! Higher-level models are *extensions* composed from these:
//! [`UnixAsExtension`] (UNIX address spaces with copy-on-write fork),
//! [`MachTaskExtension`] (Mach's task abstraction), and [`DiskPager`]
//! (demand paging). [`VmWorkbench`] packages the Table 4 benchmark
//! workloads.

#![forbid(unsafe_code)]

pub mod address_space;
pub mod mach_task;
pub mod pager;
pub mod phys;
pub mod service;
pub mod translation;
pub mod virt;
pub mod workloads;

pub use address_space::{UnixAddressSpace, UnixAsExtension};
pub use mach_task::{MachTask, MachTaskExtension};
pub use pager::{DiskPager, PagerStats};
pub use phys::{PhysAddrService, PhysAttrib, PhysError, PhysRegion, ReclaimRequest, COLORS};
pub use service::VmService;
pub use translation::{
    FaultAction, FaultInfo, FaultKind, TranslationEvents, TranslationService, VmError,
};
pub use virt::{VirtAddrService, VirtError, VirtRegion};
pub use workloads::{VmWorkbench, BENCH_PAGES};
