//! UNIX address-space semantics as a kernel extension.
//!
//! "The SPIN core services do not define an address space model directly
//! ... we have built an extension that implements UNIX address space
//! semantics for applications. It exports an interface for copying an
//! existing address space, and for allocating additional memory within
//! one. For each new address space, the extension allocates a new context
//! from the translation service. This context is subsequently filled in
//! with virtual and physical address resources obtained from the memory
//! allocation services" (§4.1).
//!
//! Copying uses copy-on-write, built — exactly as §4.1 suggests — on the
//! `Translation.ProtectionFault` event: `copy` downgrades writable pages
//! to read-only in both spaces, and the extension's fault handler gives
//! the writer a private copy.

use crate::phys::{PhysAddrService, PhysAttrib, PhysRegion};
use crate::translation::{FaultAction, FaultInfo, TranslationService, VmError};
use crate::virt::{VirtAddrService, VirtRegion};
use spin_check::sync::Mutex;
use spin_core::Identity;
use spin_sal::mmu::ContextId;
use spin_sal::{PhysMem, Protection, PAGE_SHIFT};
use std::collections::HashMap;
use std::sync::Arc;

struct Segment {
    virt: Arc<VirtRegion>,
    phys: Arc<PhysRegion>,
    prot: Protection,
}

/// One UNIX address space.
pub struct UnixAddressSpace {
    ctx: ContextId,
    segments: Mutex<Vec<Segment>>,
}

impl UnixAddressSpace {
    /// The underlying translation context.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// Number of mapped segments.
    pub fn segment_count(&self) -> usize {
        self.segments.lock().len()
    }
}

/// A copy-on-write share: one frame referenced by several spaces.
struct CowShare {
    frame: spin_sal::FrameId,
    sharers: u32,
}

/// The UNIX address-space extension.
/// Copy-on-write shares keyed by (context, virtual page).
type CowMap = HashMap<(ContextId, u64), Arc<Mutex<CowShare>>>;

#[derive(Clone)]
pub struct UnixAsExtension {
    trans: TranslationService,
    phys: PhysAddrService,
    virt: VirtAddrService,
    mem: PhysMem,
    cow: Arc<Mutex<CowMap>>,
    /// Copies made by fault handlers, kept live by the extension.
    private_pages: Arc<Mutex<Vec<Arc<PhysRegion>>>>,
}

impl UnixAsExtension {
    /// Installs the extension: composes the three core services and hooks
    /// `Translation.ProtectionFault` for copy-on-write.
    pub fn install(
        trans: TranslationService,
        phys: PhysAddrService,
        virt: VirtAddrService,
        mem: PhysMem,
    ) -> UnixAsExtension {
        let ext = UnixAsExtension {
            trans: trans.clone(),
            phys,
            virt,
            mem,
            cow: Arc::new(Mutex::new(HashMap::new())),
            private_pages: Arc::new(Mutex::new(Vec::new())),
        };
        let ext2 = ext.clone();
        let cow2 = ext.cow.clone();
        trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("UnixAS"),
                move |info: &FaultInfo| {
                    cow2.lock().contains_key(&(info.ctx, info.va >> PAGE_SHIFT))
                },
                move |info: &FaultInfo| match ext2.resolve_cow(info) {
                    Ok(()) => FaultAction::Resolved,
                    Err(_) => FaultAction::Fail,
                },
            )
            .expect("install COW handler");
        ext
    }

    /// Creates an empty address space.
    pub fn create(&self) -> Arc<UnixAddressSpace> {
        Arc::new(UnixAddressSpace {
            ctx: self.trans.create(),
            segments: Mutex::new(Vec::new()),
        })
    }

    /// Allocates `pages` of zeroed memory in `space` (the `brk`/`mmap`
    /// analogue). Returns the base virtual address.
    pub fn allocate(
        &self,
        space: &UnixAddressSpace,
        pages: u64,
        prot: Protection,
    ) -> Result<u64, VmError> {
        let virt = self.virt.allocate(pages).map_err(|_| VmError::Stale)?;
        let phys = self
            .phys
            .allocate(pages as usize, PhysAttrib::default())
            .map_err(|_| VmError::Stale)?;
        self.trans.add_mapping(space.ctx, &virt, &phys, prot)?;
        let base = virt.base();
        space.segments.lock().push(Segment { virt, phys, prot });
        Ok(base)
    }

    /// Copies `parent` into a new space with copy-on-write sharing (the
    /// `fork` analogue).
    pub fn copy(&self, parent: &UnixAddressSpace) -> Result<Arc<UnixAddressSpace>, VmError> {
        let child = self.create();
        let parent_segments = parent.segments.lock();
        let mut child_segments = child.segments.lock();
        for seg in parent_segments.iter() {
            // The child maps the same frames at the same addresses.
            self.trans
                .add_mapping(child.ctx, &seg.virt, &seg.phys, seg.prot)?;
            if seg.prot.write {
                // Downgrade both sides and register the shares. If the
                // parent's page is itself still COW-shared (a chained
                // fork), the child joins the *existing* share — a fresh
                // share here would let the last writer reclaim the frame
                // in place while an older generation still maps it.
                for i in 0..seg.virt.pages() {
                    let va = seg.virt.base() + (i << PAGE_SHIFT);
                    let vpn = seg.virt.vpn(i);
                    let frame = seg.phys.with_frames(|f| f[i as usize])?;
                    self.trans.protect_page(parent.ctx, va, Protection::READ)?;
                    self.trans.protect_page(child.ctx, va, Protection::READ)?;
                    let mut cow = self.cow.lock();
                    match cow.get(&(parent.ctx, vpn)).cloned() {
                        Some(existing) => {
                            existing.lock().sharers += 1;
                            cow.insert((child.ctx, vpn), existing);
                        }
                        None => {
                            let share = Arc::new(Mutex::new(CowShare { frame, sharers: 2 }));
                            cow.insert((parent.ctx, vpn), share.clone());
                            cow.insert((child.ctx, vpn), share);
                        }
                    }
                }
            }
            child_segments.push(Segment {
                virt: seg.virt.clone(),
                phys: seg.phys.clone(),
                prot: seg.prot,
            });
        }
        drop(child_segments);
        Ok(child)
    }

    /// Resolves a copy-on-write fault: the last sharer reclaims the frame
    /// in place; earlier writers get a private copy.
    fn resolve_cow(&self, info: &FaultInfo) -> Result<(), VmError> {
        let vpn = info.va >> PAGE_SHIFT;
        let share = {
            let cow = self.cow.lock();
            match cow.get(&(info.ctx, vpn)) {
                Some(s) => s.clone(),
                None => return Err(VmError::Stale),
            }
        };
        let mut sh = share.lock();
        if sh.sharers <= 1 {
            // Sole owner now: upgrade in place.
            self.trans
                .protect_page(info.ctx, info.va, Protection::READ_WRITE)?;
            self.cow.lock().remove(&(info.ctx, vpn));
            return Ok(());
        }
        // Copy the page for this writer.
        let new_phys = self
            .phys
            .allocate(1, PhysAttrib::default())
            .map_err(|_| VmError::Stale)?;
        let new_frame = new_phys.with_frames(|f| f[0])?;
        self.mem.copy_frame(sh.frame, new_frame);
        self.trans
            .map_page(info.ctx, vpn, new_frame, Protection::READ_WRITE)?;
        sh.sharers -= 1;
        self.cow.lock().remove(&(info.ctx, vpn));
        self.private_pages.lock().push(new_phys);
        Ok(())
    }

    /// Writes into a space through the fault path.
    pub fn write(&self, space: &UnixAddressSpace, va: u64, data: &[u8]) -> Result<(), VmError> {
        self.trans.write(space.ctx, va, data, &self.mem)
    }

    /// Reads from a space through the fault path.
    pub fn read(&self, space: &UnixAddressSpace, va: u64, buf: &mut [u8]) -> Result<(), VmError> {
        self.trans.read(space.ctx, va, buf, &self.mem)
    }

    /// Pending copy-on-write shares (diagnostics).
    pub fn cow_pending(&self) -> usize {
        self.cow.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_core::Dispatcher;
    use spin_sal::SimBoard;

    fn ext() -> UnixAsExtension {
        let board = SimBoard::new();
        let host = board.new_host(128);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        UnixAsExtension::install(
            TranslationService::new(
                host.mmu.clone(),
                board.clock.clone(),
                board.profile.clone(),
                &disp,
            ),
            PhysAddrService::new(host.mem.clone(), &disp),
            VirtAddrService::new(),
            host.mem.clone(),
        )
    }

    #[test]
    fn allocate_and_use_memory() {
        let e = ext();
        let space = e.create();
        let base = e.allocate(&space, 2, Protection::READ_WRITE).unwrap();
        e.write(&space, base + 10, b"unix").unwrap();
        let mut buf = [0u8; 4];
        e.read(&space, base + 10, &mut buf).unwrap();
        assert_eq!(&buf, b"unix");
    }

    #[test]
    fn copied_space_sees_parent_data() {
        let e = ext();
        let parent = e.create();
        let base = e.allocate(&parent, 1, Protection::READ_WRITE).unwrap();
        e.write(&parent, base, b"shared").unwrap();
        let child = e.copy(&parent).unwrap();
        let mut buf = [0u8; 6];
        e.read(&child, base, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn cow_isolates_writes_between_parent_and_child() {
        let e = ext();
        let parent = e.create();
        let base = e.allocate(&parent, 1, Protection::READ_WRITE).unwrap();
        e.write(&parent, base, b"original").unwrap();
        let child = e.copy(&parent).unwrap();
        assert_eq!(e.cow_pending(), 2);

        // Child writes: gets a private copy.
        e.write(&child, base, b"child!!!").unwrap();
        let mut buf = [0u8; 8];
        e.read(&parent, base, &mut buf).unwrap();
        assert_eq!(&buf, b"original", "parent must not see the child's write");
        e.read(&child, base, &mut buf).unwrap();
        assert_eq!(&buf, b"child!!!");

        // Parent writes: now the sole sharer, upgraded in place.
        e.write(&parent, base, b"parent!!").unwrap();
        e.read(&parent, base, &mut buf).unwrap();
        assert_eq!(&buf, b"parent!!");
        assert_eq!(e.cow_pending(), 0, "all shares resolved");
    }

    #[test]
    fn read_only_segments_are_shared_without_cow() {
        let e = ext();
        let parent = e.create();
        let _ = e.allocate(&parent, 1, Protection::READ).unwrap();
        let _child = e.copy(&parent).unwrap();
        assert_eq!(e.cow_pending(), 0, "read-only segments need no COW");
    }

    #[test]
    fn spaces_are_isolated() {
        let e = ext();
        let a = e.create();
        let b = e.create();
        let base = e.allocate(&a, 1, Protection::READ_WRITE).unwrap();
        let mut buf = [0u8; 1];
        assert!(
            e.read(&b, base, &mut buf).is_err(),
            "b never mapped this address"
        );
    }
}
