//! The Mach task abstraction as a kernel extension.
//!
//! "Another kernel extension defines a memory management interface
//! supporting Mach's task abstraction. Applications may use these
//! interfaces, or they may define their own in terms of the lower-level
//! services" (§4.1). The interface shape follows Mach's `vm_allocate` /
//! `vm_protect` / `vm_deallocate` over a task port.

use crate::phys::{PhysAddrService, PhysAttrib, PhysRegion};
use crate::translation::{TranslationService, VmError};
use crate::virt::{VirtAddrService, VirtRegion};
use spin_check::sync::Mutex;
use spin_sal::mmu::ContextId;
use spin_sal::{PhysMem, Protection};
use std::collections::HashMap;
use std::sync::Arc;

struct TaskRegion {
    virt: Arc<VirtRegion>,
    phys: Arc<PhysRegion>,
}

/// A Mach task: an address space addressed by region base.
pub struct MachTask {
    ctx: ContextId,
    regions: Mutex<HashMap<u64, TaskRegion>>,
}

impl MachTask {
    /// The task's translation context.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.lock().len()
    }
}

/// The Mach-task extension.
#[derive(Clone)]
pub struct MachTaskExtension {
    trans: TranslationService,
    phys: PhysAddrService,
    virt: VirtAddrService,
    mem: PhysMem,
}

impl MachTaskExtension {
    /// Installs the extension over the core services.
    pub fn install(
        trans: TranslationService,
        phys: PhysAddrService,
        virt: VirtAddrService,
        mem: PhysMem,
    ) -> MachTaskExtension {
        MachTaskExtension {
            trans,
            phys,
            virt,
            mem,
        }
    }

    /// `task_create`.
    pub fn task_create(&self) -> Arc<MachTask> {
        Arc::new(MachTask {
            ctx: self.trans.create(),
            regions: Mutex::new(HashMap::new()),
        })
    }

    /// `vm_allocate`: maps `pages` of zero-filled memory, returning the
    /// base address.
    pub fn vm_allocate(&self, task: &MachTask, pages: u64) -> Result<u64, VmError> {
        let virt = self.virt.allocate(pages).map_err(|_| VmError::Stale)?;
        let phys = self
            .phys
            .allocate(pages as usize, PhysAttrib::default())
            .map_err(|_| VmError::Stale)?;
        self.trans
            .add_mapping(task.ctx, &virt, &phys, Protection::READ_WRITE)?;
        let base = virt.base();
        task.regions.lock().insert(base, TaskRegion { virt, phys });
        Ok(base)
    }

    /// `vm_deallocate` by region base address.
    pub fn vm_deallocate(&self, task: &MachTask, base: u64) -> Result<(), VmError> {
        let region = task.regions.lock().remove(&base).ok_or(VmError::Stale)?;
        self.trans.remove_mapping(task.ctx, &region.virt)?;
        self.phys
            .deallocate(&region.phys)
            .map_err(|_| VmError::Stale)?;
        Ok(())
    }

    /// `vm_protect` over a whole region.
    pub fn vm_protect(&self, task: &MachTask, base: u64, prot: Protection) -> Result<(), VmError> {
        let regions = task.regions.lock();
        let region = regions.get(&base).ok_or(VmError::Stale)?;
        self.trans.protect_region(task.ctx, &region.virt, prot)
    }

    /// `vm_write`.
    pub fn vm_write(&self, task: &MachTask, va: u64, data: &[u8]) -> Result<(), VmError> {
        self.trans.write(task.ctx, va, data, &self.mem)
    }

    /// `vm_read`.
    pub fn vm_read(&self, task: &MachTask, va: u64, buf: &mut [u8]) -> Result<(), VmError> {
        self.trans.read(task.ctx, va, buf, &self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_core::Dispatcher;
    use spin_sal::SimBoard;

    fn ext() -> MachTaskExtension {
        let board = SimBoard::new();
        let host = board.new_host(64);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        MachTaskExtension::install(
            TranslationService::new(
                host.mmu.clone(),
                board.clock.clone(),
                board.profile.clone(),
                &disp,
            ),
            PhysAddrService::new(host.mem.clone(), &disp),
            VirtAddrService::new(),
            host.mem.clone(),
        )
    }

    #[test]
    fn allocate_write_read() {
        let e = ext();
        let task = e.task_create();
        let base = e.vm_allocate(&task, 2).unwrap();
        e.vm_write(&task, base + 100, b"mach").unwrap();
        let mut buf = [0u8; 4];
        e.vm_read(&task, base + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"mach");
        assert_eq!(task.region_count(), 1);
    }

    #[test]
    fn protect_blocks_writes() {
        let e = ext();
        let task = e.task_create();
        let base = e.vm_allocate(&task, 1).unwrap();
        e.vm_protect(&task, base, Protection::READ).unwrap();
        assert!(e.vm_write(&task, base, &[1]).is_err());
        let mut buf = [0u8; 1];
        assert!(e.vm_read(&task, base, &mut buf).is_ok());
    }

    #[test]
    fn deallocate_unmaps_and_frees() {
        let e = ext();
        let task = e.task_create();
        let base = e.vm_allocate(&task, 1).unwrap();
        e.vm_deallocate(&task, base).unwrap();
        let mut buf = [0u8; 1];
        assert!(e.vm_read(&task, base, &mut buf).is_err());
        assert!(e.vm_deallocate(&task, base).is_err());
        assert_eq!(task.region_count(), 0);
    }
}
