//! The virtual address service (Figure 3, `INTERFACE VirtAddr`).
//!
//! "The virtual address service allocates capabilities for virtual
//! addresses, where the capability's referent is composed of a virtual
//! address, a length, and an address space identifier that makes the
//! address unique" (§4.1).

use spin_check::sync::Mutex;
use spin_check::sync::{AtomicBool, Ordering};
use spin_sal::{PAGE_SHIFT, PAGE_SIZE};
use std::sync::Arc;

/// Errors from the virtual address service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VirtError {
    /// The virtual address space is exhausted.
    OutOfAddressSpace,
    /// The capability was already deallocated.
    StaleCapability,
}

/// A capability for a range of virtual addresses (`VirtAddr.T`).
pub struct VirtRegion {
    base: u64,
    pages: u64,
    live: AtomicBool,
}

impl VirtRegion {
    /// First virtual address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    /// Whether the region is empty (never true for allocated regions).
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// One past the last virtual address.
    pub fn end(&self) -> u64 {
        self.base + self.len()
    }

    /// Whether `va` falls inside the region.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.base && va < self.end()
    }

    /// The virtual page number of page `i` of the region.
    pub fn vpn(&self, i: u64) -> u64 {
        (self.base >> PAGE_SHIFT) + i
    }

    /// Whether the capability is still valid.
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Acquire) // ordering: Acquire — pairs with the teardown swap's release half.
    }
}

impl std::fmt::Debug for VirtRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VirtRegion[{:#x}..{:#x}]", self.base, self.end())
    }
}

/// The virtual address service: a page-granular allocator over one
/// address-space identifier's range.
#[derive(Clone)]
pub struct VirtAddrService {
    state: Arc<Mutex<Allocator>>,
}

struct Allocator {
    /// Next never-used address (bump).
    next: u64,
    limit: u64,
    /// Freed ranges for reuse: (base, pages).
    free: Vec<(u64, u64)>,
}

impl Default for VirtAddrService {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtAddrService {
    /// A service managing the canonical user range.
    pub fn new() -> VirtAddrService {
        // Start above page 0 so null dereferences are always BadAddress.
        VirtAddrService {
            state: Arc::new(Mutex::new(Allocator {
                next: 0x0001_0000,
                limit: 0x0000_0400_0000_0000, // 4 TB of virtual space
                free: Vec::new(),
            })),
        }
    }

    /// `VirtAddr.Allocate`: allocates `pages` of virtual address space.
    pub fn allocate(&self, pages: u64) -> Result<Arc<VirtRegion>, VirtError> {
        assert!(pages > 0, "zero-page virtual allocation");
        let mut st = self.state.lock();
        // First-fit over the free list.
        if let Some(i) = st.free.iter().position(|&(_, n)| n >= pages) {
            let (base, n) = st.free[i];
            if n == pages {
                st.free.remove(i);
            } else {
                st.free[i] = (base + pages * PAGE_SIZE as u64, n - pages);
            }
            return Ok(Arc::new(VirtRegion {
                base,
                pages,
                live: AtomicBool::new(true),
            }));
        }
        let bytes = pages * PAGE_SIZE as u64;
        if st.next + bytes > st.limit {
            return Err(VirtError::OutOfAddressSpace);
        }
        let base = st.next;
        st.next += bytes;
        Ok(Arc::new(VirtRegion {
            base,
            pages,
            live: AtomicBool::new(true),
        }))
    }

    /// `VirtAddr.Deallocate`: invalidates the capability and recycles the
    /// range.
    pub fn deallocate(&self, region: &Arc<VirtRegion>) -> Result<(), VirtError> {
        // ordering: AcqRel — exactly one unmapper wins and owns the teardown.
        if !region.live.swap(false, Ordering::AcqRel) {
            return Err(VirtError::StaleCapability);
        }
        self.state.lock().free.push((region.base, region.pages));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_page_aligned() {
        let s = VirtAddrService::new();
        let a = s.allocate(4).unwrap();
        let b = s.allocate(2).unwrap();
        assert_eq!(a.base() % PAGE_SIZE as u64, 0);
        assert!(a.end() <= b.base() || b.end() <= a.base());
        assert_eq!(a.pages(), 4);
        assert_eq!(a.len(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn contains_and_vpn() {
        let s = VirtAddrService::new();
        let r = s.allocate(2).unwrap();
        assert!(r.contains(r.base()));
        assert!(r.contains(r.end() - 1));
        assert!(!r.contains(r.end()));
        assert_eq!(r.vpn(1), (r.base() >> PAGE_SHIFT) + 1);
    }

    #[test]
    fn deallocated_ranges_are_reused() {
        let s = VirtAddrService::new();
        let a = s.allocate(3).unwrap();
        let base = a.base();
        s.deallocate(&a).unwrap();
        assert_eq!(s.deallocate(&a), Err(VirtError::StaleCapability));
        let b = s.allocate(3).unwrap();
        assert_eq!(b.base(), base, "first-fit should reuse the freed range");
    }

    #[test]
    fn partial_reuse_splits_free_ranges() {
        let s = VirtAddrService::new();
        let a = s.allocate(4).unwrap();
        let base = a.base();
        s.deallocate(&a).unwrap();
        let b = s.allocate(2).unwrap();
        let c = s.allocate(2).unwrap();
        assert_eq!(b.base(), base);
        assert_eq!(c.base(), base + 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn null_page_is_never_allocated() {
        let s = VirtAddrService::new();
        let r = s.allocate(1).unwrap();
        assert!(r.base() >= 0x1_0000);
    }
}
