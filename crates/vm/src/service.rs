//! Wiring the memory services into a booted kernel.
//!
//! [`VmService::install`] creates the three decomposed services over the
//! kernel's host, publishes them as interfaces in `SpinPublic` (so
//! extensions can link against `PhysAddr`, `VirtAddr` and `Translation`),
//! and registers them with the nameserver under the names the paper's
//! Figure 1 style uses.

use crate::phys::PhysAddrService;
use crate::translation::TranslationService;
use crate::virt::VirtAddrService;
use spin_core::{Identity, Interface, Kernel};
use std::sync::Arc;

/// The installed memory-management core services.
#[derive(Clone)]
pub struct VmService {
    pub phys: PhysAddrService,
    pub virt: VirtAddrService,
    pub trans: TranslationService,
}

impl VmService {
    /// Installs the services on `kernel` and publishes their interfaces.
    pub fn install(kernel: &Kernel) -> VmService {
        let host = kernel.host();
        let dispatcher = kernel.dispatcher();
        let phys = PhysAddrService::new(host.mem.clone(), dispatcher);
        let virt = VirtAddrService::new();
        let trans = TranslationService::new(
            host.mmu.clone(),
            host.clock.clone(),
            host.profile.clone(),
            dispatcher,
        );
        kernel.publish(Interface::new("PhysAddr").export("service", Arc::new(phys.clone())));
        kernel.publish(Interface::new("VirtAddr").export("service", Arc::new(virt.clone())));
        kernel.publish(Interface::new("Translation").export("service", Arc::new(trans.clone())));
        let svc = VmService { phys, virt, trans };
        // The bundle handle itself is the typed-import anchor: the three
        // per-service types are also exported through SpinPublic, so
        // `import_typed::<VmService>()` is the unambiguous way in.
        let domain = spin_core::Domain::create_from_module(
            "vm",
            vec![
                Interface::new("Vm").export("service", Arc::new(svc.clone())),
                Interface::new("PhysAddr").export("service", Arc::new(svc.phys.clone())),
                Interface::new("VirtAddr").export("service", Arc::new(svc.virt.clone())),
                Interface::new("Translation").export("service", Arc::new(svc.trans.clone())),
            ],
        );
        let _ = kernel
            .nameserver()
            .register("MemoryServices", domain, Identity::kernel("vm"));
        svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::SimBoard;

    #[test]
    fn install_publishes_interfaces() {
        let board = SimBoard::new();
        let kernel = Kernel::boot(board.new_host(64));
        let vm = VmService::install(&kernel);
        // An extension can import the services through SpinPublic.
        let phys: Arc<PhysAddrService> = kernel.spin_public().get("PhysAddr", "service").unwrap();
        assert_eq!(phys.free_frames(), vm.phys.free_frames());
        let _trans: Arc<TranslationService> =
            kernel.spin_public().get("Translation", "service").unwrap();
        let svc = kernel
            .nameserver()
            .import_typed::<VmService>(&Identity::extension("pager"))
            .unwrap();
        assert_eq!(svc.name(), "MemoryServices");
        assert!(svc.domain().lookup_symbol("VirtAddr", "service").is_some());
        assert_eq!(svc.phys.free_frames(), vm.phys.free_frames());
    }

    #[test]
    fn composition_example_from_section_4() {
        // "In SPIN it is straightforward to allocate a single virtual
        // page, a physical page, and then create a mapping between the
        // two."
        let board = SimBoard::new();
        let kernel = Kernel::boot(board.new_host(64));
        let vm = VmService::install(&kernel);
        let ctx = vm.trans.create();
        let v = vm.virt.allocate(1).unwrap();
        let p = vm.phys.allocate(1, Default::default()).unwrap();
        vm.trans
            .add_mapping(ctx, &v, &p, spin_sal::Protection::READ_WRITE)
            .unwrap();
        vm.trans
            .write(ctx, v.base(), b"composed", &kernel.host().mem)
            .unwrap();
        let mut buf = [0u8; 8];
        vm.trans
            .read(ctx, v.base(), &mut buf, &kernel.host().mem)
            .unwrap();
        assert_eq!(&buf, b"composed");
    }
}
