//! Property tests for the memory services: the mapping algebra
//! (add/remove/protect/examine against a reference model) and fault
//! classification.

use proptest::prelude::*;
use spin_core::Dispatcher;
use spin_sal::mmu::Access;
use spin_sal::{Protection, SimBoard, PAGE_SHIFT};
use spin_vm::{
    FaultKind, PhysAddrService, PhysAttrib, TranslationService, VirtAddrService, VmError,
};
use std::collections::HashMap;

struct Rig {
    trans: TranslationService,
    phys: PhysAddrService,
    virt: VirtAddrService,
}

fn rig() -> Rig {
    let board = SimBoard::new();
    let host = board.new_host(256);
    let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
    Rig {
        trans: TranslationService::new(
            host.mmu.clone(),
            board.clock.clone(),
            board.profile.clone(),
            &disp,
        ),
        phys: PhysAddrService::new(host.mem.clone(), &disp),
        virt: VirtAddrService::new(),
    }
}

#[derive(Debug, Clone)]
enum MapOp {
    /// Map page `i` (of a fixed pool) with the given writability.
    Map { slot: usize, writable: bool },
    /// Unmap page `i`.
    Unmap { slot: usize },
    /// Change protection of page `i`.
    Protect { slot: usize, writable: bool },
}

fn op_strategy(slots: usize) -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0..slots, any::<bool>()).prop_map(|(slot, writable)| MapOp::Map { slot, writable }),
        (0..slots).prop_map(|slot| MapOp::Unmap { slot }),
        (0..slots, any::<bool>()).prop_map(|(slot, writable)| MapOp::Protect { slot, writable }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_algebra_matches_reference_model(
        ops in prop::collection::vec(op_strategy(12), 1..50)
    ) {
        const SLOTS: usize = 12;
        let r = rig();
        let ctx = r.trans.create();
        // A pool of single-page virtual regions and physical pages.
        let vregions: Vec<_> = (0..SLOTS).map(|_| r.virt.allocate(1).unwrap()).collect();
        let pregions: Vec<_> =
            (0..SLOTS).map(|_| r.phys.allocate(1, PhysAttrib::default()).unwrap()).collect();
        for v in &vregions {
            r.trans.reserve(ctx, v).unwrap();
        }
        // Reference model: slot -> writable.
        let mut model: HashMap<usize, bool> = HashMap::new();

        for op in ops {
            match op {
                MapOp::Map { slot, writable } => {
                    let prot = if writable { Protection::READ_WRITE } else { Protection::READ };
                    r.trans.add_mapping(ctx, &vregions[slot], &pregions[slot], prot).unwrap();
                    model.insert(slot, writable);
                }
                MapOp::Unmap { slot } => {
                    r.trans.remove_mapping(ctx, &vregions[slot]).unwrap();
                    model.remove(&slot);
                }
                MapOp::Protect { slot, writable } => {
                    let prot = if writable { Protection::READ_WRITE } else { Protection::READ };
                    let outcome = r.trans.protect_page(ctx, vregions[slot].base(), prot);
                    prop_assert_eq!(outcome.is_ok(), model.contains_key(&slot));
                    if let Some(w) = model.get_mut(&slot) {
                        *w = writable;
                    }
                }
            }
            // The system agrees with the model on every slot.
            for (slot, v) in vregions.iter().enumerate() {
                let read = r.trans.access(ctx, v.base(), Access::Read);
                let write = r.trans.access(ctx, v.base(), Access::Write);
                match model.get(&slot) {
                    Some(true) => {
                        prop_assert!(read.is_ok());
                        prop_assert!(write.is_ok());
                    }
                    Some(false) => {
                        prop_assert!(read.is_ok());
                        let prot_fault = matches!(
                            write,
                            Err(VmError::Unresolved { kind: FaultKind::ProtectionFault, .. })
                        );
                        prop_assert!(prot_fault);
                    }
                    None => {
                        let not_present = matches!(
                            read,
                            Err(VmError::Unresolved { kind: FaultKind::PageNotPresent, .. })
                        );
                        prop_assert!(not_present);
                    }
                }
            }
        }
    }

    #[test]
    fn unreserved_addresses_are_always_bad(addr in 0x200_0000_0000u64..0x300_0000_0000u64) {
        let r = rig();
        let ctx = r.trans.create();
        let err = r.trans.access(ctx, addr, Access::Read).unwrap_err();
        let bad = matches!(err, VmError::Unresolved { kind: FaultKind::BadAddress, .. });
        prop_assert!(bad);
    }

    #[test]
    fn guest_data_round_trips_across_page_boundaries(
        offset in 0u64..16384,
        data in prop::collection::vec(any::<u8>(), 1..600)
    ) {
        let r = rig();
        let board = SimBoard::new();
        let host = board.new_host(64);
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let trans = TranslationService::new(host.mmu.clone(), board.clock.clone(), board.profile.clone(), &disp);
        let phys = PhysAddrService::new(host.mem.clone(), &disp);
        let virt = VirtAddrService::new();
        let ctx = trans.create();
        let pages = ((offset as usize + data.len()) >> PAGE_SHIFT) as u64 + 1;
        let v = virt.allocate(pages).unwrap();
        let p = phys.allocate(pages as usize, PhysAttrib::default()).unwrap();
        trans.add_mapping(ctx, &v, &p, Protection::READ_WRITE).unwrap();
        trans.write(ctx, v.base() + offset, &data, &host.mem).unwrap();
        let mut back = vec![0u8; data.len()];
        trans.read(ctx, v.base() + offset, &mut back, &host.mem).unwrap();
        prop_assert_eq!(back, data);
        let _ = r;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn physical_allocator_conserves_frames(
        sizes in prop::collection::vec(1usize..8, 1..20)
    ) {
        let r = rig();
        let total = r.phys.free_frames();
        let mut held = Vec::new();
        for s in &sizes {
            match r.phys.allocate(*s, PhysAttrib::default()) {
                Ok(region) => held.push(region),
                Err(_) => break,
            }
        }
        let allocated: usize = held.iter().map(|r| r.pages()).sum();
        prop_assert_eq!(r.phys.free_frames(), total - allocated);
        for region in &held {
            r.phys.deallocate(region).unwrap();
        }
        prop_assert_eq!(r.phys.free_frames(), total, "all frames returned");
    }
}
