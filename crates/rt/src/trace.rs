//! The tracing protocol: how heap objects expose their outgoing references.
//!
//! A heap object implements [`Trace`] and reports each [`Gc`](crate::Gc)
//! field to the [`Tracer`] via [`Tracer::edge`]. The collector uses the same
//! protocol both to find live objects and to *rewrite* references after a
//! copy, which is why `trace` takes `&mut self`.

use crate::heap::{Addr, Gc};
use std::any::Any;

/// Implemented by every garbage-collected type.
///
/// Leaf types (no outgoing `Gc` references) can use the blanket-style
/// implementations provided for primitives, or implement `trace` as a no-op.
pub trait Trace: Any + Send {
    /// Reports (and permits rewriting of) every `Gc` reference held by
    /// `self`.
    fn trace(&mut self, tracer: &mut Tracer<'_>);
}

/// Visitor passed to [`Trace::trace`].
pub struct Tracer<'a> {
    pub(crate) visit: &'a mut dyn FnMut(&mut Addr),
}

impl<'a> Tracer<'a> {
    /// Visits one `Gc` edge. The collector may update the reference to the
    /// object's new location.
    pub fn edge<T: Trace>(&mut self, gc: &mut Gc<T>) {
        (self.visit)(&mut gc.addr);
    }

    /// Visits every edge in a collection of references.
    pub fn edges<T: Trace>(&mut self, gcs: &mut [Gc<T>]) {
        for gc in gcs {
            self.edge(gc);
        }
    }

    /// Visits an optional edge.
    pub fn edge_opt<T: Trace>(&mut self, gc: &mut Option<Gc<T>>) {
        if let Some(gc) = gc {
            self.edge(gc);
        }
    }
}

macro_rules! leaf_trace {
    ($($t:ty),* $(,)?) => {
        $(impl Trace for $t {
            fn trace(&mut self, _tracer: &mut Tracer<'_>) {}
        })*
    };
}

leaf_trace!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char, f32, f64, String);

impl Trace for () {
    fn trace(&mut self, _tracer: &mut Tracer<'_>) {}
}

impl<T: Trace> Trace for Vec<Gc<T>> {
    fn trace(&mut self, tracer: &mut Tracer<'_>) {
        tracer.edges(self);
    }
}

impl<T: Trace> Trace for Option<Gc<T>> {
    fn trace(&mut self, tracer: &mut Tracer<'_>) {
        tracer.edge_opt(self);
    }
}

impl Trace for Vec<u8> {
    fn trace(&mut self, _tracer: &mut Tracer<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::KernelHeap;

    struct Pair {
        left: Gc<u64>,
        right: Option<Gc<u64>>,
    }

    impl Trace for Pair {
        fn trace(&mut self, tracer: &mut Tracer<'_>) {
            tracer.edge(&mut self.left);
            tracer.edge_opt(&mut self.right);
        }
    }

    #[test]
    fn edges_are_enumerated() {
        let heap = KernelHeap::new();
        let a = heap.alloc(1u64).unwrap();
        let b = heap.alloc(2u64).unwrap();
        let mut pair = Pair {
            left: a,
            right: Some(b),
        };
        let mut seen = 0;
        let mut visit = |_addr: &mut Addr| seen += 1;
        let mut tracer = Tracer { visit: &mut visit };
        pair.trace(&mut tracer);
        assert_eq!(seen, 2);
    }
}
