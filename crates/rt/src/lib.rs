//! `spin-rt` — the Modula-3 runtime analogue for the SPIN reproduction.
//!
//! The paper's `rt` component is "a version of the DEC SRC Modula-3 runtime
//! system that supports automatic memory management and exception
//! processing" (§5.1). Its role in the architecture is safety-critical:
//!
//! > "An extensible system cannot depend on the correctness of unprivileged
//! > clients for its memory integrity. [...] SPIN uses a trace-based,
//! > mostly-copying garbage collector to safely reclaim memory resources.
//! > The collector serves as a safety net for untrusted extensions." (§5.5)
//!
//! This crate implements that collector: a Bartlett-style **mostly-copying**
//! semispace collector over a paged kernel heap. Objects referenced only by
//! *exact* roots are copied (compacted) into the new space; pages referenced
//! by *ambiguous* roots (the analogue of conservatively-scanned stacks and
//! registers) are **pinned** and promoted in place. Exception processing is
//! Rust's `Result`, so no analogue is needed.
//!
//! There is deliberately no `free`: as in SPIN, resources released by an
//! extension "either through inaction or as a result of premature
//! termination, are eventually reclaimed" by collection, and a stale
//! reference can never observe an object of a different type — it observes
//! a checked [`GcError::Dangling`] instead.

#![forbid(unsafe_code)]

pub mod heap;
pub mod trace;

pub use heap::{CollectionStats, Gc, GcError, HeapStats, KernelHeap, Root};
pub use trace::{Trace, Tracer};
