//! The kernel heap and its Bartlett-style mostly-copying collector.
//!
//! The heap is an append-only set of **pages**; objects are bump-allocated
//! into the current page of the current *space* (an epoch counter). A
//! collection flips to a new space and then:
//!
//! 1. pages referenced by **ambiguous roots** (conservative stack/register
//!    analogues) are *pinned*: promoted wholesale into the new space without
//!    moving — every object on them survives, exactly as in Bartlett's
//!    collector where an ambiguous pointer may not be updated;
//! 2. objects reachable from **exact roots** are *copied* into fresh
//!    new-space pages, leaving forwarding entries; exact roots and all
//!    traced interior references are rewritten;
//! 3. a Cheney-style scan traces copied and pinned objects until closure;
//! 4. unpinned old-space pages are dropped, reclaiming every dead object.
//!
//! A `Gc` reference that survives only by being stale (its object died or
//! moved while unrooted) can never alias a new object: page ids and slot
//! indices are never reused, so dereferencing it yields
//! [`GcError::Dangling`]. This is the reproduction of the paper's claim that
//! "a rogue client can\[not\] violate the type system by retaining a
//! reference to a freed object" (§5.5).

use crate::trace::{Trace, Tracer};
use spin_check::sync::Mutex;
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::marker::PhantomData;
use std::sync::{Arc, Weak};

/// Bytes per heap page (collector granularity, not the MMU page size).
pub const GC_PAGE_BYTES: usize = 4096;

/// Per-object header overhead charged against page capacity.
const HEADER_BYTES: usize = 16;

/// The location of an object in the heap. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    pub(crate) page: u32,
    pub(crate) index: u32,
}

/// A typed, copyable reference to a heap object.
///
/// `Gc` is *not* a root: an object reachable only through unrooted `Gc`
/// values is reclaimed at the next collection. Hold a [`Root`] (exact) or an
/// ambiguous pin to keep an object alive across collections.
pub struct Gc<T: Trace> {
    pub(crate) addr: Addr,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Trace> Clone for Gc<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Trace> Copy for Gc<T> {}

impl<T: Trace> std::fmt::Debug for Gc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gc({}:{})", self.addr.page, self.addr.index)
    }
}

impl<T: Trace> PartialEq for Gc<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T: Trace> Eq for Gc<T> {}

/// Errors from heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcError {
    /// The reference's object has been reclaimed or moved while unrooted.
    Dangling,
    /// The reference's type does not match the stored object (internal
    /// invariant violation; unreachable through the safe API).
    TypeMismatch,
    /// The heap is at capacity even after collection.
    HeapFull,
}

trait Erased: Send {
    fn trace_mut(&mut self, tracer: &mut Tracer<'_>);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Trace> Erased for T {
    fn trace_mut(&mut self, tracer: &mut Tracer<'_>) {
        self.trace(tracer);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Slot {
    obj: Box<dyn Erased>,
    size: usize,
}

struct Page {
    /// Slot storage; `None` = moved out during a collection.
    slots: Vec<Option<Slot>>,
    /// Forwarding table for objects moved out of this page (live only
    /// during a collection).
    forwards: HashMap<u32, Addr>,
    bytes: usize,
    space: u64,
    pinned: bool,
}

impl Page {
    fn new(space: u64) -> Self {
        Page {
            slots: Vec::new(),
            forwards: HashMap::new(),
            bytes: 0,
            space,
            pinned: false,
        }
    }
}

type RootCell = Arc<Mutex<Addr>>;

struct HeapState {
    pages: BTreeMap<u32, Page>,
    next_page: u32,
    space: u64,
    /// Page currently receiving small allocations.
    alloc_page: Option<u32>,
    exact_roots: Vec<Weak<Mutex<Addr>>>,
    ambiguous_roots: Vec<Weak<Mutex<Addr>>>,
    live_bytes: usize,
    capacity_bytes: usize,
    enabled: bool,
    stats: HeapStats,
}

/// Cumulative heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    pub allocations: u64,
    pub allocated_bytes: u64,
    pub collections: u64,
    pub objects_copied: u64,
    pub objects_promoted: u64,
    pub bytes_freed: u64,
    pub pages_pinned: u64,
}

/// Result of one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionStats {
    pub objects_copied: u64,
    pub bytes_copied: u64,
    pub objects_promoted: u64,
    pub pages_pinned: u64,
    pub bytes_freed: u64,
    pub live_bytes_after: u64,
}

/// An exact root: keeps its object alive and is rewritten on copy.
pub struct Root<T: Trace> {
    cell: RootCell,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Trace> Root<T> {
    /// The current (possibly relocated) reference.
    pub fn get(&self) -> Gc<T> {
        Gc {
            addr: *self.cell.lock(),
            _marker: PhantomData,
        }
    }
}

/// An ambiguous root: pins the object's page during collections, as a
/// conservatively-scanned stack word would in Bartlett's collector.
pub struct AmbiguousPin<T: Trace> {
    cell: RootCell,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Trace> AmbiguousPin<T> {
    /// The pinned reference (never rewritten: pinned objects do not move).
    pub fn get(&self) -> Gc<T> {
        Gc {
            addr: *self.cell.lock(),
            _marker: PhantomData,
        }
    }
}

/// The garbage-collected kernel heap.
///
/// Cloning shares the heap. All operations are internally synchronized; do
/// not call heap methods from within a [`KernelHeap::with`] closure (the
/// heap lock is held for the closure's duration).
#[derive(Clone)]
pub struct KernelHeap {
    state: Arc<Mutex<HeapState>>,
    /// Observability hook (gc domain): absent until wired, and the alloc
    /// path never consults it — only completed collections report.
    obs: Arc<spin_check::hooks::HookSlot<spin_obs::ObsHook>>,
    /// Fault-injection hook (`rt.heap` site), drawn at the top of every
    /// allocation. `Fail` manifests as [`GcError::HeapFull`] — a heap at
    /// capacity — and `Panic` unwinds (contained by the dispatcher when
    /// the allocating code runs inside a handler). `Delay` is ignored:
    /// the heap has no clock, and allocation charges no virtual time.
    faults: Arc<spin_check::hooks::HookSlot<spin_fault::FaultHook>>,
}

impl Default for KernelHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelHeap {
    /// A heap with the default 16 MB capacity.
    pub fn new() -> Self {
        Self::with_capacity(16 * 1024 * 1024)
    }

    /// A heap bounded at `capacity_bytes` of live data.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        KernelHeap {
            obs: Arc::new(spin_check::hooks::HookSlot::new()),
            faults: Arc::new(spin_check::hooks::HookSlot::new()),
            state: Arc::new(Mutex::new(HeapState {
                pages: BTreeMap::new(),
                next_page: 0,
                space: 0,
                alloc_page: None,
                exact_roots: Vec::new(),
                ambiguous_roots: Vec::new(),
                live_bytes: 0,
                capacity_bytes,
                enabled: true,
                stats: HeapStats::default(),
            })),
        }
    }

    /// Enables or disables the collector (§5.5's "disable the collector
    /// during the tests"). Explicit [`KernelHeap::collect`] still works.
    pub fn set_enabled(&self, enabled: bool) {
        self.state.lock().enabled = enabled;
    }

    /// Wires the observability subsystem: completed collections are traced
    /// and accounted to the gc domain. One-shot; charges zero virtual
    /// time.
    pub fn set_obs(&self, hook: spin_obs::ObsHook) {
        let _ = self.obs.set(hook);
    }

    /// Wires the deterministic fault-injection plan's `rt.heap` site.
    /// One-shot; absent hooks cost nothing on the alloc path.
    pub fn set_fault_hook(&self, hook: spin_fault::FaultHook) {
        let _ = self.faults.set(hook);
    }

    /// Allocates a new object, collecting first if the heap is full and the
    /// collector is enabled.
    pub fn alloc<T: Trace>(&self, value: T) -> Result<Gc<T>, GcError> {
        if let Some(h) = self.faults.get() {
            match h.draw() {
                Some(spin_fault::Injection::Panic) => h.fire_panic(),
                Some(spin_fault::Injection::Fail) => return Err(GcError::HeapFull),
                Some(spin_fault::Injection::Delay(_)) | None => {}
            }
        }
        let size = std::mem::size_of::<T>() + HEADER_BYTES;
        {
            let st = self.state.lock();
            if st.live_bytes + size > st.capacity_bytes {
                if !st.enabled {
                    return Err(GcError::HeapFull);
                }
                drop(st);
                self.collect();
                let st = self.state.lock();
                if st.live_bytes + size > st.capacity_bytes {
                    return Err(GcError::HeapFull);
                }
            }
        }
        let mut st = self.state.lock();
        st.stats.allocations += 1;
        st.stats.allocated_bytes += size as u64;
        let addr = Self::bump(
            &mut st,
            Slot {
                obj: Box::new(value),
                size,
            },
        );
        Ok(Gc {
            addr,
            _marker: PhantomData,
        })
    }

    fn bump(st: &mut HeapState, slot: Slot) -> Addr {
        let size = slot.size;
        let space = st.space;
        let page_id = match st.alloc_page {
            Some(p)
                if st.pages[&p].bytes + size <= GC_PAGE_BYTES && st.pages[&p].space == space =>
            {
                p
            }
            _ => {
                let id = st.next_page;
                st.next_page += 1;
                st.pages.insert(id, Page::new(space));
                st.alloc_page = Some(id);
                id
            }
        };
        let page = st.pages.get_mut(&page_id).expect("just ensured");
        let index = page.slots.len() as u32;
        page.slots.push(Some(slot));
        page.bytes += size;
        st.live_bytes += size;
        Addr {
            page: page_id,
            index,
        }
    }

    /// Reads an object through its reference.
    ///
    /// Returns [`GcError::Dangling`] if the object was reclaimed or moved
    /// while unrooted — the safe outcome the collector guarantees.
    pub fn with<T: Trace, R>(&self, gc: Gc<T>, f: impl FnOnce(&T) -> R) -> Result<R, GcError> {
        let st = self.state.lock();
        let slot = st
            .pages
            .get(&gc.addr.page)
            .and_then(|p| p.slots.get(gc.addr.index as usize))
            .and_then(|s| s.as_ref())
            .ok_or(GcError::Dangling)?;
        let v = slot
            .obj
            .as_any()
            .downcast_ref::<T>()
            .ok_or(GcError::TypeMismatch)?;
        Ok(f(v))
    }

    /// Mutates an object through its reference.
    pub fn with_mut<T: Trace, R>(
        &self,
        gc: Gc<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, GcError> {
        let mut st = self.state.lock();
        let slot = st
            .pages
            .get_mut(&gc.addr.page)
            .and_then(|p| p.slots.get_mut(gc.addr.index as usize))
            .and_then(|s| s.as_mut())
            .ok_or(GcError::Dangling)?;
        let v = slot
            .obj
            .as_any_mut()
            .downcast_mut::<T>()
            .ok_or(GcError::TypeMismatch)?;
        Ok(f(v))
    }

    /// Copies the object out (for `T: Clone`).
    pub fn get<T: Trace + Clone>(&self, gc: Gc<T>) -> Result<T, GcError> {
        self.with(gc, |v| v.clone())
    }

    /// Registers an exact root for `gc`.
    pub fn root<T: Trace>(&self, gc: Gc<T>) -> Root<T> {
        let cell = Arc::new(Mutex::new(gc.addr));
        self.state.lock().exact_roots.push(Arc::downgrade(&cell));
        Root {
            cell,
            _marker: PhantomData,
        }
    }

    /// Allocates and immediately roots an object.
    pub fn alloc_root<T: Trace>(&self, value: T) -> Result<Root<T>, GcError> {
        let gc = self.alloc(value)?;
        Ok(self.root(gc))
    }

    /// Registers an ambiguous root: the object's page is pinned during
    /// collections and the object never moves.
    pub fn pin_ambiguous<T: Trace>(&self, gc: Gc<T>) -> AmbiguousPin<T> {
        let cell = Arc::new(Mutex::new(gc.addr));
        self.state
            .lock()
            .ambiguous_roots
            .push(Arc::downgrade(&cell));
        AmbiguousPin {
            cell,
            _marker: PhantomData,
        }
    }

    /// Whether the reference is currently valid.
    pub fn is_live<T: Trace>(&self, gc: Gc<T>) -> bool {
        let st = self.state.lock();
        st.pages
            .get(&gc.addr.page)
            .and_then(|p| p.slots.get(gc.addr.index as usize))
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HeapStats {
        self.state.lock().stats
    }

    /// Bytes currently attributed to live (or conservatively retained)
    /// objects.
    pub fn live_bytes(&self) -> usize {
        self.state.lock().live_bytes
    }

    /// Runs a full collection and returns what it did.
    pub fn collect(&self) -> CollectionStats {
        let mut st = self.state.lock();
        let st = &mut *st;
        let old_space = st.space;
        st.space += 1;
        let new_space = st.space;
        st.alloc_page = None;

        let mut cstats = CollectionStats::default();
        let bytes_before: usize = st.live_bytes;

        // Phase 1: pin pages referenced by live ambiguous roots.
        st.ambiguous_roots.retain(|w| w.upgrade().is_some());
        let ambiguous: Vec<Addr> = st
            .ambiguous_roots
            .iter()
            .filter_map(|w| w.upgrade())
            .map(|c| *c.lock())
            .collect();
        let mut worklist: Vec<Addr> = Vec::new();
        for addr in ambiguous {
            if let Some(page) = st.pages.get_mut(&addr.page) {
                if page.space == old_space && !page.pinned {
                    page.pinned = true;
                    page.space = new_space;
                    cstats.pages_pinned += 1;
                    // Every object on a pinned page survives and must be
                    // scanned.
                    for (i, slot) in page.slots.iter().enumerate() {
                        if slot.is_some() {
                            worklist.push(Addr {
                                page: addr.page,
                                index: i as u32,
                            });
                            cstats.objects_promoted += 1;
                        }
                    }
                }
            }
        }

        // forward(): ensure the object at `addr` is in the new space,
        // returning its (possibly new) address.
        fn forward(
            st: &mut HeapState,
            addr: Addr,
            new_space: u64,
            worklist: &mut Vec<Addr>,
            cstats: &mut CollectionStats,
        ) -> Addr {
            let page = match st.pages.get(&addr.page) {
                Some(p) => p,
                None => return addr, // already-dead reference: leave stale
            };
            if page.space == new_space {
                return addr; // pinned-promoted or already new-space
            }
            if let Some(&fwd) = page.forwards.get(&addr.index) {
                return fwd;
            }
            // Move the object into the new space.
            let slot = {
                let page = st.pages.get_mut(&addr.page).expect("checked above");
                match page
                    .slots
                    .get_mut(addr.index as usize)
                    .and_then(|s| s.take())
                {
                    Some(s) => {
                        page.bytes -= s.size;
                        s
                    }
                    None => return addr, // dead slot: stale reference
                }
            };
            // The moved bytes were already counted in live_bytes; bump()
            // re-adds them, so compensate.
            st.live_bytes -= slot.size;
            cstats.objects_copied += 1;
            cstats.bytes_copied += slot.size as u64;
            let new_addr = KernelHeap::bump(st, slot);
            st.pages
                .get_mut(&addr.page)
                .expect("source page exists")
                .forwards
                .insert(addr.index, new_addr);
            worklist.push(new_addr);
            new_addr
        }

        // Phase 2: forward exact roots.
        st.exact_roots.retain(|w| w.upgrade().is_some());
        let roots: Vec<RootCell> = st.exact_roots.iter().filter_map(|w| w.upgrade()).collect();
        for cell in roots {
            let mut addr = cell.lock();
            *addr = forward(st, *addr, new_space, &mut worklist, &mut cstats);
        }

        // Phase 3: Cheney scan to closure.
        while let Some(addr) = worklist.pop() {
            // Temporarily remove the object so we can trace it with &mut
            // while forward() mutates the heap.
            let mut slot = {
                let page = match st.pages.get_mut(&addr.page) {
                    Some(p) => p,
                    None => continue,
                };
                match page
                    .slots
                    .get_mut(addr.index as usize)
                    .and_then(|s| s.take())
                {
                    Some(s) => s,
                    None => continue,
                }
            };
            {
                let mut visit = |edge: &mut Addr| {
                    *edge = forward(st, *edge, new_space, &mut worklist, &mut cstats);
                };
                let mut tracer = Tracer { visit: &mut visit };
                slot.obj.trace_mut(&mut tracer);
            }
            if let Some(page) = st.pages.get_mut(&addr.page) {
                page.slots[addr.index as usize] = Some(slot);
            }
        }

        // Phase 4: drop unpinned old-space pages; tidy survivors.
        let dead: Vec<u32> = st
            .pages
            .iter()
            .filter(|(_, p)| p.space == old_space)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            let page = st.pages.remove(&id).expect("listed above");
            st.live_bytes -= page.bytes;
            cstats.bytes_freed += page.bytes as u64;
        }
        for page in st.pages.values_mut() {
            page.forwards.clear();
            page.pinned = false;
        }

        cstats.live_bytes_after = st.live_bytes as u64;
        debug_assert!(st.live_bytes <= bytes_before);
        st.stats.collections += 1;
        st.stats.objects_copied += cstats.objects_copied;
        st.stats.objects_promoted += cstats.objects_promoted;
        st.stats.bytes_freed += cstats.bytes_freed;
        st.stats.pages_pinned += cstats.pages_pinned;
        if let Some(obs) = self.obs.get() {
            use spin_check::sync::Ordering;
            obs.counters.gc_collections.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.counters
                .gc_bytes_surviving
                .fetch_add(cstats.live_bytes_after, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.counters
                .pages_held
                .store(st.pages.len() as u64, Ordering::Relaxed); // ordering: Relaxed — gauge for reporting only.
            obs.trace(
                spin_obs::TraceKind::GcPause,
                cstats.live_bytes_after,
                cstats.objects_copied,
            );
        }
        cstats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let heap = KernelHeap::new();
        let gc = heap.alloc(41u64).unwrap();
        heap.with_mut(gc, |v| *v += 1).unwrap();
        assert_eq!(heap.get(gc), Ok(42));
    }

    #[test]
    fn unrooted_objects_die_at_collection() {
        let heap = KernelHeap::new();
        let gc = heap.alloc(7u64).unwrap();
        assert!(heap.is_live(gc));
        let stats = heap.collect();
        assert!(!heap.is_live(gc));
        assert_eq!(heap.get(gc), Err(GcError::Dangling));
        assert!(stats.bytes_freed > 0);
    }

    #[test]
    fn exact_roots_survive_and_are_rewritten() {
        let heap = KernelHeap::new();
        let root = heap.alloc_root(99u64).unwrap();
        let before = root.get();
        let stats = heap.collect();
        let after = root.get();
        assert_eq!(heap.get(after), Ok(99));
        assert_eq!(stats.objects_copied, 1);
        // The object moved: copying collectors compact.
        assert_ne!(before.addr, after.addr);
        // The stale pre-collection reference is detected, not misread.
        assert_eq!(heap.get(before), Err(GcError::Dangling));
    }

    #[test]
    fn ambiguous_pins_do_not_move() {
        let heap = KernelHeap::new();
        let gc = heap.alloc(5u32).unwrap();
        let pin = heap.pin_ambiguous(gc);
        let stats = heap.collect();
        assert_eq!(stats.pages_pinned, 1);
        assert_eq!(pin.get().addr, gc.addr, "pinned objects must not move");
        assert_eq!(heap.get(gc), Ok(5));
    }

    #[test]
    fn dropping_a_root_frees_the_object_next_gc() {
        let heap = KernelHeap::new();
        let root = heap.alloc_root(1u8).unwrap();
        let gc = root.get();
        drop(root);
        heap.collect();
        assert!(!heap.is_live(gc));
    }

    struct Node {
        value: u64,
        next: Option<Gc<Node>>,
    }
    impl Trace for Node {
        fn trace(&mut self, tracer: &mut Tracer<'_>) {
            tracer.edge_opt(&mut self.next);
        }
    }

    #[test]
    fn interior_references_are_traced_and_rewritten() {
        let heap = KernelHeap::new();
        let tail = heap
            .alloc(Node {
                value: 2,
                next: None,
            })
            .unwrap();
        let head = heap
            .alloc(Node {
                value: 1,
                next: Some(tail),
            })
            .unwrap();
        let root = heap.root(head);
        heap.collect();
        let head = root.get();
        let tail_val = heap
            .with(head, |n| n.next.expect("tail survives"))
            .and_then(|t| heap.with(t, |n| n.value))
            .unwrap();
        assert_eq!(tail_val, 2);
        // Unreferenced garbage is gone: allocate one more orphan and check
        // that only the rooted chain remains after another collection.
        heap.alloc(Node {
            value: 3,
            next: None,
        })
        .unwrap();
        let stats = heap.collect();
        assert_eq!(stats.objects_copied, 2);
    }

    #[test]
    fn cycles_are_collected_when_unrooted() {
        let heap = KernelHeap::new();
        let a = heap
            .alloc(Node {
                value: 1,
                next: None,
            })
            .unwrap();
        let b = heap
            .alloc(Node {
                value: 2,
                next: Some(a),
            })
            .unwrap();
        heap.with_mut(a, |n| n.next = Some(b)).unwrap();
        heap.collect();
        assert!(!heap.is_live(a));
        assert!(!heap.is_live(b));
    }

    #[test]
    fn heap_full_triggers_collection_then_errors() {
        let heap = KernelHeap::with_capacity(4096);
        // Fill with garbage; auto-collection should reclaim and keep going.
        for i in 0..500u64 {
            heap.alloc(i).unwrap();
        }
        assert!(heap.stats().collections > 0);
        // Now pin everything live so nothing can be reclaimed.
        let mut roots = Vec::new();
        loop {
            match heap.alloc_root(0u64) {
                Ok(r) => roots.push(r),
                Err(GcError::HeapFull) => break,
                Err(e) => panic!("unexpected error {e:?}"),
            }
            if roots.len() > 10_000 {
                panic!("heap never filled");
            }
        }
    }

    #[test]
    fn disabled_collector_reports_full_instead_of_collecting() {
        let heap = KernelHeap::with_capacity(256);
        heap.set_enabled(false);
        let mut last = Ok(());
        for i in 0..100u64 {
            if let Err(e) = heap.alloc(i) {
                last = Err(e);
                break;
            }
        }
        assert_eq!(last, Err(GcError::HeapFull));
        assert_eq!(heap.stats().collections, 0);
    }

    #[test]
    fn stats_accumulate() {
        let heap = KernelHeap::new();
        let _r = heap.alloc_root(1u64).unwrap();
        heap.alloc(2u64).unwrap();
        heap.collect();
        heap.collect();
        let s = heap.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.collections, 2);
        assert!(s.bytes_freed > 0);
    }

    #[test]
    fn pinned_page_objects_survive_conservatively() {
        // Bartlett's cost: *everything* on a pinned page survives, even
        // objects that are actually dead.
        let heap = KernelHeap::new();
        let garbage = heap.alloc(1u8).unwrap();
        let pinned = heap.alloc(2u8).unwrap(); // same page as `garbage`
        let _pin = heap.pin_ambiguous(pinned);
        heap.collect();
        assert!(heap.is_live(garbage), "same-page garbage survives a pin");
        // After the pin is dropped, the next collection reclaims both.
        drop(_pin);
        heap.collect();
        assert!(!heap.is_live(garbage));
    }
}
