//! Property tests for the mostly-copying collector's invariants:
//!
//! * rooted objects survive any number of collections with their values
//!   intact;
//! * unrooted objects never survive a collection;
//! * pinned objects never move;
//! * traced graphs keep their shape across compaction;
//! * live accounting never goes negative and dead space is reclaimed.

use proptest::prelude::*;
use spin_rt::{Gc, KernelHeap, Trace, Tracer};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a value; root it if the flag is set.
    Alloc { value: u64, rooted: bool },
    /// Allocate and pin ambiguously.
    AllocPinned { value: u64 },
    /// Drop the i-th root (modulo live roots).
    DropRoot { index: usize },
    /// Run a collection.
    Collect,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), any::<bool>()).prop_map(|(value, rooted)| Op::Alloc { value, rooted }),
        any::<u64>().prop_map(|value| Op::AllocPinned { value }),
        any::<usize>().prop_map(|index| Op::DropRoot { index }),
        Just(Op::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rooted_values_always_survive_with_identity(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let heap = KernelHeap::new();
        let mut roots: Vec<(spin_rt::Root<u64>, u64)> = Vec::new();
        let mut pins: Vec<(spin_rt::heap::AmbiguousPin<u64>, u64, Gc<u64>)> = Vec::new();
        let mut unrooted: Vec<Gc<u64>> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { value, rooted } => {
                    let gc = heap.alloc(value).unwrap();
                    if rooted {
                        roots.push((heap.root(gc), value));
                    } else {
                        unrooted.push(gc);
                    }
                }
                Op::AllocPinned { value } => {
                    let gc = heap.alloc(value).unwrap();
                    pins.push((heap.pin_ambiguous(gc), value, gc));
                }
                Op::DropRoot { index } => {
                    if !roots.is_empty() {
                        roots.remove(index % roots.len());
                    }
                }
                Op::Collect => {
                    heap.collect();
                    unrooted.clear(); // all reclaimed by now
                }
            }
            // Invariants hold after every step.
            for (root, expected) in &roots {
                prop_assert_eq!(heap.get(root.get()), Ok(*expected));
            }
            for (pin, expected, original) in &pins {
                prop_assert_eq!(heap.get(pin.get()), Ok(*expected));
                prop_assert_eq!(pin.get(), *original, "pinned objects must not move");
            }
        }

        // After the pins are released and a final collection runs, every
        // unrooted object is gone. (While a pin lives, same-page garbage
        // survives conservatively — Bartlett's documented cost.)
        let stale: Vec<Gc<u64>> = unrooted.clone();
        pins.clear();
        heap.collect();
        for gc in stale {
            prop_assert!(!heap.is_live(gc));
        }
    }

    #[test]
    fn collection_is_idempotent_on_live_set(values in prop::collection::vec(any::<u64>(), 1..40)) {
        let heap = KernelHeap::new();
        let roots: Vec<_> = values.iter().map(|&v| heap.alloc_root(v).unwrap()).collect();
        heap.collect();
        let live_after_one = heap.live_bytes();
        heap.collect();
        prop_assert_eq!(heap.live_bytes(), live_after_one, "second collection frees nothing");
        for (root, &v) in roots.iter().zip(values.iter()) {
            prop_assert_eq!(heap.get(root.get()), Ok(v));
        }
    }
}

/// A linked list node for graph-shape preservation tests.
struct Node {
    value: u64,
    next: Option<Gc<Node>>,
}

impl Trace for Node {
    fn trace(&mut self, tracer: &mut Tracer<'_>) {
        tracer.edge_opt(&mut self.next);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn list_shape_survives_compaction(values in prop::collection::vec(any::<u64>(), 1..30)) {
        let heap = KernelHeap::new();
        // Build the list back to front.
        let mut next = None;
        for &v in values.iter().rev() {
            let node = heap.alloc(Node { value: v, next }).unwrap();
            next = Some(node);
        }
        let head = heap.root(next.expect("non-empty"));
        // Interleave garbage and collections.
        for i in 0..200u64 {
            heap.alloc(i).unwrap();
        }
        heap.collect();
        heap.collect();
        // Walk the list and compare.
        let mut walked = Vec::new();
        let mut cur = Some(head.get());
        while let Some(gc) = cur {
            let (v, next) = heap.with(gc, |n| (n.value, n.next)).unwrap();
            walked.push(v);
            cur = next;
        }
        prop_assert_eq!(walked, values);
    }
}
