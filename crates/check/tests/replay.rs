//! Seed-replay regression: pins the PR 3 raise-vs-destroy schedule.
//!
//! Build with `RUSTFLAGS="--cfg spin_check"`. The scenario is the exact
//! race PR 3 hardened: a raise snapshots the published plan while the
//! owner destroys the event, and must settle to `UnknownEvent`. Here the
//! *harvest closure* deliberately panics on that (legitimate) outcome so
//! the checker hands back the schedule that produces it — giving us a
//! stable, replayable name for the interleaving itself.
//!
//! The test pins three properties:
//!   1. determinism — exploration finds the same first schedule every
//!      run (no wall-clock, no address-order, no hash-order leakage);
//!   2. the pinned seed below still decodes and replays to the same
//!      outcome (schedule enumeration is part of the tool's contract —
//!      if a model change legitimately reorders it, update the literal
//!      and say so in the commit);
//!   3. a replay is a single execution, not a re-exploration.

#![cfg(all(spin_check, not(spin_check_mutant)))]

use spin_check::model::Checker;
use spin_check::thread;
use spin_core::{DispatchError, Dispatcher, Identity};

/// First schedule (bounded DFS order, preemption bound 2) in which the
/// raise loses the race and observes the destroyed flag. The raise path
/// gained two scheduling points with the hot-swap quiesce gate (the
/// in-flight count increment and the gate load) and one more with the
/// overload ledger (the quota-cell bind load at the admission edge),
/// which shifted the DFS enumeration by three serial steps in total.
const PINNED_SEED: &str = "pb2-0-0-0-0-0-0-0-0-1-1-1-1-0-1";

const HARVEST: &str = "HARVEST: raise lost the race";

fn harvest_scenario() {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("chk.destroy", Identity::kernel("chk"));
    owner.set_primary(|_| 7).expect("fresh event");
    let t = thread::spawn(move || {
        owner.destroy().expect("owner destroys once");
    });
    let r = d.raise(&ev, 0);
    t.join().expect("destroyer thread");
    if matches!(r, Err(DispatchError::UnknownEvent { .. })) {
        panic!("{}", HARVEST);
    }
}

#[test]
fn raise_vs_destroy_schedule_is_pinned_and_replayable() {
    let first = Checker::with_bound(2).check(harvest_scenario);
    let failure = first
        .failure
        .expect("some schedule must make the raise lose the race");
    assert!(
        failure.message.contains(HARVEST),
        "unexpected failure: {failure:?}"
    );
    assert_eq!(
        failure.seed, PINNED_SEED,
        "schedule enumeration changed; if intentional, update PINNED_SEED"
    );

    let second = Checker::with_bound(2).check(harvest_scenario);
    assert_eq!(
        second.failure.expect("still found").seed,
        failure.seed,
        "exploration must be deterministic run-to-run"
    );

    let replay = Checker::with_bound(2).replay(PINNED_SEED, harvest_scenario);
    let replayed = replay.failure.expect("pinned seed must reproduce");
    assert!(replayed.message.contains(HARVEST));
    assert_eq!(replayed.seed, PINNED_SEED, "replay reports the same seed");
    assert_eq!(replay.executions, 1, "a replay is exactly one execution");
    assert!(replay.complete, "a replay terminates the search");
}

/// Replaying a seed on a *passing* schedule (the very first DFS schedule
/// is serial: the raise wins) reports no failure — replay does not
/// manufacture violations.
#[test]
fn replaying_a_clean_schedule_reports_no_failure() {
    let report = Checker::with_bound(2).replay("pb2-0", harvest_scenario);
    assert!(report.complete);
    assert!(
        report.failure.is_none(),
        "serial schedule must pass: {:?}",
        report.failure
    );
}
