//! Bound-2 model of the inter-shard [`spin_sal::Mailbox`] — the only
//! channel between per-core kernel shards, so its concurrent post/drain
//! paths carry the whole multicore determinism argument.
//!
//! Build with `RUSTFLAGS="--cfg spin_check"` (see `tests/checks.rs` for
//! the cfg discipline). Two properties are explored exhaustively at
//! preemption bound 2, and one legitimate partial-drain interleaving is
//! pinned by replay seed so the schedule enumeration itself is a
//! regression surface.

#![cfg(all(spin_check, not(spin_check_mutant)))]

use spin_check::model::Checker;
use spin_check::sync::{Arc, AtomicU64, Ordering};
use spin_check::thread;
use spin_sal::Mailbox;

const BOUND: u32 = 2;

fn checker() -> Checker {
    Checker::with_bound(BOUND)
}

/// Under every bound-2 interleaving of two posters (distinct lanes) and a
/// racing drain, no envelope is lost or duplicated, and every drain batch
/// comes out sorted by `(deliver_at, lane, seq)`.
#[test]
fn racing_posts_and_drain_lose_nothing_and_stay_sorted() {
    let report = checker().check(|| {
        let mb = Mailbox::new();
        let fired = Arc::new(AtomicU64::new(0));
        let post = |mb: &Mailbox, lane: u64| {
            let fired = fired.clone();
            assert!(mb.post(100, lane, move |_| {
                fired.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — the join below is the sync point.
            }));
        };
        let m2 = mb.clone();
        let f2 = fired.clone();
        let t = thread::spawn(move || {
            let fired = f2.clone();
            assert!(m2.post(100, 2, move |_| {
                fired.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — the join below is the sync point.
            }));
        });
        post(&mb, 1);
        let drained = mb.drain();
        let keys: Vec<_> = drained
            .iter()
            .map(|e| (e.deliver_at, e.lane, e.seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "drain batch out of order");
        for env in drained {
            (env.action)(100);
        }
        t.join().expect("poster");
        for env in mb.drain() {
            (env.action)(100);
        }
        assert_eq!(
            fired.load(Ordering::Relaxed), // ordering: Relaxed — both threads joined above.
            2,
            "an envelope was lost or duplicated"
        );
        assert_eq!(mb.len(), 0);
        let (posted, drained_n, dropped) = mb.stats();
        assert_eq!((posted, drained_n, dropped), (2, 2, 0));
    });
    eprintln!(
        "mailbox post/drain: executions={} steps={}",
        report.executions, report.steps
    );
    assert!(report.failure.is_none(), "violation: {:?}", report.failure);
    assert!(report.complete, "schedule space must be exhausted");
}

/// First bound-2 schedule in which the racing drain observes exactly one
/// of the two envelopes — the legitimate partial-drain interleaving the
/// conservative barrier tolerates (the second envelope is picked up at
/// the next safe point). It is DFS schedule zero: the root thread posts
/// and drains before the spawned poster ever runs. Pinned by seed so
/// schedule enumeration changes are deliberate.
const PINNED_SEED: &str = "pb2-0-0-0-0-0-0-0-0-0-0";

const HARVEST: &str = "HARVEST: drain saw a partial mailbox";

fn harvest_scenario() {
    let mb = Mailbox::new();
    let m2 = mb.clone();
    let t = thread::spawn(move || {
        assert!(m2.post(100, 2, |_| {}));
    });
    assert!(mb.post(100, 1, |_| {}));
    let drained = mb.drain();
    t.join().expect("poster");
    if drained.len() == 1 {
        panic!("{}", HARVEST);
    }
}

#[test]
fn partial_drain_schedule_is_pinned_and_replayable() {
    let first = checker().check(harvest_scenario);
    let failure = first
        .failure
        .expect("some schedule must interleave the drain between the posts");
    assert!(
        failure.message.contains(HARVEST),
        "unexpected failure: {failure:?}"
    );
    assert_eq!(
        failure.seed, PINNED_SEED,
        "schedule enumeration changed; if intentional, update PINNED_SEED"
    );

    let replay = checker().replay(PINNED_SEED, harvest_scenario);
    let replayed = replay.failure.expect("pinned seed must reproduce");
    assert!(replayed.message.contains(HARVEST));
    assert_eq!(replay.executions, 1, "a replay is exactly one execution");
}
