//! Mutant detection: proves the model checker actually catches the bug
//! classes it claims to.
//!
//! Build with `RUSTFLAGS="--cfg spin_check --cfg spin_check_mutant"` (and
//! its own `CARGO_TARGET_DIR`, e.g. `target/spin-check-mutant`). That cfg
//! plants two known-wrong orderings in the kernel:
//!
//! 1. `obs::ring::Ring::push` publishes the slot sequence with `Relaxed`
//!    instead of `Release` — a reader can validate the sequence before
//!    the record words are visible and return a torn record.
//! 2. `core::dispatch::Dispatcher::destroy` stores the destroyed flag
//!    *after* publishing the cleared plan — a racing raise can snapshot
//!    the empty plan while the flag still reads false and settle to
//!    `NoHandlerRan` instead of `UnknownEvent`.
//!
//! Each test runs the same scenario as the corresponding trunk check in
//! `tests/checks.rs`, asserts the checker reports a failure with a
//! non-empty schedule seed, and replays the seed to prove the failing
//! interleaving is deterministic.

#![cfg(all(spin_check, spin_check_mutant))]

use spin_check::model::Checker;
use spin_check::sync::Arc;
use spin_check::thread;
use spin_core::{DispatchError, Dispatcher, Identity};
use spin_obs::account::DomainId;
use spin_obs::ring::{Ring, TraceKind, TraceRecord};

const BOUND: u32 = 2;

fn ring_rec(t: u64) -> TraceRecord {
    TraceRecord {
        time: t,
        domain: DomainId(t as u32),
        kind: TraceKind::PacketRx,
        a: t * 3,
        b: t * 7,
    }
}

fn ring_scenario() {
    let ring = Arc::new(Ring::new(1));
    ring.push(ring_rec(1));
    let ring2 = Arc::clone(&ring);
    let t = thread::spawn(move || {
        ring2.push(ring_rec(2));
    });
    for r in ring.drain() {
        assert!(
            r.a == r.time * 3 && r.b == r.time * 7 && r.domain == DomainId(r.time as u32),
            "torn record escaped the seqlock validation: {r:?}"
        );
    }
    t.join().expect("producer thread");
}

fn destroy_scenario() {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("chk.destroy", Identity::kernel("chk"));
    owner.set_primary(|_| 7).expect("fresh event");
    let t = thread::spawn(move || {
        owner.destroy().expect("owner destroys once");
    });
    match d.raise(&ev, 0) {
        Ok(7) => {}
        Err(DispatchError::UnknownEvent { .. }) => {}
        other => panic!("raise during destroy leaked: {other:?}"),
    }
    t.join().expect("destroyer thread");
}

/// Runs `scenario` under the checker, asserts the mutant is caught, and
/// replays the reported seed to prove the schedule is deterministic.
fn assert_caught(name: &str, scenario: fn()) {
    let report = Checker::with_bound(BOUND).check(scenario);
    let failure = report
        .failure
        .clone()
        .unwrap_or_else(|| panic!("{name}: the planted mutant was NOT caught ({report:?})"));
    assert!(
        !failure.seed.is_empty(),
        "{name}: failure must carry a seed"
    );
    eprintln!(
        "{name}: caught after {} executions; seed {}",
        report.executions, failure.seed
    );
    let replay = Checker::with_bound(BOUND).replay(&failure.seed, scenario);
    let replayed = replay
        .failure
        .unwrap_or_else(|| panic!("{name}: seed {} did not replay", failure.seed));
    assert_eq!(
        replayed.message, failure.message,
        "{name}: replay must reproduce the same violation"
    );
    assert_eq!(replay.executions, 1, "{name}: a replay is one execution");
}

#[test]
fn relaxed_seq_publish_mutant_is_caught() {
    assert_caught("ring-mutant", ring_scenario);
}

#[test]
fn destroyed_flag_after_plan_clear_mutant_is_caught() {
    assert_caught("destroy-mutant", destroy_scenario);
}
