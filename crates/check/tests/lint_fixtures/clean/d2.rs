//! D2-clean fixture: hash lookups (order-independent) and ordered
//! iteration are both fine. Note the distinct names: the rule tracks
//! hash-typed *names* per file, so reusing `m` for the `BTreeMap` would
//! (by documented under-approximation policy) still flag it.

use std::collections::{BTreeMap, HashMap};

pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    m.get(&k).copied()
}

pub fn ordered_keys(b: &BTreeMap<u64, u64>) -> Vec<u64> {
    b.keys().copied().collect()
}
