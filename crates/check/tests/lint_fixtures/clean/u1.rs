//! U1-clean fixture: no `unsafe` anywhere (the string below is a string,
//! not a keyword — the token-level lexer must not be fooled).

pub fn describe() -> &'static str {
    "this crate has no unsafe code; // unsafe { } in a string is not code"
}
