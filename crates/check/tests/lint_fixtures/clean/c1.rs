//! C1-clean fixture (linted as a charged module): every public fn either
//! charges the clock, reaches a charge through a local call, or documents
//! its charging story.

pub fn send(clock: &Clock) {
    clock.advance(1);
}

pub fn forward(clock: &Clock) {
    send(clock);
}

// uncharged: diagnostics accessor.
pub fn stats() -> u64 {
    0
}

// charged: in the Mmu (pte_update per installed page).
pub fn map_page(mmu: &Mmu) {
    mmu.install();
}
