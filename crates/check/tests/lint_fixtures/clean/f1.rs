//! F1-clean fixture: all synchronization through the facade.

use spin_check::sync::{AtomicU64, Mutex};

pub struct Slot {
    inner: Mutex<u64>,
    count: AtomicU64,
}
