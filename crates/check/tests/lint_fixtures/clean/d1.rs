//! D1-clean fixture: virtual time only — no wall-clock, randomness,
//! thread identity, or ambient environment.

pub fn now_ns(clock: &Clock) -> u64 {
    clock.now().0
}
