//! O1-clean fixture: every ordering site carries its justification.

use spin_check::sync::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) // ordering: Relaxed — monotonic counter; readers snapshot.
}

pub fn publish(c: &AtomicU64, v: u64) {
    // ordering: Release — pairs with the Acquire load in `subscribe`.
    c.store(v, Ordering::Release);
}
