pub fn seed() -> u64 {
    rand::thread_rng().gen()
}

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
