//! D2 fixture: iteration over a hash-ordered map (must fire on line 7,
//! and only there).

use std::collections::HashMap;

pub fn keys(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect()
}
