//! C1 fixture (linted as a charged module): `stats` neither charges the
//! clock nor documents its story (must fire on line 9, and only there);
//! `send` is clean — it reaches `advance` through `push`.

pub fn send(clock: &Clock) {
    push(clock);
}

pub fn stats() -> u64 {
    0
}

fn push(clock: &Clock) {
    clock.advance(1);
}
