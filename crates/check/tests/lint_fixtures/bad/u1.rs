//! U1 fixture: `unsafe` outside any allowlisted island (must fire on
//! line 5, and only there).

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
