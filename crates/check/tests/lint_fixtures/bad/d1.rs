//! D1 fixture: a wall-clock read (must fire on line 4, and only there).

pub fn now_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
