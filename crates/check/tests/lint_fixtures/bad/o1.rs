//! O1 fixture: an atomic access with no `// ordering:` justification
//! (must fire on line 7, and only there).

use spin_check::sync::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
