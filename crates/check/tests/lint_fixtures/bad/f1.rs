//! F1 fixture: a direct `parking_lot` import (must fire on line 4, and
//! only there).

use parking_lot::Mutex;

pub struct Slot {
    inner: Mutex<u64>,
}
