//! Fixture kernel crate: clean, with one allowlisted unsafe island.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod ring;

pub fn double(x: u64) -> u64 {
    x * 2
}
