//! The allowlisted unsafe island: permitted here, but every site still
//! needs its `// SAFETY:` proof.

pub fn first(xs: &[u64]) -> u64 {
    // SAFETY: callers guarantee `xs` is non-empty (checked at the gate).
    unsafe { *xs.get_unchecked(0) }
}
