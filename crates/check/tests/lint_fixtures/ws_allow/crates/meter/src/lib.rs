//! Fixture measurement crate: fully waived by the `rule = "*"` entry, so
//! its by-design wall-clock reads produce no findings.

pub fn wall_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
