//! End-to-end `spin-lint` gate tests over the fixture corpus in
//! `tests/lint_fixtures/`: every bad snippet fires its rule at the exact
//! line (and nowhere else), every clean snippet is silent, the allowlist
//! fixtures behave, and the real workspace stays lint-clean. Runs under
//! the normal cfg — the lint is a plain static pass.

use std::path::{Path, PathBuf};

use spin_check::lint::{lint_source, lint_workspace, Config, Finding};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_str(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_source(rel, src, cfg, &mut findings);
    findings
}

/// The charged-module config the `c1.rs` fixtures are linted under.
fn charged_cfg(rel: &str) -> Config {
    Config::parse(&format!("[charged]\nmodules = [\"{rel}\"]\n")).expect("fixture config")
}

/// (rule, fixture, expected line) for the single-violation bad corpus.
/// C1 is separate — it needs the charged-module config.
const BAD: [(&str, &str, usize); 5] = [
    ("D1", "bad/d1.rs", 4),
    ("D2", "bad/d2.rs", 7),
    ("F1", "bad/f1.rs", 4),
    ("O1", "bad/o1.rs", 7),
    ("U1", "bad/u1.rs", 5),
];

#[test]
fn bad_fixtures_fire_at_the_exact_line() {
    let cfg = Config::default();
    for (rule, file, line) in BAD {
        let findings = lint_str(file, &fixture(file), &cfg);
        assert_eq!(
            findings.len(),
            1,
            "{file}: exactly one finding expected, got {findings:?}"
        );
        assert_eq!((findings[0].rule, findings[0].line), (rule, line), "{file}");
    }
    let file = "bad/c1.rs";
    let findings = lint_str(file, &fixture(file), &charged_cfg(file));
    assert_eq!(findings.len(), 1, "{file}: {findings:?}");
    assert_eq!((findings[0].rule, findings[0].line), ("C1", 9), "{file}");
}

#[test]
fn clean_fixtures_are_silent() {
    let cfg = Config::default();
    for rule in ["d1", "d2", "f1", "o1", "u1"] {
        let file = format!("clean/{rule}.rs");
        let findings = lint_str(&file, &fixture(&file), &cfg);
        assert!(findings.is_empty(), "{file}: false positives {findings:?}");
    }
    let file = "clean/c1.rs";
    let findings = lint_str(file, &fixture(file), &charged_cfg(file));
    assert!(findings.is_empty(), "{file}: false positives {findings:?}");
}

/// A workspace-shaped fixture with no `lint.toml`: the walk finds the
/// determinism and unsafe violations, and the crate-root check demands
/// `#![forbid(unsafe_code)]`.
#[test]
fn workspace_fixture_reports_all_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures/ws_bad");
    let report = lint_workspace(&root).expect("fixture is readable");
    let got: Vec<(String, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.to_string_lossy().into_owned(), f.line, f.rule))
        .collect();
    let lib = "crates/kern/src/lib.rs".to_string();
    assert_eq!(
        got,
        vec![
            (lib.clone(), 1, "U1"), // missing #![forbid(unsafe_code)]
            (lib.clone(), 2, "D1"), // thread_rng
            (lib, 6, "U1"),         // unsafe outside any island
        ],
        "{:#?}",
        report.findings
    );
}

/// A workspace-shaped fixture whose `lint.toml` waives a measurement
/// crate outright and names one audited unsafe island: zero findings.
#[test]
fn workspace_fixture_honors_the_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures/ws_allow");
    let report = lint_workspace(&root).expect("fixture is readable");
    assert!(
        report.findings.is_empty(),
        "allowlisted fixture must be clean:\n{:#?}",
        report.findings
    );
    assert_eq!(report.allow_entries, 2);
}

/// A `U1` allow entry permits `unsafe` but still demands the `// SAFETY:`
/// proof at each site.
#[test]
fn allowlisted_unsafe_still_needs_its_safety_comment() {
    let cfg = Config::parse(
        "[[allow]]\nrule = \"U1\"\npath = \"island.rs\"\nreason = \"audited island\"\n",
    )
    .expect("fixture config");
    let src = "pub fn peek(p: *const u64) -> u64 {\n    unsafe { *p }\n}\n";
    let findings = lint_str("island.rs", src, &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(
        (findings[0].rule, findings[0].detail, findings[0].line),
        ("U1", "unsafe-missing-safety-comment", 2)
    );
    let justified = "pub fn peek(p: *const u64) -> u64 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n";
    assert!(lint_str("island.rs", justified, &cfg).is_empty());
}

/// The regression gate: the real workspace must stay lint-clean under its
/// own `lint.toml`, through both the new API and the `spin_check::audit`
/// back-compat alias.
#[test]
fn real_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("workspace is readable");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let alias = spin_check::audit::audit_workspace(&root).expect("workspace is readable");
    assert!(alias.is_empty(), "spin-audit alias must agree");
}
