//! The kernel concurrency check suite: exhaustive bounded-DFS exploration
//! of the lock-free structures' racing paths.
//!
//! Build with `RUSTFLAGS="--cfg spin_check"` (and a separate
//! `CARGO_TARGET_DIR`, e.g. `target/spin-check`) — under the normal cfg
//! this file compiles to nothing so plain `cargo test` stays fast. Under
//! `--cfg spin_check_mutant` the suite is also disabled: the planted bugs
//! make these invariants *supposed* to fail there, and `tests/mutants.rs`
//! asserts exactly that.
//!
//! Each check constructs fresh kernel structures inside the checked
//! closure, races them from model-registered threads, and panics on any
//! outcome outside the allowed set. The checker turns that panic into a
//! [`spin_check::model::Failure`] carrying a replayable schedule seed.

#![cfg(all(spin_check, not(spin_check_mutant)))]

use spin_check::model::Checker;
use spin_check::sync::{Arc, AtomicU64, Mutex, Ordering};
use spin_check::thread;
use spin_core::fault::{Containment, ContainmentPolicy};
use spin_core::{
    Constraints, DispatchError, Dispatcher, Identity, InstallSpec, KeyFn, QuotaLedger, QuotaSpec,
    QuotaVerdict,
};
use spin_fault::{FaultPlan, Injection, SiteConfig};
use spin_obs::account::DomainId;
use spin_obs::ring::{Ring, TraceKind, TraceRecord};
use spin_sal::Clock;

/// Preemption bound used by every check. Two preemptions cover every bug
/// class this suite targets (each planted mutant needs at most one), and
/// the issue's acceptance bar requires `>= 2`.
const BOUND: u32 = 2;

fn checker() -> Checker {
    Checker::with_bound(BOUND)
}

/// Asserts a clean, exhaustive exploration and prints its size (visible
/// with `--nocapture`; quoted in EXPERIMENTS.md).
fn assert_clean(name: &str, report: &spin_check::model::Report) {
    eprintln!(
        "{name}: executions={} steps={} max_depth={}",
        report.executions, report.steps, report.max_depth
    );
    assert!(
        report.failure.is_none(),
        "{name} violation: {:?}",
        report.failure
    );
    assert!(report.complete, "{name}: schedule space must be exhausted");
}

/// A raise racing an install + uninstall of a secondary handler must
/// return the result of *some* published plan: the primary alone, or the
/// primary plus the secondary (last handler wins without a reducer). It
/// must never error — the primary is installed for the whole race.
#[test]
fn raise_vs_install_uninstall_plan_swap() {
    let report = checker().check(|| {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("chk.swap", Identity::kernel("chk"));
        owner.set_primary(|x| *x + 1).expect("fresh event");
        let d2 = d.clone();
        let ev2 = ev.clone();
        let t = thread::spawn(move || {
            let ext = Identity::extension("swapper");
            let id = ev2.install(ext.clone(), |_| 99).expect("install allowed");
            d2.uninstall(&ev2, id, &ext).expect("uninstall own handler");
        });
        match d.raise(&ev, 5) {
            // Primary alone (fast path) — or primary-then-secondary,
            // where the default reduction returns the final handler.
            Ok(6) | Ok(99) => {}
            other => panic!("raise saw an unpublished plan: {other:?}"),
        }
        t.join().expect("swapper thread");
        assert_eq!(d.handler_count(&ev).expect("event alive"), 1);
    });
    assert_clean("plan-swap", &report);
}

/// A raise racing the install + uninstall of a *keyed* handler — each of
/// which rebuilds the guard-set compilation and swaps the plan. Every
/// raise must run against exactly one published plan: the uncompiled
/// single-primary plan (fast path) or the compiled plan where the keyed
/// handler's table entry wins. A key-missing raise must never reach the
/// keyed handler through any interleaving, and after the churn settles
/// the plan decompiles back to the fast path.
#[test]
fn raise_vs_keyed_plan_rebuild_swap() {
    let report = checker().check(|| {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("chk.keyed", Identity::kernel("chk"));
        owner.set_primary(|x| *x + 1).expect("fresh event");
        let d2 = d.clone();
        let ev2 = ev.clone();
        let t = thread::spawn(move || {
            let ext = Identity::extension("keyer");
            let key = KeyFn::new(|x: &u64| *x);
            let id = ev2
                .install_keyed(ext.clone(), &key, 5, |_| 99)
                .expect("install allowed");
            d2.uninstall(&ev2, id, &ext).expect("uninstall own handler");
        });
        // Key hit: primary alone, or primary-then-keyed (last wins).
        match d.raise(&ev, 5) {
            Ok(6) | Ok(99) => {}
            other => panic!("raise saw an unpublished or torn plan: {other:?}"),
        }
        // Key miss: the keyed handler must never run, compiled or not.
        match d.raise(&ev, 3) {
            Ok(4) => {}
            other => panic!("a key miss leaked a handler result: {other:?}"),
        }
        t.join().expect("keyer thread");
        assert_eq!(d.handler_count(&ev).expect("event alive"), 1);
        assert_eq!(d.raise(&ev, 5), Ok(6), "plan decompiled after churn");
    });
    assert_clean("keyed-plan-swap", &report);
}

/// A raise racing `destroy` settles to the primary's result or to
/// `UnknownEvent` — never `NoHandlerRan` from a half-destroyed event.
/// This is the PR 3 invariant; the `spin_check_mutant` build reorders the
/// destroyed-flag store after the plan clear and must be caught here.
#[test]
fn raise_vs_destroy_settles_to_unknown_event() {
    let report = checker().check(|| {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("chk.destroy", Identity::kernel("chk"));
        owner.set_primary(|_| 7).expect("fresh event");
        let t = thread::spawn(move || {
            owner.destroy().expect("owner destroys once");
        });
        match d.raise(&ev, 0) {
            Ok(7) => {}
            Err(DispatchError::UnknownEvent { .. }) => {}
            other => panic!("raise during destroy leaked: {other:?}"),
        }
        t.join().expect("destroyer thread");
    });
    assert_clean("raise-vs-destroy", &report);
}

fn ring_rec(t: u64) -> TraceRecord {
    TraceRecord {
        time: t,
        domain: DomainId(t as u32),
        kind: TraceKind::PacketRx,
        a: t * 3,
        b: t * 7,
    }
}

fn assert_intact(r: &TraceRecord) {
    assert!(
        r.a == r.time * 3 && r.b == r.time * 7 && r.domain == DomainId(r.time as u32),
        "torn record escaped the seqlock validation: {r:?}"
    );
}

/// A drain racing an overwriting push on a capacity-1 ring must never
/// return a torn record: every drained record is internally consistent,
/// and nothing is silently lost — intact + dropped == pushed. The
/// `spin_check_mutant` build publishes the sequence with `Relaxed` and
/// must be caught here.
#[test]
fn ring_seqlock_never_returns_torn_records() {
    let report = checker().check(|| {
        let ring = Arc::new(Ring::new(1));
        ring.push(ring_rec(1));
        let ring2 = Arc::clone(&ring);
        let t = thread::spawn(move || {
            // Overwrites position 0's slot while the drain may be mid-read.
            ring2.push(ring_rec(2));
        });
        let drained = ring.drain();
        for r in &drained {
            assert_intact(r);
        }
        t.join().expect("producer thread");
        let rest = ring.drain();
        for r in &rest {
            assert_intact(r);
        }
        let intact = (drained.len() + rest.len()) as u64;
        assert_eq!(
            intact + ring.dropped(),
            ring.pushed(),
            "record accounting must reconcile"
        );
    });
    assert_clean("seqlock", &report);
}

/// Two raises racing a panicking handler under a one-strike policy: the
/// breaker must trip, uninstall the handler, and quarantine the domain —
/// exactly once per fault, with no deadlock between the breaker lock and
/// the dispatcher's write path, and no raise ever observing a result from
/// the faulty handler.
#[test]
fn breaker_trip_and_quarantine_vs_concurrent_raises() {
    let report = checker().check(|| {
        let d = Dispatcher::unmetered();
        let containment = Containment::install(
            &d,
            None,
            ContainmentPolicy {
                strikes: 1,
                window: 1_000_000_000,
                trips_to_quarantine: 1,
            },
        );
        let (ev, _owner) = d.define::<u64, u64>("chk.breaker", Identity::kernel("chk"));
        ev.install(Identity::extension("faulty"), |_| panic!("chk boom"))
            .expect("install allowed");
        let d2 = d.clone();
        let ev2 = ev.clone();
        let t = thread::spawn(move || d2.raise(&ev2, 1));
        let here = d.raise(&ev, 1);
        let there = t.join().expect("raiser thread");
        // The handler always panics, so neither raise may produce Ok.
        for r in [&here, &there] {
            assert!(
                matches!(r, Err(DispatchError::NoHandlerRan { .. })),
                "faulty handler leaked a result: {r:?}"
            );
        }
        // At least one raise reached the handler, so the one-strike
        // breaker must have tripped and quarantined the domain.
        assert!(containment.faults_seen() >= 1, "a fault was delivered");
        assert!(
            containment.is_quarantined("faulty"),
            "one-trip policy must quarantine"
        );
        let trips = containment.trips("faulty");
        assert!(
            (1..=2).contains(&trips),
            "one trip per faulting raise, got {trips}"
        );
        assert_eq!(
            d.handler_count(&ev).expect("event alive"),
            0,
            "tripped handler must be uninstalled"
        );
    });
    assert_clean("breaker", &report);
}

/// A raise racing the hot-swap protocol — quiesce, rebind v1 → v2,
/// resume. The quiesce gate and the raise path form a store-buffer pair
/// (`in_flight` increment vs `gate` load against `gate` store vs
/// `in_flight` load), so this check exhausts exactly the interleavings
/// where a weaker ordering would let a raise neither park nor drain. The
/// allowed outcomes: the raise ran v1 (pre-rebind snapshot), ran v2
/// (post-resume, or parked-then-unparked under the hold lock), or parked
/// and was replayed by resume. Exactly one version runs exactly once.
///
/// `drain_in_flight` is exercised only after the raiser joins: its spin
/// loop terminates under every *fair* schedule, but bounded DFS explores
/// unfair ones too, where a spinning drain would never yield to the
/// raiser it waits for.
#[test]
fn raise_vs_quiesce_rebind_resume() {
    let report = checker().check(|| {
        let d = Dispatcher::unmetered();
        let (ev, _owner) = d.define::<u64, u64>("chk.hotswap", Identity::kernel("chk"));
        let v1 = Identity::extension("v1");
        let runs = Arc::new(AtomicU64::new(0));
        let r1 = Arc::clone(&runs);
        ev.install(v1.clone(), move |x: &u64| {
            r1.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — model-checked counter, read after join.
            *x + 1
        })
        .expect("install v1");

        let ev2 = ev.clone();
        let t = thread::spawn(move || ev2.raise(5));

        ev.quiesce().expect("event alive");
        let r2 = Arc::clone(&runs);
        ev.rebind(
            &v1,
            &v1,
            vec![InstallSpec {
                installer: Identity::extension("v2"),
                handler: std::sync::Arc::new(move |x: &u64| {
                    r2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — model-checked counter, read after join.
                    *x + 2
                }),
                guards: Vec::new(),
                constraints: Constraints::default(),
            }],
        )
        .expect("rebind v1 -> v2");
        let replayed = ev.resume().expect("event alive");

        let raised = t.join().expect("raiser thread");
        ev.drain_in_flight().expect("event alive");
        match raised {
            Ok(6) => assert_eq!(replayed, 0, "a completed v1 raise never parked"),
            Ok(7) => {}
            Err(DispatchError::Held { .. }) => {
                assert_eq!(replayed, 1, "a parked raise must be replayed by resume")
            }
            other => panic!("raise racing a hot-swap leaked: {other:?}"),
        }
        assert_eq!(
            runs.load(Ordering::Relaxed), // ordering: Relaxed — raiser joined; no concurrent writers remain.
            1,
            "exactly one version ran exactly once"
        );
        let hold = ev.hold_stats().expect("event alive");
        assert_eq!(hold.held, hold.replayed, "nothing stays parked");
        assert_eq!(hold.overflowed, 0);
    });
    assert_clean("hot-swap-gate", &report);
}

/// The quota admission gate racing a concurrent budget release: with a
/// one-slot in-flight budget held by a settled dispatch, an admit racing
/// that dispatch's `complete` must either observe the held slot and
/// refuse with `Throttled` (the ladder's first rung — never `Shed`), or
/// observe the release and take the slot. The CAS loop pins the required
/// orderings: a stale in-flight load re-loops or refuses, so no
/// interleaving admits past the budget, double-spends a release, or
/// strands the slot. After the race the slot is free, a fresh admit
/// succeeds, and the ledger identity holds exactly.
#[test]
fn raise_vs_throttle_release() {
    let report = checker().check(|| {
        let ledger = QuotaLedger::new();
        let cell = ledger.register(
            "chk.tenant",
            QuotaSpec {
                max_in_flight: 1,
                window: 1_000_000,
                ..QuotaSpec::default()
            },
        );
        assert_eq!(cell.admit(0), Ok(()), "the budget's one slot");
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.complete(10));
        match cell.admit(0) {
            Ok(()) => {
                // Saw the release: the slot is ours, and only ours.
                assert!(cell.snapshot().in_flight <= 1, "budget overspent");
                cell.complete(5);
            }
            Err(QuotaVerdict::Throttled) => {} // saw the held slot
            Err(QuotaVerdict::Shed) => {
                panic!("a lone throttle must stay on the ladder's first rung")
            }
        }
        t.join().expect("releaser thread");
        let s = cell.snapshot();
        assert_eq!(s.in_flight, 0, "every admitted raise released its slot");
        assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);
        assert_eq!(s.admitted, s.completed + s.in_flight);
        assert_eq!(cell.admit(0), Ok(()), "released budget re-admits");
        cell.complete(1);
    });
    assert_clean("throttle-release", &report);
}

/// Arming an advance hook while another thread draws a clock charge: the
/// hook observes the full charge or nothing (never a partial/zero charge),
/// time advances exactly once, and the armed hook is visible to any later
/// charge — the atomic `has_hook` fast path may not strand a subscriber.
#[test]
fn clock_hook_arming_vs_advance_draw() {
    let report = checker().check(|| {
        let clock = Clock::new();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let clock2 = clock.clone();
        let seen2 = Arc::clone(&seen);
        let t = thread::spawn(move || {
            let sink = Arc::clone(&seen2);
            clock2.add_advance_hook(Box::new(move |ns| sink.lock().push(ns)));
        });
        clock.advance(5);
        t.join().expect("armer thread");
        assert_eq!(clock.now(), 5, "the charge lands exactly once");
        {
            let v = seen.lock();
            assert!(
                v.is_empty() || *v == [5],
                "hook saw a partial charge: {:?}",
                *v
            );
        }
        // The hook is armed now; a subsequent charge must reach it even
        // if the racing charge above missed it via the has_hook fast path.
        clock.advance(2);
        let v = seen.lock();
        assert_eq!(*v.last().expect("armed hook draws"), 2);
    });
    assert_clean("clock-hook", &report);
}

/// Two concurrent draws on one armed fault site must take distinct draw
/// ordinals and reconcile exactly: with `panic_always` both inject, and
/// the site report shows precisely two hits and two panics — never a
/// lost or double-counted tally. Checkable at all since PR 9 moved
/// `spin-fault` onto the `spin_check::sync` facade.
#[test]
fn fault_plan_concurrent_draws_reconcile() {
    let report = checker().check(|| {
        let plan = FaultPlan::new(7);
        plan.configure("chk.site", SiteConfig::panic_always());
        let hook = plan.hook("chk.site");
        let h2 = hook.clone();
        let t = thread::spawn(move || h2.draw());
        let mine = hook.draw();
        let theirs = t.join().expect("drawer thread");
        assert!(
            matches!(mine, Some(Injection::Panic)),
            "armed site must inject: {mine:?}"
        );
        assert!(
            matches!(theirs, Some(Injection::Panic)),
            "armed site must inject: {theirs:?}"
        );
        let rep = plan.report();
        assert_eq!(rep.len(), 1, "one site registered");
        assert_eq!((rep[0].hits, rep[0].panics), (2, 2), "tallies reconcile");
    });
    assert_clean("fault-draws", &report);
}

/// Racing first-use registrations of the same site name through the
/// double-checked read/write-lock path must agree on a single site
/// state: one registry entry, both hooks drawing against it.
#[test]
fn fault_site_registration_race_is_single() {
    let report = checker().check(|| {
        let plan = FaultPlan::new(1);
        let p2 = plan.clone();
        let t = thread::spawn(move || p2.hook("chk.reg"));
        let mine = plan.hook("chk.reg");
        let theirs = t.join().expect("registrar thread");
        let _ = mine.draw();
        let _ = theirs.draw();
        let rep = plan.report();
        assert_eq!(rep.len(), 1, "registration must not duplicate the site");
        assert_eq!(rep[0].hits, 2, "both hooks share the site's draw index");
    });
    assert_clean("fault-reg", &report);
}
