//! End-to-end audit gate test: `spin_check::audit` must pass the real
//! workspace and fail a fixture tree seeded with one violation of every
//! rule. Runs under the normal cfg — the audit is a plain static pass.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use spin_check::audit::audit_workspace;

/// Builds a throwaway workspace containing every violation class.
fn write_fixture() -> PathBuf {
    let root = std::env::temp_dir().join(format!("spin-audit-fixture-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    // A facade-covered crate path (crates/core) with a direct parking_lot
    // import, an unjustified ordering site, and unsafe outside the
    // allowlist, missing both its SAFETY comment and the crate lint.
    let core = root.join("crates/core/src");
    fs::create_dir_all(&core).expect("fixture dirs");
    fs::write(
        core.join("lib.rs"),
        r#"use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
"#,
    )
    .expect("fixture lib.rs");
    // The allowlisted unsafe location, but with no `// SAFETY:` comment.
    let obs = root.join("crates/obs/src");
    fs::create_dir_all(&obs).expect("fixture dirs");
    fs::write(
        obs.join("ring.rs"),
        r#"pub fn first(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}
"#,
    )
    .expect("fixture ring.rs");
    root
}

#[test]
fn audit_fails_the_fixture_with_every_rule() {
    let root = write_fixture();
    let findings = audit_workspace(&root).expect("fixture is readable");
    let kinds: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    let expected: BTreeSet<&str> = [
        "direct-sync-import",
        "ordering-missing-justification",
        "unsafe-outside-allowlist",
        "unsafe-missing-safety-comment",
        "missing-crate-unsafe-lint",
    ]
    .into_iter()
    .collect();
    assert_eq!(
        kinds, expected,
        "every audit rule must fire on the fixture: {findings:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn audit_passes_the_real_workspace() {
    // The integration test runs with the crate as cwd; the workspace root
    // is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let findings = audit_workspace(&root).expect("workspace is readable");
    assert!(
        findings.is_empty(),
        "the workspace must stay audit-clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
