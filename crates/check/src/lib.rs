//! spin-check: deterministic concurrency model checking and a source-audit
//! gate for the kernel's lock-free core.
//!
//! The SPIN paper's safety argument (§2, "enforced modularity") says
//! extensions cannot violate memory safety or interface boundaries. After
//! PRs 1–3 moved the dispatcher, the obs flight recorder and the containment
//! breaker onto lock-free fast paths, that argument rests on roughly two
//! hundred hand-placed atomic-ordering sites. This crate makes those sites
//! checkable instead of merely reviewable:
//!
//! - [`sync`] is a facade over the sync primitives the concurrency-critical
//!   crates use. In a normal build it literally re-exports
//!   `std::sync::atomic` / `parking_lot` / `std::sync` types — zero cost,
//!   byte-identical codegen, verified by the bench goldens. Under
//!   `--cfg spin_check` it swaps in the instrumented types from [`instr`].
//! - [`model`] is a loom-style bounded-DFS explorer: real OS threads are
//!   serialized through a token-passing scheduler, every instrumented
//!   operation is a schedule point, weak-memory visibility is modeled with
//!   vector clocks so stale values are actually observable, and failing
//!   schedules print a seed that replays the exact interleaving.
//! - [`lint`] is the static gate behind `spin-lint` (and its back-compat
//!   alias `spin-audit`, see [`audit`]): a token-level verifier over the
//!   whole workspace built on the lexer in [`lex`]. Six rules — D1
//!   determinism (no wall clock / ambient randomness / env reads), D2
//!   hash-iteration order, F1 facade enforcement, O1 `// ordering:`
//!   justifications, U1 unsafe containment with `// SAFETY:` comments,
//!   C1 charge coverage in the hot-path modules — with a declarative
//!   `lint.toml` allowlist and a machine-readable `--json` report that
//!   `scripts/verify.sh` gates on.
//!
//! The model runtime compiles unconditionally (so the checker checks itself
//! under the tier-1 gate); only the [`sync`] re-exports switch on
//! `cfg(spin_check)`.

#![forbid(unsafe_code)]

pub mod audit;
pub mod hooks;
pub mod instr;
pub mod lex;
pub mod lint;
pub mod model;
pub mod sync;
pub mod thread;
