//! spin-check: deterministic concurrency model checking and a source-audit
//! gate for the kernel's lock-free core.
//!
//! The SPIN paper's safety argument (§2, "enforced modularity") says
//! extensions cannot violate memory safety or interface boundaries. After
//! PRs 1–3 moved the dispatcher, the obs flight recorder and the containment
//! breaker onto lock-free fast paths, that argument rests on roughly two
//! hundred hand-placed atomic-ordering sites. This crate makes those sites
//! checkable instead of merely reviewable:
//!
//! - [`sync`] is a facade over the sync primitives the concurrency-critical
//!   crates use. In a normal build it literally re-exports
//!   `std::sync::atomic` / `parking_lot` / `std::sync` types — zero cost,
//!   byte-identical codegen, verified by the bench goldens. Under
//!   `--cfg spin_check` it swaps in the instrumented types from [`instr`].
//! - [`model`] is a loom-style bounded-DFS explorer: real OS threads are
//!   serialized through a token-passing scheduler, every instrumented
//!   operation is a schedule point, weak-memory visibility is modeled with
//!   vector clocks so stale values are actually observable, and failing
//!   schedules print a seed that replays the exact interleaving.
//! - [`audit`] is the static gate behind `spin-audit`: no `unsafe` outside
//!   the allowlisted `obs::ring` module, every `unsafe` carries a
//!   `// SAFETY:` comment, every `Ordering::*` site carries an
//!   `// ordering:` justification, and facade-covered crates must not
//!   import `std::sync::atomic` or `parking_lot` directly.
//!
//! The model runtime compiles unconditionally (so the checker checks itself
//! under the tier-1 gate); only the [`sync`] re-exports switch on
//! `cfg(spin_check)`.

#![forbid(unsafe_code)]

pub mod audit;
pub mod hooks;
pub mod instr;
pub mod model;
pub mod sync;
pub mod thread;
