//! A token-level Rust lexer for the static safety rules in [`crate::lint`].
//!
//! Grown from the line-splitter that backed the original `spin-audit`
//! substring scanner: where that pass could only blank string literals and
//! strip comments per line, this one produces a real token stream —
//! identifiers, punctuation (with `::` fused), and literals — each stamped
//! with its 1-based source line, alongside the per-line comment text the
//! justification rules (`// SAFETY:`, `// ordering:`, `// uncharged:`)
//! scan. It is deliberately *not* a full Rust parser: no macro expansion,
//! no type resolution. The lint rules are written against token shapes and
//! documented with a false-positive policy (DESIGN.md decision #13).
//!
//! Handled so the rules can't be fooled by surface syntax:
//! - line (`//`), block (`/* */`, nested) and doc comments — collected as
//!   per-line comment text, never tokens;
//! - string, raw-string (`r#".."#`, any hash count), byte-string and char
//!   literals — collapsed to a single literal token, contents discarded;
//! - the char-literal / lifetime ambiguity (`'a'` vs `<'a>`);
//! - multi-line literals and comments (tokens land on the line they start).

use std::fmt;

/// What a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `for`, `HashMap`, ...).
    Ident,
    /// Punctuation. Single characters, except `::` which is fused into
    /// one token so path matching is a plain sequence compare.
    Punct,
    /// A literal: string/char/byte-string (contents discarded) or number.
    Lit,
    /// A lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub line: usize,
    pub kind: TokKind,
    pub text: String,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.text)
    }
}

/// The lexer's output: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order; multi-line constructs carry their start line.
    pub toks: Vec<Tok>,
    /// `comments[n]` is every comment character seen on 0-based line `n`
    /// (line, block and doc comments concatenated).
    pub comments: Vec<String>,
}

impl Lexed {
    /// The shared justification scanner (rules U1 / O1 / C1): is `needle`
    /// present in a comment on 0-based line `at` or within the `window`
    /// lines above it? One implementation, per-rule windows — so the
    /// rules cannot drift apart on what "a nearby comment" means.
    pub fn justified(&self, at: usize, window: usize, needle: &str) -> bool {
        let lo = at.saturating_sub(window);
        let hi = at.min(self.comments.len().saturating_sub(1));
        self.comments[lo..=hi].iter().any(|c| c.contains(needle))
    }

    /// Does the token sequence starting at `i` spell `pat` exactly?
    /// (`::` is a single token, so `["std", "::", "time"]` matches the
    /// path `std::time` and nothing else.)
    pub fn seq_at(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, p)| self.toks.get(i + k).is_some_and(|t| t.text == *p))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and per-line comments. Never fails: unterminated
/// constructs end at EOF (the rules run on real, compiling source; fixture
/// snippets are well-formed).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let nlines = src.lines().count().max(1);
    let mut out = Lexed {
        toks: Vec::new(),
        comments: vec![String::new(); nlines + 1],
    };
    let mut i = 0;
    let mut line = 0usize; // 0-based while lexing; +1 on emit
    let push = |out: &mut Lexed, line: usize, kind: TokKind, text: String| {
        out.toks.push(Tok {
            line: line + 1,
            kind,
            text,
        });
    };
    let note = |out: &mut Lexed, line: usize, c: char| {
        if let Some(s) = out.comments.get_mut(line) {
            s.push(c);
        }
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    note(&mut out, line, chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        } else {
                            note(&mut out, line, chars[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push(&mut out, start, TokKind::Lit, "\"\"".into());
            }
            '\'' => {
                // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                let is_char = matches!(chars.get(i + 1), Some('\\'))
                    || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
                if is_char {
                    let start = line;
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        i += 3;
                    }
                    push(&mut out, start, TokKind::Lit, "''".into());
                } else {
                    let mut text = String::from("'");
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        text.push(chars[i]);
                        i += 1;
                    }
                    push(&mut out, line, TokKind::Lifetime, text);
                }
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                push(&mut out, line, TokKind::Punct, "::".into());
                i += 2;
            }
            // `b"..."` byte strings escape like ordinary strings.
            'b' if chars.get(i + 1) == Some(&'"') => {
                let start = line;
                i += 2;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push(&mut out, start, TokKind::Lit, "\"\"".into());
            }
            _ if is_ident_start(c) => {
                // `r"..."` / `r#"..."#` / `br#"..."#` raw-string prefixes
                // are literals, not identifiers.
                let raw_at = match c {
                    'r' => Some(i + 1),
                    'b' if chars.get(i + 1) == Some(&'r') => Some(i + 2),
                    _ => None,
                };
                let raw = raw_at.and_then(|j| {
                    let mut hashes = 0;
                    let mut k = j;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    (chars.get(k) == Some(&'"')).then_some((k + 1, hashes))
                });
                if let Some((mut j, hashes)) = raw {
                    let start = line;
                    while j < chars.len() {
                        if chars[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if chars[j] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    push(&mut out, start, TokKind::Lit, "\"\"".into());
                    i = j;
                } else {
                    let mut text = String::new();
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        text.push(chars[i]);
                        i += 1;
                    }
                    push(&mut out, line, TokKind::Ident, text);
                }
            }
            _ if c.is_ascii_digit() => {
                // Numbers (including suffixed / float / hex forms) lex as
                // one literal token; `1.0.sqrt()` style splits are not a
                // concern for any rule.
                let mut text = String::new();
                while i < chars.len()
                    && (is_ident_continue(chars[i])
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    text.push(chars[i]);
                    i += 1;
                }
                push(&mut out, line, TokKind::Lit, text);
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                push(&mut out, line, TokKind::Punct, c.to_string());
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_paths_and_puncts() {
        assert_eq!(
            texts("use std::time::Instant;"),
            ["use", "std", "::", "time", "::", "Instant", ";"]
        );
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let l = lex("let s = \"std::time unsafe\"; // ordering: note\n/* unsafe */ let y = 1;\n");
        assert!(l.toks.iter().all(|t| t.text != "unsafe"));
        assert!(l.comments[0].contains("ordering: note"));
        assert!(l.comments[1].contains("unsafe"));
        assert!(l.toks.iter().any(|t| t.text == "y" && t.line == 2));
    }

    #[test]
    fn raw_and_byte_strings_collapse() {
        let l = lex(
            "let a = r#\"parking_lot \"quoted\" body\"#; let b = b\"bytes\"; let c = br#\"x\"#;",
        );
        assert!(l.toks.iter().all(|t| t.text != "parking_lot"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 3);
        assert!(l.toks.iter().any(|t| t.text == "c"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        assert!(l.toks.iter().any(|t| t.text == "str"));
        let l = lex("let c = 'x'; let d = '\\n';");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let l = lex("let s = \"a\nb\nc\";\nlet t = 2;");
        let t = l.toks.iter().find(|t| t.text == "t").expect("t");
        assert_eq!(t.line, 4);
    }

    #[test]
    fn justified_scans_the_window() {
        let l = lex("// SAFETY: fine\n\nunsafe {}\n");
        assert!(l.justified(2, 5, "SAFETY:"));
        assert!(!l.justified(2, 1, "SAFETY:"));
        assert!(!l.justified(2, 5, "ordering:"));
    }

    #[test]
    fn seq_matches_fused_paths() {
        let l = lex("std::sync::atomic::AtomicU64");
        assert!(l.seq_at(0, &["std", "::", "sync", "::", "atomic"]));
        assert!(!l.seq_at(0, &["std", "::", "time"]));
    }
}
