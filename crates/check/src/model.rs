//! Deterministic bounded-DFS concurrency model checker (loom-style).
//!
//! Real OS threads are serialized through a token-passing scheduler: every
//! instrumented operation (see [`crate::instr`]) *announces* itself and
//! parks; the scheduler grants exactly one thread the token, that thread
//! performs its operation under the model lock, runs user code until its
//! next announce, and parks again. Between two schedule points exactly one
//! shared-memory operation executes, so the scheduler's decision sequence
//! fully determines the interleaving.
//!
//! Exploration is depth-first over a persistent decision stack. Two kinds
//! of decision node exist: *thread* choices (which runnable thread executes
//! next) and *value* choices (which store a weakly-ordered load observes).
//! Weak-memory visibility is modeled with vector clocks: each store keeps
//! the full happens-before clock of its storing thread plus an optional
//! release clock; a load may observe any store at or above its coherence
//! floor (per-thread last-read index joined with the newest
//! happens-before-ordered store), and an acquire load joins the chosen
//! store's release clock. This is what makes a `Relaxed` publish actually
//! observable as a torn read instead of being masked by the sequential
//! executor.
//!
//! Pruning: classic sleep sets over an object-granularity independence
//! relation (two operations commute unless they touch the same atomic with
//! at least one write, or the same lock with at least one exclusive side),
//! plus a configurable preemption bound (Musuvathi/Qadeer-style context
//! bounding: once the budget is spent, the running thread keeps the token
//! while it stays enabled).
//!
//! Every decision is recorded; a failing execution reports a seed string
//! that [`Checker::replay`] feeds back verbatim to reproduce the exact
//! interleaving deterministically.

use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Serializes model-checking runs: the instrumented types consult
/// thread-local context, but panic-hook suppression and the step budget are
/// process-global, so two concurrent explorations would interfere.
static MODEL_GATE: Mutex<()> = Mutex::new(());

/// Per-execution step budget; exceeding it means a livelock (e.g. an
/// unbounded spin loop) slipped into modeled code.
const STEP_LIMIT: u64 = 200_000;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Identity of a controlled thread: which execution it belongs to and its
/// model thread id.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Panic payload used to unwind controlled threads out of a poisoned
/// execution. Public so embedders' `catch_unwind` wrappers can rethrow it;
/// any instrumented op re-raises it, so a kernel `catch_unwind` that
/// swallows one cannot wedge the executor.
pub struct AbortExecution;

fn abort_execution() -> ! {
    panic::panic_any(AbortExecution)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u32>);

impl VClock {
    fn new() -> Self {
        VClock(Vec::new())
    }

    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn inc(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            if *v > self.0[i] {
                self.0[i] = *v;
            }
        }
    }

    /// Componentwise `self <= other` (happens-before when clocks are full
    /// thread clocks).
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, v)| *v <= other.get(i))
    }
}

// ---------------------------------------------------------------------------
// Pending operations and independence
// ---------------------------------------------------------------------------

/// The shared-memory operation a parked thread is about to perform.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// A freshly spawned thread waiting for its first grant.
    Start,
    /// A pure schedule point (spawn handoff, explicit yield).
    Yield,
    AtomicLoad {
        obj: u64,
    },
    AtomicStore {
        obj: u64,
    },
    AtomicRmw {
        obj: u64,
    },
    LockAcquire {
        obj: u64,
        shared: bool,
    },
    TryLock {
        obj: u64,
        shared: bool,
    },
    LockRelease {
        obj: u64,
    },
    Join {
        target: usize,
    },
}

/// Object-granularity independence: used both to wake sleeping threads and
/// to keep the sleep sets sound. Conservative where it is cheap to be.
fn dependent(a: &Op, b: &Op) -> bool {
    use Op::*;
    let atomic_obj = |op: &Op| match op {
        AtomicLoad { obj } => Some((*obj, false)),
        AtomicStore { obj } | AtomicRmw { obj } => Some((*obj, true)),
        _ => None,
    };
    let lock_obj = |op: &Op| match op {
        LockAcquire { obj, shared } | TryLock { obj, shared } => Some((*obj, *shared, true)),
        LockRelease { obj } => Some((*obj, false, false)),
        _ => None,
    };
    if let (Some((xa, wa)), Some((xb, wb))) = (atomic_obj(a), atomic_obj(b)) {
        return xa == xb && (wa || wb);
    }
    if let (Some((xa, sa, aa)), Some((xb, sb, ab))) = (lock_obj(a), lock_obj(b)) {
        // Two shared acquisitions of the same RwLock commute; every other
        // same-lock pair does not (release enables acquire, exclusive
        // conflicts with everything).
        return xa == xb && !(sa && sb && aa && ab);
    }
    false
}

// ---------------------------------------------------------------------------
// Modeled objects
// ---------------------------------------------------------------------------

/// One store event in an atomic's modification order.
#[derive(Clone, Debug)]
struct StoreEv {
    value: u64,
    /// Full happens-before clock of the storing thread at the store; a
    /// reader whose clock dominates this may no longer observe *older*
    /// stores.
    store_vc: VClock,
    /// Release clock: `Some` for release stores and for RMWs continuing a
    /// release sequence. An acquire load that observes this store joins it.
    rel_vc: Option<VClock>,
}

#[derive(Debug)]
struct AtomicObj {
    /// Entire modification order (executions are short; no capping).
    stores: Vec<StoreEv>,
    /// Per-thread coherence floor: absolute index of the newest store this
    /// thread has observed (read or written).
    last_read: Vec<usize>,
}

impl AtomicObj {
    fn new(init: u64) -> Self {
        AtomicObj {
            stores: vec![StoreEv {
                value: init,
                store_vc: VClock::new(),
                rel_vc: Some(VClock::new()),
            }],
            last_read: Vec::new(),
        }
    }

    fn floor_for(&self, tid: usize, vc: &VClock) -> usize {
        let mut floor = self.last_read.get(tid).copied().unwrap_or(0);
        for (i, st) in self.stores.iter().enumerate() {
            if i > floor && st.store_vc.le(vc) {
                floor = i;
            }
        }
        floor
    }

    fn note_read(&mut self, tid: usize, idx: usize) {
        if self.last_read.len() <= tid {
            self.last_read.resize(tid + 1, 0);
        }
        self.last_read[tid] = self.last_read[tid].max(idx);
    }
}

#[derive(Debug, Default)]
struct LockObj {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Accumulated release clock; joined by every acquirer.
    vc: VClock,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    run: Run,
    /// `Some` while parked at a schedule point; `None` while running user
    /// code (only ever true of the token holder).
    pending: Option<Op>,
    vc: VClock,
}

/// One decision point on the persistent DFS stack.
#[derive(Debug)]
struct Node {
    /// Remaining candidate values (tids for thread nodes, absolute store
    /// indices for value nodes), already sleep-set filtered at creation.
    options: Vec<u64>,
    idx: usize,
    /// Sleep set at node creation (thread nodes only).
    sleep: Vec<usize>,
    is_thread: bool,
}

#[derive(Clone, Debug)]
pub struct Failure {
    pub message: String,
    pub seed: String,
}

struct ExecState {
    threads: Vec<ThreadSt>,
    active: usize,
    last_active: usize,
    preemptions: u32,
    atomics: HashMap<u64, AtomicObj>,
    locks: HashMap<u64, LockObj>,
    /// Decision index within the current execution.
    depth: usize,
    /// Values taken at each decision this execution (the seed).
    taken: Vec<u64>,
    cur_sleep: Vec<usize>,
    /// Sleep-set pruned: the rest of this execution is redundant; follow
    /// first options without recording nodes.
    pruned: bool,
    poisoned: bool,
    done: bool,
    failure: Option<Failure>,
    steps: u64,
    /// Persistent DFS stack (survives `reset`).
    stack: Vec<Node>,
    /// Replay plan: decision values to follow verbatim.
    replay: Option<Vec<u64>>,
    bound: u32,
}

fn push_unique(v: &mut Vec<usize>, t: usize) {
    if !v.contains(&t) {
        v.push(t);
    }
}

/// Resolve one decision point: replay > prune > stack revisit > new node.
fn decide(g: &mut ExecState, is_thread: bool, options: Vec<u64>) -> u64 {
    debug_assert!(!options.is_empty());
    let d = g.depth;
    g.depth += 1;
    if let Some(plan) = &g.replay {
        let v = plan.get(d).copied().unwrap_or(options[0]);
        let v = if options.contains(&v) { v } else { options[0] };
        g.taken.push(v);
        return v;
    }
    if g.pruned {
        g.taken.push(options[0]);
        return options[0];
    }
    if d < g.stack.len() {
        let node = &g.stack[d];
        let v = node.options[node.idx];
        assert!(
            options.contains(&v),
            "spin-check internal: divergent re-execution at depth {d}"
        );
        if node.is_thread {
            // Rebuild the sleep set: siblings already fully explored from
            // this node sleep for the remainder of this branch.
            let mut base = node.sleep.clone();
            for &t in &node.options[..node.idx] {
                push_unique(&mut base, t as usize);
            }
            g.cur_sleep = base;
        }
        g.taken.push(v);
        return v;
    }
    let (opts, sleep) = if is_thread {
        let filtered: Vec<u64> = options
            .iter()
            .copied()
            .filter(|&t| !g.cur_sleep.contains(&(t as usize)))
            .collect();
        if filtered.is_empty() {
            // Every candidate sleeps: this subtree is covered elsewhere.
            g.pruned = true;
            g.taken.push(options[0]);
            return options[0];
        }
        (filtered, g.cur_sleep.clone())
    } else {
        (options, Vec::new())
    };
    let v = opts[0];
    g.stack.push(Node {
        options: opts,
        idx: 0,
        sleep,
        is_thread,
    });
    g.taken.push(v);
    v
}

fn encode_seed(bound: u32, taken: &[u64]) -> String {
    let mut s = format!("pb{bound}");
    for v in taken {
        s.push('-');
        s.push_str(&v.to_string());
    }
    s
}

fn parse_seed(seed: &str) -> Option<(u32, Vec<u64>)> {
    let rest = seed.strip_prefix("pb")?;
    let mut parts = rest.split('-');
    let bound: u32 = parts.next()?.parse().ok()?;
    let mut plan = Vec::new();
    for p in parts {
        plan.push(p.parse().ok()?);
    }
    Some((bound, plan))
}

// ---------------------------------------------------------------------------
// Execution: scheduler + modeled operations
// ---------------------------------------------------------------------------

pub(crate) struct Execution {
    mx: Mutex<ExecState>,
    cv: Condvar,
    reals: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Execution {
    fn new(bound: u32) -> Self {
        Execution {
            mx: Mutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                last_active: 0,
                preemptions: 0,
                atomics: HashMap::new(),
                locks: HashMap::new(),
                depth: 0,
                taken: Vec::new(),
                cur_sleep: Vec::new(),
                pruned: false,
                poisoned: false,
                done: false,
                failure: None,
                steps: 0,
                stack: Vec::new(),
                replay: None,
                bound,
            }),
            cv: Condvar::new(),
            reals: Mutex::new(Vec::new()),
        }
    }

    fn reset(&self, replay: Option<Vec<u64>>) {
        let mut g = self.mx.lock();
        let mut vc = VClock::new();
        vc.inc(0);
        g.threads = vec![ThreadSt {
            run: Run::Runnable,
            pending: None,
            vc,
        }];
        g.active = 0;
        g.last_active = 0;
        g.preemptions = 0;
        g.atomics.clear();
        g.locks.clear();
        g.depth = 0;
        g.taken.clear();
        g.cur_sleep.clear();
        g.pruned = false;
        g.poisoned = false;
        g.done = false;
        g.failure = None;
        g.steps = 0;
        g.replay = replay;
    }

    fn op_enabled(g: &ExecState, t: usize) -> bool {
        match &g.threads[t].pending {
            Some(Op::LockAcquire { obj, shared }) => match g.locks.get(obj) {
                None => true,
                Some(l) => l.writer.is_none() && (*shared || l.readers.is_empty()),
            },
            Some(Op::Join { target }) => g.threads[*target].run == Run::Finished,
            Some(_) => true,
            // `None` + Runnable is the token holder itself; never a grant
            // candidate from a schedule call.
            None => false,
        }
    }

    fn fail(&self, g: &mut ExecState, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(Failure {
                message: msg,
                seed: encode_seed(g.bound, &g.taken),
            });
        }
        g.poisoned = true;
    }

    /// Pick and grant the next thread. Called with the caller parked (its
    /// `pending` set) or finished.
    fn schedule(&self, g: &mut ExecState) {
        if g.threads.iter().all(|t| t.run == Run::Finished) {
            g.done = true;
            return;
        }
        if g.done || g.poisoned {
            return;
        }
        let enabled: Vec<usize> = (0..g.threads.len())
            .filter(|&t| g.threads[t].run == Run::Runnable && Self::op_enabled(g, t))
            .collect();
        if enabled.is_empty() {
            self.fail(g, "deadlock: every live thread is blocked".to_string());
            return;
        }
        let choice = if enabled.len() == 1 {
            enabled[0]
        } else if g.preemptions >= g.bound && enabled.contains(&g.last_active) {
            // Preemption budget spent: the previous holder keeps the token.
            g.last_active
        } else {
            decide(g, true, enabled.iter().map(|&t| t as u64).collect()) as usize
        };
        let op = g.threads[choice].pending.clone().unwrap_or(Op::Yield);
        let mut sleep = std::mem::take(&mut g.cur_sleep);
        sleep.retain(|&s| {
            s != choice
                && s < g.threads.len()
                && !dependent(g.threads[s].pending.as_ref().unwrap_or(&Op::Yield), &op)
        });
        g.cur_sleep = sleep;
        if choice != g.last_active && enabled.contains(&g.last_active) {
            g.preemptions += 1;
        }
        g.last_active = choice;
        g.active = choice;
    }

    /// Core announce-park-perform protocol for every instrumented op.
    fn announce_and<R>(
        &self,
        me: usize,
        op: Op,
        perform: impl FnOnce(&mut ExecState, usize) -> R,
    ) -> R {
        let mut g = self.mx.lock();
        if g.poisoned {
            drop(g);
            abort_execution();
        }
        g.threads[me].pending = Some(op);
        self.schedule(&mut g);
        if g.active != me || g.poisoned || g.done {
            self.cv.notify_all();
        }
        while g.active != me {
            if g.poisoned {
                drop(g);
                abort_execution();
            }
            self.cv.wait(&mut g);
        }
        if g.poisoned {
            drop(g);
            abort_execution();
        }
        g.steps += 1;
        if g.steps > STEP_LIMIT {
            self.fail(
                &mut g,
                "step limit exceeded: possible livelock in modeled code".to_string(),
            );
            self.cv.notify_all();
            drop(g);
            abort_execution();
        }
        let r = perform(&mut g, me);
        g.threads[me].pending = None;
        r
    }

    /// Thread wrap-up: mark finished, record a real panic as a failure,
    /// hand the token onward.
    fn finish(&self, me: usize, failure: Option<String>) {
        let mut g = self.mx.lock();
        g.threads[me].run = Run::Finished;
        g.threads[me].pending = None;
        if let Some(msg) = failure {
            self.fail(&mut g, msg);
        }
        self.schedule(&mut g);
        self.cv.notify_all();
    }

    // -- atomics ----------------------------------------------------------

    pub(crate) fn atomic_load(&self, me: usize, id: u64, ord: Ordering, init: u64) -> u64 {
        self.announce_and(me, Op::AtomicLoad { obj: id }, |g, me| {
            g.threads[me].vc.inc(me);
            let vc = g.threads[me].vc.clone();
            let obj = g.atomics.entry(id).or_insert_with(|| AtomicObj::new(init));
            let floor = obj.floor_for(me, &vc);
            let hi = obj.stores.len() - 1;
            let options: Vec<u64> = (floor..=hi).map(|i| i as u64).collect();
            let chosen = if options.len() == 1 {
                options[0] as usize
            } else {
                decide(g, false, options) as usize
            };
            let obj = g.atomics.get_mut(&id).expect("object present");
            obj.note_read(me, chosen);
            let st = &obj.stores[chosen];
            let val = st.value;
            let rel = st.rel_vc.clone();
            if is_acquire(ord) {
                if let Some(r) = rel {
                    g.threads[me].vc.join(&r);
                }
            }
            val
        })
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        id: u64,
        ord: Ordering,
        init: u64,
        new: u64,
        write_real: impl FnOnce(u64),
    ) {
        self.announce_and(me, Op::AtomicStore { obj: id }, |g, me| {
            g.threads[me].vc.inc(me);
            let vc = g.threads[me].vc.clone();
            let obj = g.atomics.entry(id).or_insert_with(|| AtomicObj::new(init));
            let rel_vc = is_release(ord).then(|| vc.clone());
            obj.stores.push(StoreEv {
                value: new,
                store_vc: vc,
                rel_vc,
            });
            let idx = obj.stores.len() - 1;
            obj.note_read(me, idx);
            write_real(new);
        })
    }

    /// Unconditional RMW (swap / fetch_*). Reads the newest store
    /// (RMW atomicity), continues release sequences.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        id: u64,
        ord: Ordering,
        init: u64,
        f: impl FnOnce(u64) -> u64,
        write_real: impl FnOnce(u64),
    ) -> u64 {
        self.announce_and(me, Op::AtomicRmw { obj: id }, |g, me| {
            g.threads[me].vc.inc(me);
            let obj = g.atomics.entry(id).or_insert_with(|| AtomicObj::new(init));
            let last = obj.stores.len() - 1;
            let old = obj.stores[last].value;
            let prev_rel = obj.stores[last].rel_vc.clone();
            if is_acquire(ord) {
                if let Some(r) = &prev_rel {
                    g.threads[me].vc.join(r);
                }
            }
            let new = f(old);
            let vc = g.threads[me].vc.clone();
            let rel_vc = if is_release(ord) {
                Some(vc.clone())
            } else {
                prev_rel
            };
            let obj = g.atomics.get_mut(&id).expect("object present");
            obj.stores.push(StoreEv {
                value: new,
                store_vc: vc,
                rel_vc,
            });
            let idx = obj.stores.len() - 1;
            obj.note_read(me, idx);
            write_real(new);
            old
        })
    }

    /// Compare-exchange against the newest store.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        id: u64,
        success: Ordering,
        failure: Ordering,
        init: u64,
        expected: u64,
        new: u64,
        write_real: impl FnOnce(u64),
    ) -> Result<u64, u64> {
        self.announce_and(me, Op::AtomicRmw { obj: id }, |g, me| {
            g.threads[me].vc.inc(me);
            let obj = g.atomics.entry(id).or_insert_with(|| AtomicObj::new(init));
            let last = obj.stores.len() - 1;
            let old = obj.stores[last].value;
            let prev_rel = obj.stores[last].rel_vc.clone();
            if old != expected {
                if is_acquire(failure) {
                    if let Some(r) = &prev_rel {
                        g.threads[me].vc.join(r);
                    }
                }
                let obj = g.atomics.get_mut(&id).expect("object present");
                obj.note_read(me, last);
                return Err(old);
            }
            if is_acquire(success) {
                if let Some(r) = &prev_rel {
                    g.threads[me].vc.join(r);
                }
            }
            let vc = g.threads[me].vc.clone();
            let rel_vc = if is_release(success) {
                Some(vc.clone())
            } else {
                prev_rel
            };
            let obj = g.atomics.get_mut(&id).expect("object present");
            obj.stores.push(StoreEv {
                value: new,
                store_vc: vc,
                rel_vc,
            });
            let idx = obj.stores.len() - 1;
            obj.note_read(me, idx);
            write_real(new);
            Ok(old)
        })
    }

    // -- locks ------------------------------------------------------------

    pub(crate) fn lock_acquire(&self, me: usize, id: u64, shared: bool) {
        self.announce_and(me, Op::LockAcquire { obj: id, shared }, |g, me| {
            g.threads[me].vc.inc(me);
            let lock = g.locks.entry(id).or_default();
            if shared {
                lock.readers.push(me);
            } else {
                debug_assert!(lock.writer.is_none() && lock.readers.is_empty());
                lock.writer = Some(me);
            }
            let lvc = lock.vc.clone();
            g.threads[me].vc.join(&lvc);
        })
    }

    pub(crate) fn try_lock_acquire(&self, me: usize, id: u64, shared: bool) -> bool {
        self.announce_and(me, Op::TryLock { obj: id, shared }, |g, me| {
            g.threads[me].vc.inc(me);
            let lock = g.locks.entry(id).or_default();
            let free = lock.writer.is_none() && (shared || lock.readers.is_empty());
            if free {
                if shared {
                    lock.readers.push(me);
                } else {
                    lock.writer = Some(me);
                }
                let lvc = lock.vc.clone();
                g.threads[me].vc.join(&lvc);
            }
            free
        })
    }

    /// Lock release never panics: it runs from guard `Drop`, possibly
    /// during a user-panic unwind, where a second panic would abort the
    /// process. On poison it silently skips the model release (the
    /// execution is being torn down anyway).
    pub(crate) fn lock_release(&self, me: usize, id: u64, shared: bool) {
        let mut g = self.mx.lock();
        if g.poisoned || g.done || g.threads[me].run == Run::Finished {
            return;
        }
        g.threads[me].pending = Some(Op::LockRelease { obj: id });
        self.schedule(&mut g);
        if g.active != me || g.poisoned || g.done {
            self.cv.notify_all();
        }
        while g.active != me {
            if g.poisoned {
                return;
            }
            self.cv.wait(&mut g);
        }
        if g.poisoned {
            return;
        }
        g.steps += 1;
        g.threads[me].vc.inc(me);
        let vc = g.threads[me].vc.clone();
        if let Some(lock) = g.locks.get_mut(&id) {
            if shared {
                lock.readers.retain(|&r| r != me);
            } else {
                lock.writer = None;
            }
            lock.vc.join(&vc);
        }
        g.threads[me].pending = None;
    }

    // -- threads ----------------------------------------------------------

    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.announce_and(me, Op::Join { target }, |g, me| {
            let tvc = g.threads[target].vc.clone();
            g.threads[me].vc.join(&tvc);
            g.threads[me].vc.inc(me);
        })
    }

    pub(crate) fn yield_now(&self, me: usize) {
        self.announce_and(me, Op::Yield, |_, _| {});
    }
}

/// Spawn a controlled thread; returns its model tid. The spawn itself is a
/// schedule point so the child may run before the parent's next op.
pub(crate) fn model_spawn(
    exec: &Arc<Execution>,
    parent: usize,
    f: Box<dyn FnOnce() + Send>,
) -> usize {
    let child = {
        let mut g = exec.mx.lock();
        let child = g.threads.len();
        let mut vc = g.threads[parent].vc.clone();
        vc.inc(child);
        g.threads.push(ThreadSt {
            run: Run::Runnable,
            pending: Some(Op::Start),
            vc,
        });
        child
    };
    let e2 = exec.clone();
    let handle = std::thread::Builder::new()
        .name(format!("spin-check-{child}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    exec: e2.clone(),
                    tid: child,
                })
            });
            // Gate: wait for the first grant before touching user code.
            {
                let mut g = e2.mx.lock();
                while g.active != child {
                    if g.poisoned {
                        drop(g);
                        e2.finish(child, None);
                        return;
                    }
                    e2.cv.wait(&mut g);
                }
                if g.poisoned {
                    drop(g);
                    e2.finish(child, None);
                    return;
                }
                g.steps += 1;
                g.threads[child].pending = None;
            }
            match panic::catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => e2.finish(child, None),
                Err(p) if p.downcast_ref::<AbortExecution>().is_some() => e2.finish(child, None),
                Err(p) => e2.finish(child, Some(panic_message(p.as_ref()))),
            }
        })
        .expect("spawn controlled thread");
    exec.reals.lock().push(handle);
    exec.yield_now(parent);
    child
}

// ---------------------------------------------------------------------------
// Checker driver
// ---------------------------------------------------------------------------

/// Exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Context-switch budget per execution (Musuvathi/Qadeer bounding).
    pub preemption_bound: u32,
    /// Hard cap on explored executions (`complete` is false if hit).
    pub max_executions: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_executions: 1_000_000,
        }
    }
}

/// Result of an exploration or replay.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Interleavings actually executed.
    pub executions: u64,
    /// True when the bounded schedule space was exhausted (or the replay
    /// ran) without hitting `max_executions`.
    pub complete: bool,
    /// First failure found, with its replay seed.
    pub failure: Option<Failure>,
    /// Deepest decision stack seen.
    pub max_depth: usize,
    /// Total instrumented operations executed across all interleavings.
    pub steps: u64,
}

/// Bounded-DFS model checker entry point.
#[derive(Clone, Debug, Default)]
pub struct Checker {
    config: Config,
}

impl Checker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_bound(preemption_bound: u32) -> Self {
        Checker {
            config: Config {
                preemption_bound,
                ..Config::default()
            },
        }
    }

    pub fn max_executions(mut self, n: u64) -> Self {
        self.config.max_executions = n;
        self
    }

    /// Explore the bounded schedule space of `f`. Every execution runs `f`
    /// from scratch on a fresh root thread; `f` builds its own structures
    /// and spawns workers via [`crate::thread::spawn`].
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> Report {
        self.run(Arc::new(f), None)
    }

    /// Re-run the single interleaving a failure seed describes.
    pub fn replay(&self, seed: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
        let (bound, plan) = parse_seed(seed).expect("malformed spin-check seed");
        let checker = Checker {
            config: Config {
                preemption_bound: bound,
                ..self.config.clone()
            },
        };
        checker.run(Arc::new(f), Some(plan))
    }

    fn run(&self, f: Arc<dyn Fn() + Send + Sync>, replay: Option<Vec<u64>>) -> Report {
        let _serial = MODEL_GATE.lock();
        let prev_hook = panic::take_hook();
        // Failing and aborted executions unwind by design; keep the
        // default hook from spraying backtraces for every explored branch.
        panic::set_hook(Box::new(|_| {}));
        let exec = Arc::new(Execution::new(self.config.preemption_bound));
        let replaying = replay.is_some();
        let mut report = Report::default();
        loop {
            exec.reset(replay.clone());
            let e2 = exec.clone();
            let f2 = f.clone();
            let root = std::thread::Builder::new()
                .name("spin-check-0".to_string())
                .spawn(move || {
                    CTX.with(|c| {
                        *c.borrow_mut() = Some(Ctx {
                            exec: e2.clone(),
                            tid: 0,
                        })
                    });
                    match panic::catch_unwind(AssertUnwindSafe(|| f2())) {
                        Ok(()) => e2.finish(0, None),
                        Err(p) if p.downcast_ref::<AbortExecution>().is_some() => {
                            e2.finish(0, None)
                        }
                        Err(p) => e2.finish(0, Some(panic_message(p.as_ref()))),
                    }
                })
                .expect("spawn root thread");
            exec.reals.lock().push(root);
            {
                let mut g = exec.mx.lock();
                while !g.done {
                    exec.cv.wait(&mut g);
                }
            }
            for h in exec.reals.lock().drain(..) {
                let _ = h.join();
            }
            report.executions += 1;
            let mut g = exec.mx.lock();
            report.steps += g.steps;
            report.max_depth = report.max_depth.max(g.taken.len());
            if let Some(fl) = g.failure.clone() {
                report.failure = Some(fl);
                // A replay terminates the search whatever the outcome.
                report.complete = replaying;
                break;
            }
            if replaying {
                report.complete = true;
                break;
            }
            if !advance(&mut g.stack) {
                report.complete = true;
                break;
            }
            if report.executions >= self.config.max_executions {
                break;
            }
        }
        panic::set_hook(prev_hook);
        report
    }
}

fn advance(stack: &mut Vec<Node>) -> bool {
    while let Some(n) = stack.last_mut() {
        n.idx += 1;
        if n.idx < n.options.len() {
            return true;
        }
        stack.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AtomicBool, AtomicU64, Mutex, OnceLock};
    use crate::thread;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    #[test]
    fn message_passing_release_acquire_passes() {
        let report = Checker::new().check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Relaxed);
                f2.store(true, Release);
            });
            if flag.load(Acquire) {
                assert_eq!(data.load(Relaxed), 42, "acquire must see the payload");
            }
            t.join().unwrap();
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(report.executions > 1, "must actually branch");
    }

    #[test]
    fn relaxed_publish_is_caught_and_replays() {
        let scenario = || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Relaxed);
                // Bug under test: the publish is relaxed, so the payload
                // write is not ordered before the flag.
                f2.store(true, Relaxed);
            });
            if flag.load(Acquire) {
                assert_eq!(data.load(Relaxed), 42, "stale payload observed");
            }
            t.join().unwrap();
        };
        let report = Checker::new().check(scenario);
        let failure = report.failure.expect("relaxed publish must be caught");
        assert!(failure.message.contains("stale payload"), "{failure:?}");
        assert!(!failure.seed.is_empty());
        let replay = Checker::new().replay(&failure.seed, scenario);
        let refail = replay.failure.expect("seed must reproduce the failure");
        assert_eq!(refail.message, failure.message);
        assert_eq!(replay.executions, 1, "replay runs exactly one schedule");
    }

    #[test]
    fn store_buffering_weak_outcome_is_explored() {
        // Under acquire/release (no SeqCst) both loads may see zero; a
        // checker that only interleaved sequentially would never find it.
        let report = Checker::new().check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Release);
                y2.load(Acquire)
            });
            y.store(1, Release);
            let r2 = x.load(Acquire);
            let r1 = t.join().unwrap();
            assert!(!(r1 == 0 && r2 == 0), "store buffering observed");
        });
        let failure = report.failure.expect("SB outcome must be reachable");
        assert!(failure.message.contains("store buffering"));
    }

    #[test]
    fn lost_update_without_lock_is_caught() {
        let report = Checker::new().check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                let v = n2.load(Relaxed);
                n2.store(v + 1, Relaxed);
            });
            let v = n.load(Relaxed);
            n.store(v + 1, Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Relaxed), 2, "lost update");
        });
        assert!(
            report.failure.is_some(),
            "load/store race must lose updates"
        );
    }

    #[test]
    fn mutex_protected_counter_passes() {
        let report = Checker::new().check(|| {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                *n2.lock() += 1;
            });
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn ab_ba_deadlock_is_detected() {
        let report = Checker::new().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        let failure = report.failure.expect("AB/BA must deadlock somewhere");
        assert!(failure.message.contains("deadlock"), "{failure:?}");
    }

    #[test]
    fn oncelock_races_settle_to_one_writer() {
        let report = Checker::new().check(|| {
            let cell = Arc::new(OnceLock::new());
            let c2 = cell.clone();
            let t = thread::spawn(move || c2.set(1u32).is_ok());
            let mine = cell.set(2u32).is_ok();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "exactly one set wins");
            let v = *cell.get().expect("someone won");
            assert!(v == 1 || v == 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn preemption_bound_prunes_the_space() {
        let scenario = || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Release);
                y2.load(Acquire)
            });
            y.store(1, Release);
            x.load(Acquire);
            t.join().unwrap();
        };
        let loose = Checker::with_bound(3).check(scenario);
        let tight = Checker::with_bound(0).check(scenario);
        assert!(loose.complete && tight.complete);
        assert!(
            tight.executions < loose.executions,
            "bound 0 ({}) must explore fewer schedules than bound 3 ({})",
            tight.executions,
            loose.executions
        );
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let report = Checker::new().check(|| {
            let l = Arc::new(crate::instr::RwLock::new(0u64));
            let l2 = l.clone();
            let t = thread::spawn(move || {
                *l2.write() += 1;
            });
            let seen = *l.read();
            assert!(seen == 0 || seen == 1);
            t.join().unwrap();
            assert_eq!(*l.read(), 1);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn seed_roundtrip() {
        let s = encode_seed(2, &[3, 0, 7]);
        assert_eq!(s, "pb2-3-0-7");
        assert_eq!(parse_seed(&s), Some((2, vec![3, 0, 7])));
        assert_eq!(parse_seed("pb4"), Some((4, vec![])));
        assert_eq!(parse_seed("nope"), None);
    }
}
