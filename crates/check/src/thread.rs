//! Model-aware thread spawn/join.
//!
//! From an uncontrolled thread this is a thin wrapper over `std::thread`.
//! From inside a model-checking run, `spawn` registers the child with the
//! scheduler (the spawn is a schedule point, so the child may run before
//! the parent's next operation) and `join` blocks at a schedule point
//! until the child has finished, establishing happens-before from the
//! child's final state.

use crate::model;
use std::sync::Arc;

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<model::Execution>,
        tid: usize,
        slot: Arc<parking_lot::Mutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; see [`spawn`].
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(h) => h.join(),
            Inner::Model { exec, tid, slot } => {
                let c =
                    model::current_ctx().expect("model JoinHandle joined from uncontrolled thread");
                exec.join_thread(c.tid, tid);
                Ok(slot.lock().take().expect("joined thread left no result"))
            }
        }
    }
}

/// Spawn a thread that participates in the current model-checking run (or
/// a plain OS thread when no run is active).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match model::current_ctx() {
        None => JoinHandle(Inner::Real(std::thread::spawn(f))),
        Some(c) => {
            let slot = Arc::new(parking_lot::Mutex::new(None));
            let s2 = slot.clone();
            let tid = model::model_spawn(
                &c.exec,
                c.tid,
                Box::new(move || {
                    *s2.lock() = Some(f());
                }),
            );
            JoinHandle(Inner::Model {
                exec: c.exec,
                tid,
                slot,
            })
        }
    }
}

/// Yield a schedule point (no-op outside a model run beyond the OS hint).
pub fn yield_now() {
    match model::current_ctx() {
        Some(c) => c.exec.yield_now(c.tid),
        None => std::thread::yield_now(),
    }
}
