//! The sync facade the kernel's concurrency-critical crates import from.
//!
//! Normal builds re-export the real primitives verbatim — the facade
//! compiles to *nothing* (same types, same codegen), which the bench
//! goldens verify byte-for-byte. Under `--cfg spin_check` (set via
//! `RUSTFLAGS` by `scripts/verify.sh`) the same names resolve to the
//! instrumented types in [`crate::instr`], and every atomic access, lock
//! acquisition and `OnceLock` touch becomes a schedule point of the
//! bounded-DFS explorer in [`crate::model`].
//!
//! The `spin-lint` gate (rule F1) enforces that every kernel crate
//! imports these names rather than `std::sync::atomic` / `parking_lot`
//! directly, so new concurrent code cannot silently bypass the checker.

pub use std::sync::atomic::Ordering;
pub use std::sync::{Arc, Weak};

#[cfg(not(spin_check))]
mod imp {
    // `Condvar` is facade-only (no instrumented twin): the executor's baton
    // handoff blocks real OS threads, which the bounded-DFS explorer never
    // does — `sched` is outside the `--cfg spin_check` build graph and the
    // audit gate still wants it importing through this facade.
    pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
    pub use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::OnceLock;
}

#[cfg(spin_check)]
mod imp {
    pub use crate::instr::{
        AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard, OnceLock,
        RwLock, RwLockReadGuard, RwLockWriteGuard,
    };
}

pub use imp::*;
