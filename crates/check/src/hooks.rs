//! Hook registration primitives shared by every instrumented subsystem.
//!
//! PRs 2–4 grew three copy-pasted registration patterns: the one-shot
//! `OnceLock<ObsHook>` / `OnceLock<FaultHook>` slots scattered through
//! `core`, `net`, `rt` and `sched`, and the hand-rolled advance-hook list
//! inside `sal::Clock`. This module is the single implementation both
//! collapse onto:
//!
//! - [`HookSlot`] — a write-once slot whose *absent* path costs exactly one
//!   atomic load (the `OnceLock` presence check). Instrumented fast paths
//!   branch on `slot.get()` and pay nothing when unwired.
//! - [`HookRegistry`] — a multi-subscriber list with the same
//!   atomic-presence fast path: `is_armed()` is one relaxed load, and
//!   `snapshot()` hands back an immutable `Arc` of the subscriber list so
//!   callers invoke hooks without holding the registry lock (the pattern
//!   `Clock::advance` has used since PR 2).
//!
//! Because the types are built on [`crate::sync`], a `--cfg spin_check`
//! build swaps in the instrumented primitives and the model checker
//! explores hook registration races like any other kernel structure.

use crate::sync::{Arc, AtomicBool, AtomicU64, OnceLock, Ordering, RwLock};

/// A write-once hook slot with a single-atomic-load absent path.
///
/// `set` wins exactly once; later calls return `false` and drop the hook
/// (matching the `OnceLock::set(...).ok()` idiom the subsystems used).
pub struct HookSlot<T> {
    cell: OnceLock<T>,
}

impl<T> HookSlot<T> {
    pub fn new() -> HookSlot<T> {
        HookSlot {
            cell: OnceLock::new(),
        }
    }

    /// Installs the hook if the slot is empty. Returns `false` (and drops
    /// `hook`) if a hook was already installed.
    pub fn set(&self, hook: T) -> bool {
        self.cell.set(hook).is_ok()
    }

    /// The fast path: one atomic load when empty.
    #[inline]
    pub fn get(&self) -> Option<&T> {
        self.cell.get()
    }

    /// Whether a hook has been installed.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.cell.get().is_some()
    }
}

impl<T> Default for HookSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for HookSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookSlot")
            .field("armed", &self.is_armed())
            .finish()
    }
}

/// Identifies one subscriber in a [`HookRegistry`] for later removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HookId(u64);

/// A multi-subscriber hook list with an atomic-presence fast path.
///
/// Readers call [`HookRegistry::snapshot`]; when no hook is registered it
/// returns `None` after a single atomic load. When hooks exist it clones
/// an `Arc` of the immutable subscriber vector, so hooks are invoked with
/// no lock held and writers never block readers mid-invocation.
pub struct HookRegistry<T> {
    entries: RwLock<Arc<Vec<(HookId, T)>>>,
    next: AtomicU64,
    armed: AtomicBool,
}

impl<T: Clone> HookRegistry<T> {
    pub fn new() -> HookRegistry<T> {
        HookRegistry {
            entries: RwLock::new(Arc::new(Vec::new())),
            next: AtomicU64::new(1),
            armed: AtomicBool::new(false),
        }
    }

    /// Registers a hook; it stays installed until [`remove`](Self::remove)d.
    pub fn add(&self, hook: T) -> HookId {
        let id = HookId(self.next.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — id allocation only needs uniqueness, not synchronization.
        let mut entries = self.entries.write();
        let mut list = entries.as_ref().clone();
        list.push((id, hook));
        *entries = Arc::new(list);
        self.armed.store(true, Ordering::Release); // ordering: Release — pairs with the Acquire in is_armed/snapshot so a reader that sees the flag also sees the list.
        id
    }

    /// Replaces every registered hook with `hook`.
    pub fn replace_all(&self, hook: T) -> HookId {
        let id = HookId(self.next.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — id allocation only needs uniqueness, not synchronization.
        let mut entries = self.entries.write();
        *entries = Arc::new(vec![(id, hook)]);
        self.armed.store(true, Ordering::Release); // ordering: Release — pairs with the Acquire in is_armed/snapshot so a reader that sees the flag also sees the list.
        id
    }

    /// Removes one hook. Returns `false` if the id was never registered
    /// or was already removed.
    pub fn remove(&self, id: HookId) -> bool {
        let mut entries = self.entries.write();
        let before = entries.len();
        if before == 0 {
            return false;
        }
        let list: Vec<(HookId, T)> = entries.iter().filter(|(h, _)| *h != id).cloned().collect();
        let removed = list.len() != before;
        if removed {
            if list.is_empty() {
                self.armed.store(false, Ordering::Release); // ordering: Release — disarm before publishing the empty list; a stale armed=true only costs a snapshot of an empty vec.
            }
            *entries = Arc::new(list);
        }
        removed
    }

    /// Removes every hook.
    pub fn clear(&self) {
        let mut entries = self.entries.write();
        self.armed.store(false, Ordering::Release); // ordering: Release — disarm before publishing the empty list; a stale armed=true only costs a snapshot of an empty vec.
        *entries = Arc::new(Vec::new());
    }

    /// The fast path: one atomic load when nothing is registered.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire) // ordering: Acquire — pairs with the Release in add/replace_all; seeing true implies the list write is visible.
    }

    /// An immutable snapshot of the subscriber list, or `None` (after one
    /// atomic load) when the registry is empty.
    pub fn snapshot(&self) -> Option<Arc<Vec<(HookId, T)>>> {
        if !self.is_armed() {
            return None;
        }
        let snap = self.entries.read().clone();
        if snap.is_empty() {
            None
        } else {
            Some(snap)
        }
    }

    /// Number of registered hooks (slow path; takes the lock).
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        !self.is_armed()
    }
}

impl<T: Clone> Default for HookRegistry<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for HookRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookRegistry")
            .field("armed", &self.armed.load(Ordering::Relaxed)) // ordering: Relaxed — debug output, not a synchronization point.
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_sets_once() {
        let slot: HookSlot<u32> = HookSlot::new();
        assert!(!slot.is_armed());
        assert!(slot.get().is_none());
        assert!(slot.set(7));
        assert!(!slot.set(8), "second set loses");
        assert_eq!(slot.get(), Some(&7));
        assert!(slot.is_armed());
    }

    #[test]
    fn registry_add_remove_snapshot() {
        let reg: HookRegistry<u32> = HookRegistry::new();
        assert!(reg.snapshot().is_none());
        let a = reg.add(1);
        let b = reg.add(2);
        assert_eq!(reg.len(), 2);
        let snap = reg.snapshot().expect("armed");
        assert_eq!(snap.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![1, 2]);
        assert!(reg.remove(a));
        assert!(!reg.remove(a), "double remove");
        assert_eq!(reg.snapshot().expect("still armed").len(), 1);
        assert!(reg.remove(b));
        assert!(reg.snapshot().is_none(), "disarmed when empty");
        assert!(reg.is_empty());
    }

    #[test]
    fn registry_replace_all_and_clear() {
        let reg: HookRegistry<&'static str> = HookRegistry::new();
        reg.add("a");
        reg.add("b");
        let id = reg.replace_all("only");
        let snap = reg.snapshot().expect("armed");
        assert_eq!(snap.as_ref(), &vec![(id, "only")]);
        reg.clear();
        assert!(reg.snapshot().is_none());
    }
}
