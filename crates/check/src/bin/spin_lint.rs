//! `spin-lint`: the workspace token-level safety & determinism gate.
//!
//! Walks `crates/*/src` (plus the root crate's `src/`) and fails on any
//! violation of the six rules in `spin_check::lint` (determinism, hash
//! iteration, sync-facade enforcement, ordering justifications, unsafe
//! containment, charge coverage), honoring the `lint.toml` allowlist at
//! the workspace root.
//!
//! Usage: `spin-lint [--root <workspace-dir>] [--json]`
//!   (default root: walk up from the current directory to the first dir
//!   containing `Cargo.toml` + `crates/`). `--json` prints the
//!   machine-readable report `scripts/verify.sh` diffs against
//!   `scripts/goldens/lint_report.json`; exit status is 0 for a clean
//!   workspace, 1 for findings, 2 for usage/IO/config errors.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    spin_check::lint::cli_run("spin-lint", std::env::args().skip(1))
}
