//! `spin-audit`: the workspace unsafe/ordering audit gate.
//!
//! Walks `crates/*/src` (plus the root crate's `src/`) and fails the build
//! on unsafe code outside the allowlist, unsafe without `// SAFETY:`,
//! atomic-ordering sites without `// ordering:` justifications, and direct
//! `std::sync::atomic` / `parking_lot` imports in facade-covered crates.
//! See `spin_check::audit` for the rules.
//!
//! Usage: `spin-audit [--root <workspace-dir>]` (default: walk up from the
//! current directory to the first dir containing `Cargo.toml` + `crates/`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("spin-audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("spin-audit: no workspace root found (use --root)");
        return ExitCode::from(2);
    };
    match spin_check::audit::audit_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("spin-audit: OK ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("spin-audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("spin-audit: io error: {e}");
            ExitCode::from(2)
        }
    }
}
