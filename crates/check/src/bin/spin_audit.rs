//! `spin-audit`: back-compat alias for `spin-lint`.
//!
//! The four-rule substring audit grew into the token-level verifier
//! behind `spin-lint` (see `spin_check::lint`); this binary keeps the old
//! name working for scripts that predate the rename. Identical flags,
//! identical exit codes — it runs the full six-rule lint.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    spin_check::lint::cli_run("spin-audit", std::env::args().skip(1))
}
