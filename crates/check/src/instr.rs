//! Instrumented sync primitives: drop-in replacements for the std /
//! `parking_lot` types the kernel's facade-covered crates use.
//!
//! Outside a model-checking run (no thread-local [`crate::model`] context)
//! every operation falls straight through to the real primitive, so the
//! types stay usable from uncontrolled threads (test harness setup, global
//! statics). Inside a run every operation announces itself to the
//! scheduler and is performed against the model, with the real primitive
//! kept as a write-through mirror of the newest store so uninstrumented
//! reads (debug printing, post-run assertions) see sane values.

use crate::model;
use std::fmt;
use std::ops::{Deref, DerefMut};

pub use std::sync::atomic::Ordering;

static NEXT_OBJ_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Lazy per-object identity. Allocated on first touch so `const fn new`
/// works for statics; never reused, so executions cannot confuse two
/// objects that happen to share an address.
struct ObjId(std::sync::OnceLock<u64>);

impl ObjId {
    const fn new() -> Self {
        ObjId(std::sync::OnceLock::new())
    }

    fn get(&self) -> u64 {
        *self
            .0
            .get_or_init(|| NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! instrumented_atomic {
    ($name:ident, $real:ty, $ty:ty) => {
        /// Model-aware drop-in for the std atomic of the same name.
        pub struct $name {
            id: ObjId,
            real: $real,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    id: ObjId::new(),
                    real: <$real>::new(v),
                }
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                match model::current_ctx() {
                    Some(c) => {
                        let init = self.real.load(Ordering::Relaxed) as u64;
                        c.exec.atomic_load(c.tid, self.id.get(), ord, init) as $ty
                    }
                    None => self.real.load(ord),
                }
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                match model::current_ctx() {
                    Some(c) => {
                        let init = self.real.load(Ordering::Relaxed) as u64;
                        c.exec
                            .atomic_store(c.tid, self.id.get(), ord, init, v as u64, |w| {
                                self.real.store(w as $ty, Ordering::Relaxed)
                            })
                    }
                    None => self.real.store(v, ord),
                }
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, move |_| v, |real, o| real.swap(v, o))
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    move |old| old.wrapping_add(v),
                    |real, o| real.fetch_add(v, o),
                )
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    move |old| old.wrapping_sub(v),
                    |real, o| real.fetch_sub(v, o),
                )
            }

            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, move |old| old & v, |real, o| real.fetch_and(v, o))
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, move |old| old | v, |real, o| real.fetch_or(v, o))
            }

            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, move |old| old.min(v), |real, o| real.fetch_min(v, o))
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, move |old| old.max(v), |real, o| real.fetch_max(v, o))
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match model::current_ctx() {
                    Some(c) => {
                        let init = self.real.load(Ordering::Relaxed) as u64;
                        c.exec
                            .atomic_cas(
                                c.tid,
                                self.id.get(),
                                success,
                                failure,
                                init,
                                current as u64,
                                new as u64,
                                |w| self.real.store(w as $ty, Ordering::Relaxed),
                            )
                            .map(|v| v as $ty)
                            .map_err(|v| v as $ty)
                    }
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            /// Modeled without spurious failure (a sound subset of the
            /// weak variant's behaviors).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            fn rmw(
                &self,
                ord: Ordering,
                f: impl FnOnce($ty) -> $ty,
                real_op: impl FnOnce(&$real, Ordering) -> $ty,
            ) -> $ty {
                match model::current_ctx() {
                    Some(c) => {
                        let init = self.real.load(Ordering::Relaxed) as u64;
                        c.exec.atomic_rmw(
                            c.tid,
                            self.id.get(),
                            ord,
                            init,
                            |old| f(old as $ty) as u64,
                            |w| self.real.store(w as $ty, Ordering::Relaxed),
                        ) as $ty
                    }
                    None => real_op(&self.real, ord),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.load(Ordering::Relaxed), f)
            }
        }
    };
}

instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
instrumented_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
instrumented_atomic!(AtomicU16, std::sync::atomic::AtomicU16, u16);
instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-aware drop-in for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    id: ObjId,
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            id: ObjId::new(),
            real: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match model::current_ctx() {
            Some(c) => {
                let init = self.real.load(Ordering::Relaxed) as u64;
                c.exec.atomic_load(c.tid, self.id.get(), ord, init) != 0
            }
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        match model::current_ctx() {
            Some(c) => {
                let init = self.real.load(Ordering::Relaxed) as u64;
                c.exec
                    .atomic_store(c.tid, self.id.get(), ord, init, v as u64, |w| {
                        self.real.store(w != 0, Ordering::Relaxed)
                    })
            }
            None => self.real.store(v, ord),
        }
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match model::current_ctx() {
            Some(c) => {
                let init = self.real.load(Ordering::Relaxed) as u64;
                c.exec.atomic_rmw(
                    c.tid,
                    self.id.get(),
                    ord,
                    init,
                    |_| v as u64,
                    |w| self.real.store(w != 0, Ordering::Relaxed),
                ) != 0
            }
            None => self.real.swap(v, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match model::current_ctx() {
            Some(c) => {
                let init = self.real.load(Ordering::Relaxed) as u64;
                c.exec
                    .atomic_cas(
                        c.tid,
                        self.id.get(),
                        success,
                        failure,
                        init,
                        current as u64,
                        new as u64,
                        |w| self.real.store(w != 0, Ordering::Relaxed),
                    )
                    .map(|v| v != 0)
                    .map_err(|v| v != 0)
            }
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.load(Ordering::Relaxed), f)
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware drop-in for `parking_lot::Mutex`.
///
/// The real lock is always released *before* the model release announces
/// (see `Drop`), and model acquisition completes before the real lock is
/// taken, so the real lock is provably uncontended whenever a controlled
/// thread touches it — controlled threads never block on real primitives.
pub struct Mutex<T: ?Sized> {
    id: ObjId,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            id: ObjId::new(),
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let ctx = model::current_ctx();
        if let Some(c) = &ctx {
            c.exec.lock_acquire(c.tid, self.id.get(), false);
        }
        MutexGuard {
            id: self.id.get(),
            ctx,
            inner: Some(self.inner.lock()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let ctx = model::current_ctx();
        if let Some(c) = &ctx {
            if !c.exec.try_lock_acquire(c.tid, self.id.get(), false) {
                return None;
            }
            return Some(MutexGuard {
                id: self.id.get(),
                ctx,
                inner: Some(self.inner.lock()),
            });
        }
        self.inner.try_lock().map(|g| MutexGuard {
            id: self.id.get(),
            ctx: None,
            inner: Some(g),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    id: u64,
    ctx: Option<model::Ctx>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first: once the model release parks, another
        // controlled thread may be granted this lock and must find the
        // real one free.
        self.inner = None;
        if let Some(c) = self.ctx.take() {
            c.exec.lock_release(c.tid, self.id, false);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware drop-in for `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    id: ObjId,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            id: ObjId::new(),
            inner: parking_lot::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let ctx = model::current_ctx();
        if let Some(c) = &ctx {
            c.exec.lock_acquire(c.tid, self.id.get(), true);
        }
        RwLockReadGuard {
            id: self.id.get(),
            ctx,
            inner: Some(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let ctx = model::current_ctx();
        if let Some(c) = &ctx {
            c.exec.lock_acquire(c.tid, self.id.get(), false);
        }
        RwLockWriteGuard {
            id: self.id.get(),
            ctx,
            inner: Some(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    id: u64,
    ctx: Option<model::Ctx>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(c) = self.ctx.take() {
            c.exec.lock_release(c.tid, self.id, true);
        }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    id: u64,
    ctx: Option<model::Ctx>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(c) = self.ctx.take() {
            c.exec.lock_release(c.tid, self.id, false);
        }
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Model-aware drop-in for `std::sync::OnceLock`.
///
/// Modeled as a 0/1 atomic: `set` is a release RMW publishing 1 (the real
/// cell is written under the model lock before the flag flips), `get` is
/// an acquire load — so a modeled thread can legitimately observe `None`
/// for a cell another thread has already initialized, exactly as on real
/// weak hardware.
pub struct OnceLock<T> {
    id: ObjId,
    real: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    pub const fn new() -> Self {
        Self {
            id: ObjId::new(),
            real: std::sync::OnceLock::new(),
        }
    }

    fn model_init(&self) -> u64 {
        u64::from(self.real.get().is_some())
    }

    pub fn get(&self) -> Option<&T> {
        match model::current_ctx() {
            Some(c) => {
                let v =
                    c.exec
                        .atomic_load(c.tid, self.id.get(), Ordering::Acquire, self.model_init());
                if v == 0 {
                    None
                } else {
                    Some(self.real.get().expect("model observed initialized cell"))
                }
            }
            None => self.real.get(),
        }
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        match model::current_ctx() {
            Some(c) => {
                let mut slot = Some(value);
                let res = c.exec.atomic_cas(
                    c.tid,
                    self.id.get(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    self.model_init(),
                    0,
                    1,
                    |_| {
                        if self.real.set(slot.take().expect("set value")).is_err() {
                            panic!("spin-check internal: OnceLock model/real divergence");
                        }
                    },
                );
                match res {
                    Ok(_) => Ok(()),
                    Err(_) => Err(slot.take().expect("set value")),
                }
            }
            None => self.real.set(value),
        }
    }

    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        if let Some(v) = self.get() {
            return v;
        }
        let _ = self.set(f());
        self.get().expect("initialized by set")
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for OnceLock<T> {
    fn clone(&self) -> Self {
        // A clone is a distinct object with its own model identity.
        Self {
            id: ObjId::new(),
            real: self.real.clone(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.real, f)
    }
}
