//! Back-compat shim: `spin-audit` is now a thin alias for `spin-lint`.
//!
//! The original audit was a substring scanner with four rules over four
//! crates. It grew into the token-level verifier in [`crate::lint`]
//! (six rules, whole workspace, declarative `lint.toml` allowlist); this
//! module keeps the old entry point and types alive for callers that
//! predate the rename. New code should use [`crate::lint`] directly.

pub use crate::lint::{Config, Finding, Report};
use std::path::Path;

/// Run the full lint rooted at a workspace directory, honoring that
/// workspace's `lint.toml`. Returns the findings alone, as the old audit
/// did; [`crate::lint::lint_workspace`] returns the full report.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    crate::lint::lint_workspace(root).map(|r| r.findings)
}
