//! Static audit gate over the workspace source (the `spin-audit` bin).
//!
//! Four rules, enforced on `crates/*/src/**/*.rs` (plus the root crate's
//! `src/`), after a small lexer splits every line into *code* and
//! *comment* text so string literals and comments can't fool the checks:
//!
//! 1. `unsafe` is forbidden outside the allowlisted `crates/obs/src/ring.rs`.
//! 2. Inside the allowlist, every `unsafe` needs a `// SAFETY:` comment on
//!    the same line or within the five preceding lines.
//! 3. Every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site needs
//!    an `// ordering:` justification on the same line or within the two
//!    preceding lines.
//! 4. Facade-covered crates (`core`, `obs`, `sal`, `sched`) must not mention
//!    `std::sync::atomic` or `parking_lot` in code — they import from
//!    `spin_check::sync` so the model checker can instrument them.
//! 5. Every crate root declares `#![forbid(unsafe_code)]`, except
//!    `spin-obs` which declares `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! `crates/check` itself is exempt from rules 3–4: it *is* the facade and
//! must name the real primitives and orderings to implement them.

use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (workspace-relative, `/`-separated).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/obs/src/ring.rs"];

/// Crates whose sources must import sync primitives via the facade.
const FACADE_CRATES: &[&str] = &[
    "crates/core/src",
    "crates/obs/src",
    "crates/sal/src",
    "crates/sched/src",
];

/// Paths exempt from the ordering-justification and direct-import rules.
const TOOL_EXEMPT: &[&str] = &["crates/check/src"];

/// How far above a site its justification comment may sit.
const SAFETY_WINDOW: usize = 5;
const ORDERING_WINDOW: usize = 2;

/// One audit violation.
#[derive(Clone, Debug)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// A source line split into code and comment halves by [`lex`].
#[derive(Debug, Default, Clone)]
struct LexedLine {
    code: String,
    comment: String,
}

/// Split source into per-line code/comment text. String and char literal
/// contents are blanked from the code half; comment text (line, block,
/// doc) is collected separately. Handles nested block comments, raw
/// strings, and the char-literal/lifetime ambiguity.
fn lex(src: &str) -> Vec<LexedLine> {
    let mut lines: Vec<LexedLine> = vec![LexedLine::default()];
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut block_depth = 0usize;
    let mut in_line_comment = false;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            in_line_comment = false;
            lines.push(LexedLine::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("line present");
        if in_line_comment {
            cur.comment.push(c);
            i += 1;
            continue;
        }
        if block_depth > 0 {
            if c == '*' && chars.get(i + 1) == Some(&'/') {
                block_depth -= 1;
                i += 2;
                continue;
            }
            if c == '/' && chars.get(i + 1) == Some(&'*') {
                block_depth += 1;
                i += 2;
                continue;
            }
            cur.comment.push(c);
            i += 1;
            continue;
        }
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                in_line_comment = true;
                i += 2;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                block_depth += 1;
                i += 2;
            }
            '"' => {
                cur.code.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            lines.push(LexedLine::default());
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                lines.last_mut().expect("line present").code.push('"');
            }
            'r' if chars.get(i + 1) == Some(&'"') || chars.get(i + 1) == Some(&'#') => {
                // Raw string: r"..." or r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    j += 1;
                    'raw: while j < chars.len() {
                        if chars[j] == '\n' {
                            lines.push(LexedLine::default());
                            j += 1;
                            continue;
                        }
                        if chars[j] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    lines.last_mut().expect("line present").code.push('"');
                    i = j;
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal is 'x' or '\..'.
                let is_char = matches!(chars.get(i + 1), Some('\\'))
                    || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
                if is_char {
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        i += 3;
                    }
                    cur.code.push('\'');
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            _ => {
                cur.code.push(c);
                i += 1;
            }
        }
    }
    lines
}

fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn ordering_site(code: &str) -> bool {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| code.contains(&format!("Ordering::{v}")))
}

fn comment_within(lines: &[LexedLine], at: usize, window: usize, needle: &str) -> bool {
    let lo = at.saturating_sub(window);
    lines[lo..=at].iter().any(|l| l.comment.contains(needle))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Audit one file's source text; `rel` is its workspace-relative path.
fn audit_source(rel: &str, src: &str, findings: &mut Vec<Finding>) {
    let lines = lex(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let allow_unsafe = UNSAFE_ALLOWLIST.contains(&rel);
    let tool = TOOL_EXEMPT.iter().any(|p| rel.starts_with(p));
    let facade = FACADE_CRATES.iter().any(|p| rel.starts_with(p)) && !tool;
    let excerpt = |n: usize| raw_lines.get(n).copied().unwrap_or("").to_string();
    for (n, line) in lines.iter().enumerate() {
        // `unsafe_code` / `unsafe_op_in_unsafe_fn` attribute tokens are
        // distinct words and do not match the bare `unsafe` keyword.
        if has_word(&line.code, "unsafe") {
            if !allow_unsafe {
                findings.push(Finding {
                    file: PathBuf::from(rel),
                    line: n + 1,
                    rule: "unsafe-outside-allowlist",
                    excerpt: excerpt(n),
                });
            } else if !comment_within(&lines, n, SAFETY_WINDOW, "SAFETY:") {
                findings.push(Finding {
                    file: PathBuf::from(rel),
                    line: n + 1,
                    rule: "unsafe-missing-safety-comment",
                    excerpt: excerpt(n),
                });
            }
        }
        if !tool
            && ordering_site(&line.code)
            && !comment_within(&lines, n, ORDERING_WINDOW, "ordering:")
        {
            findings.push(Finding {
                file: PathBuf::from(rel),
                line: n + 1,
                rule: "ordering-missing-justification",
                excerpt: excerpt(n),
            });
        }
        if facade && (line.code.contains("std::sync::atomic") || line.code.contains("parking_lot"))
        {
            findings.push(Finding {
                file: PathBuf::from(rel),
                line: n + 1,
                rule: "direct-sync-import",
                excerpt: excerpt(n),
            });
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full audit rooted at a workspace directory (the repo root or a
/// fixture laid out the same way). Returns all findings, sorted.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for krate in &crate_dirs {
            let src = krate.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let mut findings = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        audit_source(&rel_path(root, file), &src, &mut findings);
    }
    // Rule 5: crate-root lints.
    let mut crate_dirs: Vec<_> = if crates_dir.is_dir() {
        std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect()
    } else {
        Vec::new()
    };
    crate_dirs.sort();
    for krate in &crate_dirs {
        let lib = krate.join("src/lib.rs");
        if !lib.is_file() {
            continue;
        }
        let rel = rel_path(root, &lib);
        let src = std::fs::read_to_string(&lib)?;
        let required = if rel == "crates/obs/src/lib.rs" {
            "#![deny(unsafe_op_in_unsafe_fn)]"
        } else {
            "#![forbid(unsafe_code)]"
        };
        if !src.contains(required) {
            findings.push(Finding {
                file: PathBuf::from(rel),
                line: 1,
                rule: "missing-crate-unsafe-lint",
                excerpt: format!("crate root lacks {required}"),
            });
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_splits_code_and_comments() {
        let src = "let x = 1; // ordering: tail\nlet s = \"unsafe Ordering::Relaxed\";\n/* block\nunsafe */ let y = 2;\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("let x"));
        assert!(lines[0].comment.contains("ordering: tail"));
        assert!(!lines[1].code.contains("unsafe"), "string content blanked");
        assert!(lines[2].comment.contains("block"), "block comment text");
        assert!(lines[3].comment.contains("unsafe"), "comment spans lines");
        assert!(lines[3].code.contains("let y"));
    }

    #[test]
    fn word_matching_ignores_attribute_tokens() {
        assert!(has_word("unsafe fn f()", "unsafe"));
        assert!(!has_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_word("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // ordering: n/a\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("fn f"));
        assert!(lines[0].code.contains("str { x }"));
    }

    #[test]
    fn flags_unjustified_ordering() {
        let mut f = Vec::new();
        audit_source(
            "crates/core/src/x.rs",
            "a.load(Ordering::Acquire);\n",
            &mut f,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-missing-justification");
    }

    #[test]
    fn accepts_justified_ordering_same_or_prior_line() {
        let mut f = Vec::new();
        audit_source(
            "crates/core/src/x.rs",
            "a.load(Ordering::Acquire); // ordering: pairs with release store\n// ordering: both below pair with the publish\nb.load(Ordering::Acquire);\nc.load(Ordering::Acquire);\n",
            &mut f,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_direct_imports_only_in_facade_crates() {
        let mut f = Vec::new();
        audit_source("crates/core/src/x.rs", "use parking_lot::Mutex;\n", &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "direct-sync-import");
        let mut f = Vec::new();
        audit_source("crates/net/src/x.rs", "use parking_lot::Mutex;\n", &mut f);
        assert!(f.is_empty(), "non-facade crates may import directly");
        let mut f = Vec::new();
        audit_source("crates/check/src/x.rs", "use parking_lot::Mutex;\n", &mut f);
        assert!(f.is_empty(), "the tool itself is exempt");
    }

    #[test]
    fn flags_unsafe_by_location_and_comment() {
        let mut f = Vec::new();
        audit_source("crates/net/src/x.rs", "unsafe { foo() }\n", &mut f);
        assert_eq!(f[0].rule, "unsafe-outside-allowlist");
        let mut f = Vec::new();
        audit_source("crates/obs/src/ring.rs", "unsafe { foo() }\n", &mut f);
        assert_eq!(f[0].rule, "unsafe-missing-safety-comment");
        let mut f = Vec::new();
        audit_source(
            "crates/obs/src/ring.rs",
            "// SAFETY: index is masked by cap\nunsafe { foo() }\n",
            &mut f,
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
