//! `spin-lint`: the token-level static safety & determinism verifier.
//!
//! SPIN's safety story is *static* — the kernel trusts analysis done
//! before anything runs (§2 "enforced modularity"; Rex and BeePL in
//! PAPERS.md push the same bet further). This repo's equivalent contract
//! is a set of source-level invariants that every kernel crate must hold:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no wall-clock, ambient randomness, thread identity, or env/fs reads — virtual time and seeded draws only |
//! | `D2` | no iteration over `HashMap`/`HashSet` — hash order is nondeterministic and has already broken the 1/2/4-worker byte-identity invariant once |
//! | `F1` | all synchronization through `spin_check::sync` — no direct `std::sync::atomic` / `core::sync::atomic` / `parking_lot` — so `--cfg spin_check` can instrument it |
//! | `O1` | every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site carries an `// ordering:` justification within 2 lines |
//! | `U1` | `unsafe` only in allowlisted files, each site with a `// SAFETY:` comment within 5 lines; crate roots declare the matching lint |
//! | `C1` | public functions in the charged hot-path modules reach a `Clock` charge or document their charging story — `// uncharged:` (zero-cost by design) or `// charged:` (the charge lands behind a call the intra-file analysis can't see) — within 6 lines |
//!
//! Rules run over the token stream from [`crate::lex`] (string literals,
//! comments and lifetimes can't fool them), across `crates/*/src` plus the
//! root crate's `src/`. Exemptions are declarative: a `lint.toml` at the
//! workspace root lists `[[allow]]` entries (rule × path prefix × reason)
//! and the `[charged]` module set. The gate in `scripts/verify.sh` diffs
//! the `--json` report against a golden and caps the allowlist size.
//!
//! False-positive policy (DESIGN.md decision #13): the rules are token
//! shapes, not type analysis. Where the heuristic cannot see a type (D2
//! tracks names *declared* hash-typed in the same file; C1 resolves calls
//! by name within the same file) it is tuned to under-approximate rather
//! than spray noise, and anything it still gets wrong is either fixed at
//! the site or carried as a *named, justified* `lint.toml` entry — never
//! silently suppressed in code.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Lexed, TokKind};

/// Rule identifiers, in report order.
pub const RULES: [&str; 6] = ["C1", "D1", "D2", "F1", "O1", "U1"];

/// How far above a site its justification comment may sit (shared
/// scanner in [`Lexed::justified`]; per-rule windows).
pub const SAFETY_WINDOW: usize = 5;
pub const ORDERING_WINDOW: usize = 2;
pub const UNCHARGED_WINDOW: usize = 6;

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: PathBuf,
    /// 1-based source line.
    pub line: usize,
    /// Rule id (`"D1"` .. `"C1"`).
    pub rule: &'static str,
    /// Machine-stable sub-classification within the rule.
    pub detail: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {} — fix: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.detail,
            self.excerpt.trim(),
            self.hint
        )
    }
}

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// A rule id, or `"*"` for every rule.
    pub rule: String,
    /// Path prefix (a file, or a directory covering everything under it).
    pub path: String,
    /// Why the exemption exists (required: the allowlist is documentation).
    pub reason: String,
}

impl AllowEntry {
    fn matches(&self, rule: &str, rel: &str) -> bool {
        (self.rule == "*" || self.rule == rule)
            && (rel == self.path || rel.starts_with(&format!("{}/", self.path)))
    }
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    pub allow: Vec<AllowEntry>,
    /// Files under rule C1 (charge coverage).
    pub charged_modules: Vec<String>,
}

impl Config {
    /// Is `rule` fully waived for `rel`? (For U1 an entry means "unsafe
    /// *permitted* here", which still enforces `// SAFETY:` — see
    /// [`Config::unsafe_allowed`] — unless the waiver is the `"*"` kind.)
    fn waived(&self, rule: &'static str, rel: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.rule == "*" && a.matches(rule, rel))
            || (rule != "U1" && self.allow.iter().any(|a| a.matches(rule, rel)))
    }

    /// Is `rel` an allowlisted `unsafe` island (SAFETY comments still
    /// required)?
    fn unsafe_allowed(&self, rel: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.rule == "U1" && a.matches("U1", rel))
    }

    fn charged(&self, rel: &str) -> bool {
        self.charged_modules.iter().any(|m| m == rel)
    }

    /// Parse the `lint.toml` subset this tool understands: `[[allow]]`
    /// tables with `rule` / `path` / `reason` string keys, and a
    /// `[charged]` table with a `modules` string array (single- or
    /// multi-line). Anything else is an error — config typos must not
    /// silently widen an exemption.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = Section::None;
        let mut pending_array: Option<(String, Vec<String>)> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: &str| format!("lint.toml:{}: {m}", n + 1);
            if let Some((_key, items)) = pending_array.as_mut() {
                let done = line.contains(']');
                for part in line.trim_end_matches(']').split(',') {
                    let part = part.trim();
                    if !part.is_empty() {
                        items.push(parse_str(part).ok_or_else(|| err("expected a string"))?);
                    }
                }
                if done {
                    let (key, items) = pending_array.take().expect("checked");
                    assign_array(&mut cfg, &section, &key, items).map_err(|m| err(&m))?;
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                cfg.allow.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                });
                section = Section::Allow;
                continue;
            }
            if line == "[charged]" {
                section = Section::Charged;
                continue;
            }
            if line.starts_with('[') {
                return Err(err("unknown section"));
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| err("expected `key = value`"))?;
            if let Some(rest) = value.strip_prefix('[') {
                if rest.trim_end().ends_with(']') {
                    let inner = rest.trim_end().trim_end_matches(']');
                    let mut items = Vec::new();
                    for part in inner.split(',') {
                        let part = part.trim();
                        if !part.is_empty() {
                            items.push(parse_str(part).ok_or_else(|| err("expected a string"))?);
                        }
                    }
                    assign_array(&mut cfg, &section, key, items).map_err(|m| err(&m))?;
                } else {
                    pending_array = Some((key.to_string(), Vec::new()));
                }
                continue;
            }
            let value = parse_str(value).ok_or_else(|| err("expected a quoted string"))?;
            match (&section, key) {
                (Section::Allow, "rule") => {
                    let e = cfg.allow.last_mut().expect("inside [[allow]]");
                    if value != "*" && !RULES.contains(&value.as_str()) {
                        return Err(err("unknown rule id"));
                    }
                    e.rule = value;
                }
                (Section::Allow, "path") => {
                    cfg.allow.last_mut().expect("inside [[allow]]").path = value;
                }
                (Section::Allow, "reason") => {
                    cfg.allow.last_mut().expect("inside [[allow]]").reason = value;
                }
                _ => return Err(err("unknown key for this section")),
            }
        }
        if pending_array.is_some() {
            return Err("lint.toml: unterminated array".into());
        }
        for (i, e) in cfg.allow.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint.toml: [[allow]] entry {} needs rule, path and reason",
                    i + 1
                ));
            }
        }
        Ok(cfg)
    }

    /// Load `root/lint.toml`, or an empty config when absent (fixture
    /// trees choose their own policy).
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        if !path.is_file() {
            return Ok(Config::default());
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Config::parse(&text)
    }
}

fn parse_str(tok: &str) -> Option<String> {
    let t = tok.trim();
    t.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// Which `lint.toml` section the parser is inside.
#[derive(PartialEq)]
enum Section {
    None,
    Allow,
    Charged,
}

fn assign_array(
    cfg: &mut Config,
    section: &Section,
    key: &str,
    items: Vec<String>,
) -> Result<(), String> {
    if *section == Section::Charged && key == "modules" {
        cfg.charged_modules = items;
        Ok(())
    } else {
        Err("unknown array key for this section".into())
    }
}

/// The full lint result for one workspace walk.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule, detail) — deterministic
    /// so the JSON golden is stable.
    pub findings: Vec<Finding>,
    /// Number of `[[allow]]` entries in force (the gate caps this).
    pub allow_entries: usize,
    /// Files scanned (human output only — not part of the JSON golden,
    /// which must not churn when an unrelated file is added).
    pub files_scanned: usize,
}

impl Report {
    /// The machine-readable report `scripts/verify.sh` diffs against
    /// `scripts/goldens/lint_report.json`. Keys sorted, counts per rule,
    /// findings fully expanded. Deliberately excludes `files_scanned`.
    pub fn to_json(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut s = String::from("{\n");
        s.push_str("  \"tool\": \"spin-lint\",\n  \"schema\": 1,\n");
        s.push_str(&format!("  \"allow_entries\": {},\n", self.allow_entries));
        s.push_str("  \"rules\": {");
        let rules: Vec<String> = counts
            .iter()
            .map(|(r, c)| format!("\"{r}\": {c}"))
            .collect();
        s.push_str(&rules.join(", "));
        s.push_str("},\n  \"findings\": [");
        let items: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"detail\": \"{}\", \"excerpt\": \"{}\", \"hint\": \"{}\"}}",
                    json_escape(&f.file.display().to_string()),
                    f.line,
                    f.rule,
                    f.detail,
                    json_escape(f.excerpt.trim()),
                    json_escape(f.hint)
                )
            })
            .collect();
        s.push_str(&items.join(","));
        if !items.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];
/// Methods that may appear between a tracked name and its iteration in a
/// `for` iterable without changing what is being iterated.
const BENIGN_METHODS: [&str; 8] = [
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
];
/// Calls that constitute "reaching a Clock charge" for rule C1: a direct
/// virtual-time advance, or a raise (every raise charges
/// `event_raise_base` inside the dispatcher).
const CHARGE_CALLS: [&str; 4] = ["advance", "raise", "raise_batch", "raise_on"];

struct FileLint<'a> {
    rel: &'a str,
    lx: Lexed,
    raw_lines: Vec<&'a str>,
    cfg: &'a Config,
    seen: BTreeSet<(usize, &'static str, &'static str)>,
    findings: &'a mut Vec<Finding>,
}

impl<'a> FileLint<'a> {
    fn emit(&mut self, line: usize, rule: &'static str, detail: &'static str, hint: &'static str) {
        if self.cfg.waived(rule, self.rel) || !self.seen.insert((line, rule, detail)) {
            return;
        }
        self.findings.push(Finding {
            file: PathBuf::from(self.rel),
            line,
            rule,
            detail,
            excerpt: self.raw_lines.get(line - 1).copied().unwrap_or("").into(),
            hint,
        });
    }

    fn run(&mut self) {
        self.rule_d1();
        self.rule_d2();
        self.rule_f1();
        self.rule_o1();
        self.rule_u1();
        self.rule_c1();
    }

    // D1: wall-clock, randomness, thread identity, ambient env/fs.
    fn rule_d1(&mut self) {
        let hits: Vec<(usize, &'static str, &'static str)> = {
            let lx = &self.lx;
            let mut v = Vec::new();
            for (i, t) in lx.toks.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                if lx.seq_at(i, &["std", "::", "time"])
                    || t.text == "Instant"
                    || t.text == "SystemTime"
                {
                    v.push((t.line, "wall-clock", HINT_D1_TIME));
                } else if t.text == "thread_rng" {
                    v.push((t.line, "ambient-randomness", HINT_D1_RAND));
                } else if lx.seq_at(i, &["thread", "::", "current"]) {
                    v.push((t.line, "thread-identity", HINT_D1_TID));
                } else if lx.seq_at(i, &["std", "::", "env"])
                    || lx.seq_at(i, &["std", "::", "fs"])
                    || lx.seq_at(i, &["env", "::", "var"])
                {
                    v.push((t.line, "ambient-environment", HINT_D1_ENV));
                }
            }
            v
        };
        for (line, detail, hint) in hits {
            self.emit(line, "D1", detail, hint);
        }
    }

    // D2: iteration over hash-ordered containers.
    fn rule_d2(&mut self) {
        let tracked = self.hash_typed_names();
        if tracked.is_empty() {
            return;
        }
        let mut hits: Vec<usize> = Vec::new();
        let toks = &self.lx.toks;
        // `name.iter()`-style calls, walking the dotted receiver chain
        // backwards through benign adaptors (`events.lock().iter()`).
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident
                || !ITER_METHODS.contains(&toks[i].text.as_str())
                || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
                || i == 0
                || toks[i - 1].text != "."
            {
                continue;
            }
            let mut j = i as isize - 2;
            let mut found = false;
            while j >= 0 {
                let t = &toks[j as usize];
                match t.text.as_str() {
                    ")" => {
                        // Skip a call's argument list backwards.
                        let mut depth = 1;
                        j -= 1;
                        while j >= 0 && depth > 0 {
                            match toks[j as usize].text.as_str() {
                                ")" => depth += 1,
                                "(" => depth -= 1,
                                _ => {}
                            }
                            j -= 1;
                        }
                    }
                    "." => j -= 1,
                    _ if t.kind == TokKind::Ident => {
                        if tracked.contains(t.text.as_str()) {
                            found = true;
                            break;
                        }
                        // Continue only through a dotted chain.
                        if j > 0 && toks[j as usize - 1].text == "." {
                            j -= 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            if found {
                hits.push(toks[i].line);
            }
        }
        // `for pat in <iterable> {` where the iterable names a tracked
        // container through only benign adaptors.
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || toks[i].text != "for" {
                continue;
            }
            let Some(in_at) = self.find_for_in(i) else {
                continue;
            };
            let Some(body_at) = self.find_iterable_end(in_at + 1) else {
                continue;
            };
            let expr = &toks[in_at + 1..body_at];
            let names_tracked = expr
                .iter()
                .any(|t| t.kind == TokKind::Ident && tracked.contains(t.text.as_str()));
            if !names_tracked {
                continue;
            }
            let methods_benign = expr.windows(3).all(|w| {
                // `.name(` is a method call; anything outside the benign +
                // iteration sets (e.g. `.len()`, `.get()`) means the loop
                // is not iterating the container itself.
                !(w[0].text == "."
                    && w[1].kind == TokKind::Ident
                    && w[2].text == "("
                    && !BENIGN_METHODS.contains(&w[1].text.as_str())
                    && !ITER_METHODS.contains(&w[1].text.as_str()))
            });
            if methods_benign {
                hits.push(toks[in_at].line);
            }
        }
        for line in hits {
            self.emit(line, "D2", "hash-iteration", HINT_D2);
        }
    }

    /// Names declared (in this file) with a type mentioning `HashMap` /
    /// `HashSet` or a local alias of one: struct fields, let bindings
    /// (annotated or `= HashMap::new()`-initialized), fn params.
    fn hash_typed_names(&self) -> BTreeSet<String> {
        let toks = &self.lx.toks;
        let mut hash_words: BTreeSet<String> = HASH_TYPES.iter().map(|s| s.to_string()).collect();
        // Two passes so `type A = HashMap<..>; type B = A;` both register.
        for _ in 0..2 {
            for i in 0..toks.len() {
                if toks[i].kind == TokKind::Ident
                    && toks[i].text == "type"
                    && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(i + 2).map(|t| t.text.as_str()) == Some("=")
                {
                    let mut j = i + 3;
                    while j < toks.len() && toks[j].text != ";" {
                        if hash_words.contains(&toks[j].text) {
                            hash_words.insert(toks[i + 1].text.clone());
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
        let mut tracked = BTreeSet::new();
        for i in 0..toks.len() {
            // `name: <type-with-hash-word>` — fields, params, annotated lets,
            // and struct-literal inits (`Inner { waiters: HashMap::new() }`).
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            {
                let mut depth: i32 = 0;
                let mut j = i + 2;
                while j < toks.len() {
                    let t = &toks[j].text;
                    match t.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        // `->` in an fn type is not a closing angle.
                        ">" if toks[j - 1].text != "-" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ")" | "]" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "," | ";" | "{" | "}" | "=" if depth == 0 => break,
                        _ => {}
                    }
                    if toks[j].kind == TokKind::Ident && hash_words.contains(t) {
                        tracked.insert(toks[i].text.clone());
                        break;
                    }
                    j += 1;
                }
            }
            // `let [mut] name = <expr mentioning a hash word>;`
            if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
                let mut k = i + 1;
                if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some("=")
                {
                    let mut j = k + 2;
                    while j < toks.len() && toks[j].text != ";" {
                        if toks[j].kind == TokKind::Ident && hash_words.contains(&toks[j].text) {
                            tracked.insert(toks[k].text.clone());
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
        tracked
    }

    /// From a `for` token, the index of its `in` (same nesting level), or
    /// `None` for non-loop uses (`impl .. for ..` has no `in`).
    fn find_for_in(&self, for_at: usize) -> Option<usize> {
        let toks = &self.lx.toks;
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate().skip(for_at + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => return None,
                "in" if depth == 0 && t.kind == TokKind::Ident => return Some(j),
                _ => {}
            }
        }
        None
    }

    /// From the token after `in`, the index of the body `{`.
    fn find_iterable_end(&self, from: usize) -> Option<usize> {
        let toks = &self.lx.toks;
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate().skip(from) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        None
    }

    // F1: direct sync-primitive imports bypass the model checker.
    fn rule_f1(&mut self) {
        let hits: Vec<usize> = {
            let lx = &self.lx;
            lx.toks
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    t.kind == TokKind::Ident
                        && (t.text == "parking_lot"
                            || lx.seq_at(*i, &["std", "::", "sync", "::", "atomic"])
                            || lx.seq_at(*i, &["core", "::", "sync", "::", "atomic"]))
                })
                .map(|(_, t)| t.line)
                .collect()
        };
        for line in hits {
            self.emit(line, "F1", "direct-sync", HINT_F1);
        }
    }

    // O1: atomic orderings need written justifications.
    fn rule_o1(&mut self) {
        const ORDS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
        let hits: Vec<usize> = {
            let lx = &self.lx;
            (0..lx.toks.len())
                .filter(|&i| {
                    lx.toks[i].text == "Ordering"
                        && lx.toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                        && lx
                            .toks
                            .get(i + 2)
                            .is_some_and(|t| ORDS.contains(&t.text.as_str()))
                })
                .map(|i| lx.toks[i].line)
                .filter(|&line| !self.lx.justified(line - 1, ORDERING_WINDOW, "ordering:"))
                .collect()
        };
        for line in hits {
            self.emit(line, "O1", "unjustified-ordering", HINT_O1);
        }
    }

    // U1: unsafe containment.
    fn rule_u1(&mut self) {
        let allowed = self.cfg.unsafe_allowed(self.rel);
        let hits: Vec<(usize, bool)> = self
            .lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .map(|t| (t.line, allowed))
            .collect();
        for (line, allowed) in hits {
            if !allowed {
                self.emit(line, "U1", "unsafe-outside-allowlist", HINT_U1_WHERE);
            } else if !self.lx.justified(line - 1, SAFETY_WINDOW, "SAFETY:") {
                self.emit(line, "U1", "unsafe-missing-safety-comment", HINT_U1_WHY);
            }
        }
    }

    // C1: charge coverage in the hot-path modules.
    fn rule_c1(&mut self) {
        if !self.cfg.charged(self.rel) {
            return;
        }
        let fns = self.functions();
        // A function charges if its body names a charge call directly, or
        // (fixpoint) calls a same-file function that does.
        let mut charges: BTreeMap<&str, bool> = BTreeMap::new();
        for f in &fns {
            let direct = f.calls.iter().any(|c| CHARGE_CALLS.contains(&c.as_str()));
            // Last definition wins on duplicate names (good enough: the
            // hot-path modules do not shadow function names across impls
            // with different charging behavior).
            charges.insert(f.name.as_str(), direct);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for f in &fns {
                if charges.get(f.name.as_str()) == Some(&true) {
                    continue;
                }
                if f.calls
                    .iter()
                    .any(|c| charges.get(c.as_str()) == Some(&true))
                {
                    charges.insert(f.name.as_str(), true);
                    changed = true;
                }
            }
        }
        let hits: Vec<usize> = fns
            .iter()
            .filter(|f| f.is_pub && charges.get(f.name.as_str()) != Some(&true))
            .map(|f| f.line)
            .filter(|&line| !self.lx.justified(line - 1, UNCHARGED_WINDOW, "charged:"))
            .collect();
        for line in hits {
            self.emit(line, "C1", "uncharged-public-fn", HINT_C1);
        }
    }

    /// Every `fn` item in the file, with its called names (idents followed
    /// by `(`, including method names after `.`).
    fn functions(&self) -> Vec<FnInfo> {
        let toks = &self.lx.toks;
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].kind == TokKind::Ident
                && toks[i].text == "fn"
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident))
            {
                i += 1;
                continue;
            }
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // `pub fn` (not `pub(crate) fn`, which is internal API), with
            // `const` / `async` modifiers allowed between.
            let mut k = i as isize - 1;
            while k >= 0 && matches!(toks[k as usize].text.as_str(), "const" | "async") {
                k -= 1;
            }
            let is_pub = k >= 0 && toks[k as usize].text == "pub";
            // Find the body `{` (or `;` for trait declarations).
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "<" => depth += 1,
                    ">" if toks[j - 1].text != "-" => depth -= 1,
                    "{" if depth <= 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body else {
                i += 2;
                continue;
            };
            // Brace-match the body.
            let mut braces = 1i32;
            let mut end = open + 1;
            while end < toks.len() && braces > 0 {
                match toks[end].text.as_str() {
                    "{" => braces += 1,
                    "}" => braces -= 1,
                    _ => {}
                }
                end += 1;
            }
            let calls: BTreeSet<String> = toks[open + 1..end.saturating_sub(1)]
                .iter()
                .zip(&toks[open + 2..end])
                .filter(|(a, b)| a.kind == TokKind::Ident && b.text == "(")
                .map(|(a, _)| a.text.clone())
                .collect();
            out.push(FnInfo {
                name,
                line,
                is_pub,
                calls,
            });
            // Continue *inside* the body too: nested fns/closures are rare
            // but scanning from the token after `fn name` keeps them.
            i += 2;
        }
        out
    }
}

struct FnInfo {
    name: String,
    line: usize,
    is_pub: bool,
    calls: BTreeSet<String>,
}

const HINT_D1_TIME: &str =
    "kernel time is virtual: charge spin_sal::clock::Clock, never read the wall clock";
const HINT_D1_RAND: &str =
    "randomness must be seeded and replayable: draw from spin_fault::FaultPlan / SplitMix64";
const HINT_D1_TID: &str =
    "OS thread identity is nondeterministic: key on the shard/strand id from the executor";
const HINT_D1_ENV: &str =
    "kernel code must not read ambient env/fs state: thread configuration in explicitly";
const HINT_D2: &str =
    "hash iteration order is nondeterministic: use BTreeMap/BTreeSet, or collect and sort";
const HINT_F1: &str =
    "import via spin_check::sync so --cfg spin_check can instrument this primitive";
const HINT_O1: &str = "add an `// ordering:` comment (same line or the 2 above) naming the pairing";
const HINT_U1_WHERE: &str =
    "unsafe lives only in lint.toml-allowlisted islands; move it there or make it safe";
const HINT_U1_WHY: &str = "add a `// SAFETY:` comment (same line or the 5 above) proving the claim";
const HINT_C1: &str = "hot-path API must charge the Clock (advance/raise) or carry an \
    `// uncharged:` (zero-cost by design) / `// charged:` (charge is behind a call) justification";

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Lint one file's source text; `rel` is its workspace-relative path.
pub fn lint_source(rel: &str, src: &str, cfg: &Config, findings: &mut Vec<Finding>) {
    let mut fl = FileLint {
        rel,
        lx: lex(src),
        raw_lines: src.lines().collect(),
        cfg,
        seen: BTreeSet::new(),
        findings,
    };
    fl.run();
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn crate_src_dirs(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut dirs = Vec::new();
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for krate in crate_dirs {
            let src = krate.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    Ok(dirs)
}

/// Run the full lint rooted at a workspace directory (the repo root or a
/// fixture laid out the same way) with an explicit config.
pub fn lint_workspace_with(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for src in crate_src_dirs(root)? {
        walk(&src, &mut files)?;
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let mut findings = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        lint_source(&rel_path(root, file), &src, cfg, &mut findings);
    }
    // U1 crate-root check: every crate must pin its unsafe posture. A
    // crate containing an allowlisted unsafe island declares
    // `#![deny(unsafe_op_in_unsafe_fn)]`; every other crate forbids
    // unsafe outright. Fully-waived crates (the tool, the benches) are
    // skipped.
    for src_dir in crate_src_dirs(root)? {
        let lib = src_dir.join("lib.rs");
        if !lib.is_file() {
            continue;
        }
        let rel = rel_path(root, &lib);
        if cfg.waived("U1", &rel) {
            continue;
        }
        let crate_rel = rel_path(root, &src_dir);
        let has_island = cfg
            .allow
            .iter()
            .any(|a| a.rule == "U1" && a.path.starts_with(&crate_rel));
        let required = if has_island {
            "#![deny(unsafe_op_in_unsafe_fn)]"
        } else {
            "#![forbid(unsafe_code)]"
        };
        let src = std::fs::read_to_string(&lib)?;
        if !src.contains(required) {
            findings.push(Finding {
                file: PathBuf::from(rel),
                line: 1,
                rule: "U1",
                detail: "missing-crate-unsafe-lint",
                excerpt: format!("crate root lacks {required}"),
                hint: HINT_U1_WHERE,
            });
        }
    }
    findings.sort();
    findings.dedup();
    Ok(Report {
        findings,
        allow_entries: cfg.allow.len(),
        files_scanned: files.len(),
    })
}

/// Run the full lint with the workspace's own `lint.toml`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let cfg =
        Config::load(root).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    lint_workspace_with(root, &cfg)
}

/// The CLI driver shared by the `spin-lint` binary and its `spin-audit`
/// back-compat alias: `[--root <dir>] [--json]`, exit 0 clean / 1
/// findings / 2 usage-or-IO error.
pub fn cli_run(tool: &str, args: impl Iterator<Item = String>) -> std::process::ExitCode {
    use std::process::ExitCode;
    let mut args = args;
    let mut root = None;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = true,
            other => {
                eprintln!("{tool}: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let mut dir = std::env::current_dir().ok()?;
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return Some(dir);
            }
            if !dir.pop() {
                return None;
            }
        }
    });
    let Some(root) = root else {
        eprintln!("{tool}: no workspace root found (use --root)");
        return ExitCode::from(2);
    };
    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                for f in &report.findings {
                    println!("{f}");
                }
            }
            if report.findings.is_empty() {
                if !json {
                    println!(
                        "{tool}: OK ({} files, {} allow entries, {})",
                        report.files_scanned,
                        report.allow_entries,
                        root.display()
                    );
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("{tool}: {} finding(s)", report.findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{tool}: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        lint_source(rel, src, &Config::default(), &mut f);
        f.sort();
        f
    }

    fn run_cfg(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        let mut f = Vec::new();
        lint_source(rel, src, cfg, &mut f);
        f.sort();
        f
    }

    #[test]
    fn d1_flags_wall_clock_and_randomness() {
        let f = run(
            "crates/core/src/x.rs",
            "use std::time::Instant;\nlet r = thread_rng();\nlet id = std::thread::current().id();\nlet h = std::env::var(\"HOME\");\n",
        );
        let details: Vec<_> = f.iter().map(|f| (f.line, f.detail)).collect();
        assert_eq!(
            details,
            [
                (1, "wall-clock"),
                (2, "ambient-randomness"),
                (3, "thread-identity"),
                (4, "ambient-environment"),
            ],
            "{f:?}"
        );
    }

    #[test]
    fn d1_ignores_strings_and_comments() {
        let f = run(
            "crates/core/src/x.rs",
            "// std::time::Instant would be bad\nlet s = \"std::time::Instant\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d2_flags_iteration_over_hash_containers() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn a(&self) { for (k, v) in self.m.iter() { let _ = (k, v); } }\n\
                   fn b(&self) { let _: Vec<u32> = self.m.keys().copied().collect(); }\n\
                   fn c(&mut self) { self.m.retain(|_, v| *v > 0); }\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src);
        let lines: Vec<_> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, [4, 5, 6], "{f:?}");
        assert!(f.iter().all(|f| f.rule == "D2"));
    }

    #[test]
    fn d2_sees_through_locks_and_aliases() {
        let src = "use std::collections::HashMap;\n\
                   type Waiters = HashMap<u32, u32>;\n\
                   struct S { w: Mutex<Waiters> }\n\
                   impl S {\n\
                   fn a(&self) { for x in self.w.lock().values() { let _ = x; } }\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn d2_lookups_and_vec_iteration_are_clean() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32>, v: Vec<u32> }\n\
                   impl S {\n\
                   fn a(&self) -> Option<&u32> { self.m.get(&1) }\n\
                   fn b(&self) { for x in self.v.iter() { let _ = x; } }\n\
                   fn c(&self) { for i in 0..self.m.len() { let _ = i; } }\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn f1_flags_direct_sync_everywhere() {
        for rel in ["crates/net/src/x.rs", "crates/swap/src/x.rs", "src/lib.rs"] {
            let f = run(
                rel,
                "use parking_lot::Mutex;\nuse std::sync::atomic::AtomicU64;\n",
            );
            assert_eq!(f.len(), 2, "{rel}: {f:?}");
            assert!(f.iter().all(|f| f.rule == "F1"));
        }
    }

    #[test]
    fn o1_token_accurate() {
        // A user type named `MyOrdering` must not match; bare `Ordering::X`
        // without a justification must.
        let f = run(
            "crates/core/src/x.rs",
            "a.load(MyOrdering::Acquire);\nb.load(Ordering::Acquire);\nc.load(Ordering::Release); // ordering: pairs with b\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "O1");
    }

    #[test]
    fn u1_allowlist_still_requires_safety() {
        let mut cfg = Config::default();
        cfg.allow.push(AllowEntry {
            rule: "U1".into(),
            path: "crates/obs/src/ring.rs".into(),
            reason: "island".into(),
        });
        let f = run_cfg("crates/obs/src/ring.rs", "unsafe { foo() }\n", &cfg);
        assert_eq!(f[0].detail, "unsafe-missing-safety-comment");
        let f = run_cfg(
            "crates/obs/src/ring.rs",
            "// SAFETY: masked by cap\nunsafe { foo() }\n",
            &cfg,
        );
        assert!(f.is_empty(), "{f:?}");
        let f = run_cfg("crates/net/src/x.rs", "unsafe { foo() }\n", &cfg);
        assert_eq!(f[0].detail, "unsafe-outside-allowlist");
    }

    #[test]
    fn c1_propagates_charges_and_accepts_justifications() {
        let mut cfg = Config::default();
        cfg.charged_modules.push("crates/net/src/stack.rs".into());
        let src = "impl S {\n\
                   pub fn send(&self) { self.push() }\n\
                   fn push(&self) { self.clock.advance(10); }\n\
                   pub fn stats(&self) -> u64 { self.count }\n\
                   /// Docs.\n\
                   // uncharged: pure accessor, no packet moves\n\
                   pub fn name(&self) -> &str { &self.name }\n\
                   }\n";
        let f = run_cfg("crates/net/src/stack.rs", src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].rule, "C1");
        // Same file not in the charged set: no findings.
        let f = run_cfg("crates/net/src/other.rs", src, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn config_parses_and_rejects_unknowns() {
        let cfg = Config::parse(
            "# comment\n[[allow]]\nrule = \"*\"\npath = \"crates/bench\"\nreason = \"wall-clock by design\"\n\n[charged]\nmodules = [\n  \"crates/core/src/dispatch.rs\",\n  \"crates/net/src/stack.rs\",\n]\n",
        )
        .expect("parses");
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.charged_modules.len(), 2);
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[[allow]]\nrule = \"Z9\"\npath = \"x\"\nreason = \"r\"\n").is_err());
        assert!(
            Config::parse("[[allow]]\nrule = \"D1\"\n").is_err(),
            "incomplete entry"
        );
    }

    #[test]
    fn report_json_is_stable_and_sorted() {
        let r = Report {
            findings: vec![],
            allow_entries: 3,
            files_scanned: 10,
        };
        let j = r.to_json();
        assert!(j.contains("\"allow_entries\": 3"));
        assert!(j.contains("\"findings\": []"));
        assert!(
            !j.contains("files_scanned"),
            "golden must not churn on file adds"
        );
    }
}
