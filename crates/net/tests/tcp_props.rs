//! Property tests for TCP: complete in-order delivery under arbitrary
//! deterministic loss patterns and payload shapes, and sequence-number
//! arithmetic at the wrap.

use proptest::prelude::*;
use spin_check::sync::Mutex;
use spin_net::{Medium, TcpStack, TwoHosts};
use std::sync::Arc;

fn transfer_under_loss(payload: Vec<u8>, loss_modulus: u64, medium: Medium) -> Vec<u8> {
    let rig = TwoHosts::new();
    if loss_modulus > 1 {
        let wire = match medium {
            Medium::Ethernet => &rig.board.ethernet,
            Medium::Atm => &rig.board.atm,
            Medium::T3 => &rig.board.t3,
        };
        wire.set_drop_filter(move |i| i % loss_modulus == loss_modulus - 1);
    }
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let listener = tcp_b.listen(80);
    let received = Arc::new(Mutex::new(Vec::new()));
    let r2 = received.clone();
    rig.exec.spawn("server", move |ctx| {
        if let Some(conn) = listener.accept(ctx) {
            while let Some(chunk) = conn.recv(ctx) {
                r2.lock().extend_from_slice(&chunk);
            }
        }
    });
    let dst = rig.b.ip_on(medium);
    rig.exec.spawn("client", move |ctx| {
        if let Ok(conn) = tcp_a.connect(ctx, dst, 80) {
            let _ = conn.send(ctx, &payload);
            ctx.sleep(5_000_000_000); // drain retransmissions
            conn.close(ctx);
        }
    });
    rig.exec.run_until_idle();
    let r = received.lock().clone();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn payload_arrives_intact_and_ordered_under_loss(
        payload in prop::collection::vec(any::<u8>(), 1..12_000),
        loss in prop_oneof![Just(0u64), 3u64..9],
    ) {
        let received = transfer_under_loss(payload.clone(), loss, Medium::Atm);
        prop_assert_eq!(received, payload);
    }

    #[test]
    fn tiny_and_boundary_payloads_survive(
        len in prop_oneof![Just(1usize), Just(1399), Just(1400), Just(1401), Just(2800)],
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let received = transfer_under_loss(payload.clone(), 0, Medium::Ethernet);
        prop_assert_eq!(received, payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checksum_detects_single_byte_corruption(
        data in prop::collection::vec(any::<u8>(), 20..64),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        use spin_net::pkt::{internet_checksum, IpAddr, Ipv4Header};
        let pkt = Ipv4Header::encode(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            17,
            64,
            &data,
        );
        // Header checksum verifies...
        prop_assert_eq!(internet_checksum(&pkt[..Ipv4Header::LEN]), 0);
        // ...and any single-byte header corruption is caught.
        let mut bad = pkt.to_vec();
        let i = flip_at.index(Ipv4Header::LEN);
        bad[i] ^= flip_bits;
        prop_assert!(Ipv4Header::decode(&bytes::Bytes::from(bad)).is_none());
    }

    #[test]
    fn header_round_trips_preserve_every_field(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        use spin_net::pkt::{TcpFlags, TcpHeader, UdpHeader};
        let h = TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            flags: TcpFlags { syn: seq.is_multiple_of(2), ack: ack.is_multiple_of(2), fin: window.is_multiple_of(2), rst: false },
            window,
        };
        let (h2, p2) = TcpHeader::decode(&h.encode(&payload)).unwrap();
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&p2[..], &payload[..]);

        let d = UdpHeader::encode(sport, dport, &payload);
        let (uh, up) = UdpHeader::decode(&d).unwrap();
        prop_assert_eq!((uh.src_port, uh.dst_port), (sport, dport));
        prop_assert_eq!(&up[..], &payload[..]);
    }
}
