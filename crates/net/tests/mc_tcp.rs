//! TCP and HTTP over the sharded multicore rig.
//!
//! `mc_http_server` is a regression test for the `plan_epoch` grant bug:
//! a shard whose peer's only local horizon was a distant retransmission
//! timer could be granted far past the peer's *reaction* to this shard's
//! own outbound mail, so the reply (here, the client's request segment)
//! arrived tens of milliseconds stale — after the server's idle reaper
//! had already closed the session. The grant is now capped at
//! `n_i + 2·lookahead`.

use spin_net::{interest, Medium, NetPoller, ShardedPair, TcpStack};
use spin_sched::IdleOutcome;

#[test]
fn mc_tcp_blocking_accept() {
    let rig = ShardedPair::new(1);
    let ta = TcpStack::install(&rig.a);
    let tb = TcpStack::install(&rig.b);
    let listener = tb.listen(80);
    rig.exec_b.spawn("server", move |ctx| {
        let conn = listener.accept(ctx).unwrap();
        let _ = conn.recv(ctx);
        conn.send(ctx, b"pong").unwrap();
        conn.close(ctx);
    });
    let dst = rig.b_ip(Medium::Ethernet);
    rig.exec_a.spawn("client", move |ctx| {
        let conn = ta.connect(ctx, dst, 80).unwrap();
        conn.send(ctx, b"ping").unwrap();
        assert_eq!(conn.recv(ctx).as_deref(), Some(&b"pong"[..]));
        conn.close(ctx);
    });
    assert_eq!(rig.mc.run_until_idle(), IdleOutcome::AllComplete);
}

#[test]
fn mc_tcp_poller_accept() {
    let rig = ShardedPair::new(1);
    let ta = TcpStack::install(&rig.a);
    let tb = TcpStack::install(&rig.b);
    let listener = tb.listen(80);
    let poller = NetPoller::new(&rig.b);
    poller.add(listener.as_ref(), 0, interest::ACCEPT);
    let server = rig.exec_b.spawn("server", move |ctx| {
        let mut conns = std::collections::BTreeMap::new();
        let mut next = 1u64;
        loop {
            for (token, _mask) in poller.wait(ctx) {
                if token == 0 {
                    while let Some(conn) = listener.try_accept() {
                        poller.add(conn.as_ref(), next, interest::READABLE);
                        conns.insert(next, conn);
                        next += 1;
                    }
                } else if let Some(conn) = conns.remove(&token) {
                    let _ = conn.try_recv();
                    conn.send(ctx, b"pong").unwrap();
                    conn.close(ctx);
                }
            }
        }
    });
    rig.exec_b.set_daemon(server);
    let dst = rig.b_ip(Medium::Ethernet);
    rig.exec_a.spawn("client", move |ctx| {
        let conn = ta.connect(ctx, dst, 80).unwrap();
        conn.send(ctx, b"ping").unwrap();
        assert_eq!(conn.recv(ctx).as_deref(), Some(&b"pong"[..]));
        conn.close(ctx);
    });
    assert_eq!(rig.mc.run_until_idle(), IdleOutcome::AllComplete);
}

#[test]
fn mc_http_server() {
    use spin_fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
    use spin_net::{Bytes, HttpConfig, HttpServer, Request, Response};
    use std::sync::Arc;

    let rig = ShardedPair::new(1);
    let ta = TcpStack::install(&rig.a);
    let tb = TcpStack::install(&rig.b);
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec_b.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 500);
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65_536,
        }),
    ));
    let server = HttpServer::start_with(
        &rig.b,
        &tb,
        fs,
        cache,
        80,
        HttpConfig {
            backlog: 4096,
            idle_timeout: 50_000_000,
            tick: 10_000_000,
            time_bound: None,
            quota: None,
        },
    );
    server.route("/r0", |_req: &Request| {
        Response::ok(Bytes::from_static(b"hi"))
    });
    let dst = rig.b_ip(Medium::Atm);
    rig.exec_a.spawn("client", move |ctx| {
        ctx.sleep(250_000_000);
        let conn = ta.connect(ctx, dst, 80).expect("connect");
        let _ = conn.send(ctx, b"GET /r0 HTTP/1.0\r\n\r\n");
        let mut resp = Vec::new();
        while let Some(b) = conn.recv(ctx) {
            resp.extend_from_slice(&b);
        }
        conn.close(ctx);
        assert!(
            std::str::from_utf8(&resp)
                .unwrap_or("")
                .starts_with("HTTP/1.0 200"),
            "got: {resp:?}"
        );
    });
    assert_eq!(rig.mc.run_until_idle(), IdleOutcome::AllComplete);
    assert_eq!(server.stats().ok, 1);
}
