//! Properties of the webscale readiness layer: under arbitrary traffic
//! interleavings, a single strand parked on a [`spin_net::NetPoller`]
//! delivers exactly what the legacy one-blocking-strand-per-socket shape
//! delivered — same payload sequences, same stack statistics — each shape
//! is virtual-clock deterministic run-to-run, the hub's batched
//! `Net.Ready` flush is charge-identical to raising each poller's batch
//! individually, and compiled-in-but-idle readiness machinery shifts no
//! output at all (the invariant that keeps the pre-webscale goldens
//! byte-identical).

use proptest::prelude::*;
use spin_check::sync::Mutex;
use spin_net::{interest, Medium, NetPoller, NetStats, ReadyBatch, Token, TwoHosts, UdpSocket};
use spin_sal::Nanos;
use std::collections::BTreeMap;
use std::sync::Arc;

const PORTS: [u16; 3] = [100, 101, 102];

/// One send in the plan: (destination socket index, payload seed, gap
/// before the send in virtual ns).
type Plan = Vec<(usize, u8, Nanos)>;

fn payload_for(seed: u8) -> Vec<u8> {
    vec![seed; (seed as usize % 31) + 1]
}

/// Everything the two delivery shapes must agree on. The final clock is
/// carried separately: it is deterministic *within* a shape but not
/// comparable *across* shapes (the redesign deliberately charges fewer
/// per-connection wakeups than strand-per-socket).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    /// Per socket, the payloads in delivery order.
    delivered: Vec<Vec<Vec<u8>>>,
    stats_a: NetStats,
    stats_b: NetStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// One blocking reader strand per socket (the pre-webscale shape).
    StrandPerSocket,
    /// One strand draining every socket through a poller.
    Poller,
    /// Like `StrandPerSocket`, plus an *idle* poller registered on a live
    /// socket with an interest mask the UDP path never notes — must
    /// change nothing, clock included: no note, no `Net.Ready` raise, and
    /// the poller's own keyed install sits on an event that never fires.
    StrandPerSocketWithIdlePoller,
}

fn run(shape: Shape, plan: &Plan) -> (Outcome, Nanos) {
    let rig = TwoHosts::new();
    let socks: Vec<Arc<UdpSocket>> = PORTS
        .iter()
        .map(|&p| UdpSocket::bind(&rig.b, p, &format!("sock-{p}"), 64).expect("bind"))
        .collect();
    let delivered: Arc<Mutex<Vec<Vec<Vec<u8>>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); PORTS.len()]));

    match shape {
        Shape::StrandPerSocket | Shape::StrandPerSocketWithIdlePoller => {
            for (i, sock) in socks.iter().cloned().enumerate() {
                let d2 = delivered.clone();
                let id = rig.exec.spawn(&format!("reader-{i}"), move |ctx| {
                    while let Some(p) = sock.recv(ctx) {
                        d2.lock()[i].push(p.payload.to_vec());
                    }
                });
                rig.exec.set_daemon(id);
            }
            if shape == Shape::StrandPerSocketWithIdlePoller {
                let poller = NetPoller::new(&rig.b);
                poller.add(socks[0].as_ref(), 0, interest::ACCEPT);
            }
        }
        Shape::Poller => {
            let poller = NetPoller::new(&rig.b);
            for (i, sock) in socks.iter().enumerate() {
                poller.add(sock.as_ref(), i as u64, interest::READABLE);
            }
            let d2 = delivered.clone();
            let socks2 = socks.clone();
            let id = rig.exec.spawn("drainer", move |ctx| loop {
                for (token, _mask) in poller.wait(ctx) {
                    let i = token as usize;
                    while let Some(p) = socks2[i].try_recv() {
                        d2.lock()[i].push(p.payload.to_vec());
                    }
                }
            });
            rig.exec.set_daemon(id);
        }
    }

    let a = rig.a.clone();
    let dst = rig.b.ip_on(Medium::Ethernet);
    let plan2 = plan.clone();
    rig.exec.spawn("driver", move |ctx| {
        for (idx, seed, gap) in plan2 {
            ctx.sleep(gap);
            a.udp_send(9000, dst, PORTS[idx % PORTS.len()], &payload_for(seed))
                .expect("send");
        }
    });
    rig.exec.run_until_idle();
    let out = Outcome {
        delivered: delivered.lock().clone(),
        stats_a: rig.a.stats(),
        stats_b: rig.b.stats(),
    };
    (out, rig.exec.clock().now())
}

/// Groups raw notes the way [`spin_net::poll::ReadyHub`] does: OR-merged
/// masks, BTree order, one batch per poller.
fn grouped(notes: &[(u64, Token, u8)]) -> Vec<ReadyBatch> {
    let mut merged: BTreeMap<(u64, Token), u8> = BTreeMap::new();
    for &(poller, token, mask) in notes {
        *merged.entry((poller, token)).or_insert(0) |= mask;
    }
    let mut batches: Vec<ReadyBatch> = Vec::new();
    for ((poller, token), mask) in merged {
        match batches.last_mut() {
            Some(b) if b.poller == poller => b.tokens.push((token, mask)),
            _ => batches.push(ReadyBatch {
                poller,
                tokens: vec![(token, mask)],
            }),
        }
    }
    batches
}

/// Runs a flush of `notes` either through the hub (one `raise_batch`) or
/// as one raise per poller batch; returns each poller's drained ready set
/// plus the virtual time the flush charged.
fn flush_outcome(notes: &[(u64, Token, u8)], batched: bool) -> (Vec<Vec<(Token, u8)>>, Nanos) {
    let rig = TwoHosts::new();
    // Three pollers; ids are allocated deterministically (1, 2, 3).
    let pollers: Vec<Arc<NetPoller>> = (0..3).map(|_| NetPoller::new(&rig.b)).collect();
    let ids: Vec<u64> = pollers.iter().map(|p| p.id()).collect();
    let remap: Vec<(u64, Token, u8)> = notes
        .iter()
        .map(|&(p, t, m)| (ids[(p % 3) as usize], t, m))
        .collect();
    let clock = rig.exec.clock().clone();
    let t0 = clock.now();
    if batched {
        let hub = rig.b.ready_hub();
        for &(poller, token, mask) in &remap {
            hub.note(poller, token, mask);
        }
        hub.flush(&rig.b.events().net_ready);
    } else {
        for batch in grouped(&remap) {
            let _ = rig.b.events().net_ready.raise(batch);
        }
    }
    let spent = clock.now() - t0;
    let drained = pollers.iter().map(|p| p.try_wait()).collect();
    (drained, spent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: the readiness path is observationally
    /// equivalent to the per-socket blocking path under arbitrary
    /// interleavings of traffic across sockets, and each shape's virtual
    /// clock is deterministic run-to-run.
    #[test]
    fn poller_matches_strand_per_socket(
        plan in prop::collection::vec(
            (0usize..PORTS.len(), any::<u8>(), 200_000u64..600_000),
            1..24,
        ),
    ) {
        let (legacy, legacy_clock) = run(Shape::StrandPerSocket, &plan);
        let (poller, poller_clock) = run(Shape::Poller, &plan);
        prop_assert_eq!(&legacy, &poller);
        let (legacy2, legacy_clock2) = run(Shape::StrandPerSocket, &plan);
        let (poller2, poller_clock2) = run(Shape::Poller, &plan);
        prop_assert_eq!((legacy, legacy_clock), (legacy2, legacy_clock2));
        prop_assert_eq!((poller, poller_clock), (poller2, poller_clock2));
    }

    /// The charging property: flushing the hub (one `raise_batch` over
    /// per-poller batches) invokes exactly the handlers that raising each
    /// poller's batch individually would, delivers identical merged
    /// masks, and charges *identical* virtual time — the PR-6 batched-
    /// raise equivalence, applied to `Net.Ready`.
    #[test]
    fn hub_flush_is_charge_identical_to_per_poller_raises(
        notes in prop::collection::vec(
            (0u64..3, 0u64..6, 1u8..8),
            1..32,
        ),
    ) {
        let (drained_a, spent_a) = flush_outcome(&notes, true);
        let (drained_b, spent_b) = flush_outcome(&notes, false);
        prop_assert_eq!(drained_a, drained_b);
        prop_assert_eq!(spent_a, spent_b);
    }
}

/// Idle readiness machinery (a poller and a registered-but-silent
/// socket) must not move a single output — clock included: no
/// `Net.Ready` raise ever fires, so no charge, no clock drift, no stats
/// drift.
#[test]
fn idle_poller_changes_nothing() {
    let plan: Plan = (0..12)
        .map(|i| {
            (
                i % PORTS.len(),
                (i * 37 + 5) as u8,
                250_000 + (i as u64) * 13_000,
            )
        })
        .collect();
    let base = run(Shape::StrandPerSocket, &plan);
    let with_idle = run(Shape::StrandPerSocketWithIdlePoller, &plan);
    assert_eq!(base, with_idle, "idle poller must be observationally free");
}
