//! The extensible protocol stack (Figure 5).
//!
//! "Each incoming packet is 'pushed' through the protocol graph by events
//! and 'pulled' by handlers" (§5.3). The graph is built exactly as the
//! paper describes:
//!
//! * the NIC interrupt handler unblocks a **separately scheduled kernel
//!   thread** ("protocol processing is done by a separately scheduled
//!   kernel thread outside of the interrupt handler");
//! * that thread raises `Ether.PktArrived` / `ATM.PktArrived`;
//! * the IP module's handler parses the packet and raises
//!   `IP.PacketArrived`; UDP, TCP and ICMP install handlers on it **with
//!   guards comparing the protocol type field** — the paper's worked
//!   example of per-instance dispatch ("the IP module ... constructs a
//!   guard that compares the type field in the header of the incoming
//!   packet");
//! * applications bind handlers on `UDP.PktArrived` guarded by port.
//!
//! The outgoing side raises `SendPacket`, whose default implementation
//! transmits; extensions can suppress and replace the transmission — the
//! video server's multicast handler (§5.4) hangs here.

use crate::pkt::{
    proto, EtherHeader, IcmpHeader, IcmpKind, IpAddr, Ipv4Header, TcpHeader, UdpHeader,
    ETHERTYPE_IPV4,
};
use crate::poll::{ReadyBatch, ReadyHub};
use bytes::Bytes;
use spin_check::sync::{AtomicU16, AtomicU64, Ordering};
use spin_check::sync::{Mutex, RwLock};
use spin_core::{Constraints, Dispatcher, Event, HandlerMode, Identity, InstallDecision, KeyFn};
use spin_obs::{ObsHook, TraceKind};
use spin_sal::board::vectors;
use spin_sal::devices::nic::Nic;
use spin_sal::{BufChain, Host, Nanos, WireEndpoint};
use spin_sched::{Executor, KChannel, StrandCtx, StrandId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which attached medium a packet used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    Ethernet,
    Atm,
    T3,
}

/// The simulation-wide IP → attachment registry (static ARP).
///
/// Read-mostly: every transmitted packet resolves, registrations happen at
/// host setup. Like the dispatcher's raise plan, the table is an immutable
/// snapshot behind `RwLock<Arc<_>>`: resolvers share a read lock (never
/// blocking each other), registrars rebuild-and-swap.
#[derive(Clone, Default)]
pub struct AddressMap {
    entries: Arc<RwLock<Arc<AddrTable>>>,
}

/// The immutable routing snapshot published by [`AddressMap`].
type AddrTable = HashMap<IpAddr, (Medium, WireEndpoint)>;

impl AddressMap {
    /// An empty map.
    // uncharged: constructor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an address (rebuilds and swaps the snapshot).
    // uncharged: address registration is control-plane.
    pub fn register(&self, ip: IpAddr, medium: Medium, endpoint: WireEndpoint) {
        let mut slot = self.entries.write();
        let mut next = HashMap::clone(&slot);
        next.insert(ip, (medium, endpoint));
        *slot = Arc::new(next);
    }

    /// Resolves an address (per-packet hot path; shared read access).
    // uncharged: lookup cost is folded into the sender's per-hop charge.
    pub fn resolve(&self, ip: IpAddr) -> Option<(Medium, WireEndpoint)> {
        self.entries.read().get(&ip).copied()
    }
}

/// A frame handed up from a link layer.
#[derive(Clone)]
pub struct LinkFrame {
    pub medium: Medium,
    pub bytes: Bytes,
}

/// An IP packet in flight up the stack.
#[derive(Clone)]
pub struct IpPacket {
    pub header: Ipv4Header,
    pub payload: Bytes,
    pub medium: Medium,
}

/// A UDP datagram delivered to `UDP.PktArrived` handlers.
#[derive(Clone)]
pub struct UdpPacket {
    pub ip: Ipv4Header,
    pub header: UdpHeader,
    pub payload: Bytes,
}

/// A TCP segment delivered to `TCP.PktArrived` handlers.
#[derive(Clone)]
pub struct TcpSegment {
    pub ip: Ipv4Header,
    pub header: TcpHeader,
    pub payload: Bytes,
}

/// An ICMP message delivered to `ICMP.PktArrived` handlers.
#[derive(Clone)]
pub struct IcmpPacket {
    pub ip: Ipv4Header,
    pub header: IcmpHeader,
    pub payload: Bytes,
}

/// An outgoing transmission presented to `SendPacket` handlers.
#[derive(Clone)]
pub struct SendRequest {
    pub dst: IpAddr,
    pub protocol: u8,
    /// The transport-layer segment (UDP/TCP/ICMP bytes) as a zero-copy
    /// chain; inspectors flatten with [`BufChain::to_bytes`].
    pub payload: BufChain,
}

/// What `SendPacket` handlers decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// Transmit normally.
    Transmit,
    /// A handler took responsibility (e.g. multicast fan-out); do not
    /// transmit the original.
    Suppressed,
}

/// The events of the protocol graph.
#[derive(Clone)]
pub struct NetEvents {
    pub ether_arrived: Event<LinkFrame, ()>,
    pub atm_arrived: Event<LinkFrame, ()>,
    pub t3_arrived: Event<LinkFrame, ()>,
    pub ip_arrived: Event<IpPacket, ()>,
    pub udp_arrived: Event<UdpPacket, ()>,
    pub tcp_arrived: Event<TcpSegment, ()>,
    pub icmp_arrived: Event<IcmpPacket, ()>,
    pub send_packet: Event<SendRequest, SendVerdict>,
    /// The shared protocol-number key on `IP.PacketArrived`. Handlers
    /// keyed on it (UDP/TCP/ICMP demux, extensions) collapse into one
    /// dispatch-table lookup per raise — install with
    /// [`Event::install_keyed`] to join the compiled path.
    pub ip_proto_key: KeyFn<IpPacket>,
    /// The shared destination-port key on `UDP.PktArrived` (port binds).
    pub udp_port_key: KeyFn<UdpPacket>,
    /// The shared destination-port key on `TCP.PktArrived`.
    pub tcp_port_key: KeyFn<TcpSegment>,
    /// The aggregated readiness event: one raise per poller per inbound
    /// burst, demultiplexed by [`NetEvents::ready_poller_key`].
    pub net_ready: Event<ReadyBatch, ()>,
    /// The shared poller-id key on `Net.Ready` (each [`crate::poll::NetPoller`]
    /// installs keyed on its own id).
    pub ready_poller_key: KeyFn<ReadyBatch>,
}

/// Edges of the Figure 5 graph, recorded as extensions install handlers.
///
/// Snapshot-published like [`AddressMap`]: readers grab the current `Arc`
/// and work on it with no lock held; writers rebuild-and-swap.
#[derive(Clone, Default)]
pub struct Topology {
    edges: Arc<RwLock<Arc<EdgeList>>>,
}

/// The immutable edge snapshot published by [`Topology`].
type EdgeList = Vec<(String, String)>;

impl Topology {
    /// Records "`event` is handled by `handler`".
    // uncharged: Figure 5 diagnostics recorder.
    pub fn note(&self, event: &str, handler: &str) {
        let mut slot = self.edges.write();
        let mut next = Vec::clone(&slot);
        next.push((event.to_string(), handler.to_string()));
        *slot = Arc::new(next);
    }

    /// All recorded edges, sorted.
    // uncharged: Figure 5 diagnostics recorder.
    pub fn edges(&self) -> Vec<(String, String)> {
        let snapshot = self.edges.read().clone();
        let mut e = Vec::clone(&snapshot);
        e.sort();
        e.dedup();
        e
    }

    /// Renders the graph as indented text (the Figure 5 printout).
    // uncharged: Figure 5 diagnostics recorder.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let edges = self.edges();
        let mut events: Vec<&String> = edges.iter().map(|(e, _)| e).collect();
        events.dedup();
        for event in events {
            out.push_str(&format!("{event}\n"));
            for (e, h) in &edges {
                if e == event {
                    out.push_str(&format!("  -> {h}\n"));
                }
            }
        }
        out
    }
}

/// Network statistics for one stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub frames_in: u64,
    pub frames_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub parse_errors: u64,
    /// Transmit retries scheduled by [`NetStack::transmit_with_retry`] —
    /// the single authoritative retry count (obs mirrors it).
    pub retries: u64,
}

/// Lock-free counters backing [`NetStats`]: updated per frame on the
/// receive and transmit paths, so no mutex.
#[derive(Default)]
struct AtomicNetStats {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    parse_errors: AtomicU64,
    retries: AtomicU64,
}

impl AtomicNetStats {
    fn snapshot(&self) -> NetStats {
        NetStats {
            frames_in: self.frames_in.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            frames_out: self.frames_out.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            bytes_in: self.bytes_in.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            bytes_out: self.bytes_out.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            parse_errors: self.parse_errors.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            retries: self.retries.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }
}

/// Retry backoff floor for [`NetStack::transmit_with_retry`].
pub const RETRY_BASE: Nanos = 1_000_000;
/// Retry backoff ceiling.
pub const RETRY_CAP: Nanos = 8_000_000;
/// Retry budget per packet.
pub const RETRY_MAX: u32 = 4;

/// Pingers parked on (ident, seq), woken by the matching echo reply.
type PingWaiters = HashMap<(u16, u16), Arc<KChannel<Nanos>>>;

struct NetInner {
    host: Host,
    exec: Arc<Executor>,
    addrs: AddressMap,
    my_ips: HashMap<Medium, IpAddr>,
    events: NetEvents,
    topology: Topology,
    ping_waiters: Mutex<PingWaiters>,
    ping_seq: AtomicU16,
    stats: Arc<AtomicNetStats>,
    /// Observability hook (net domain): absent until wired; the per-frame
    /// paths then pay one atomic load each.
    obs: Arc<spin_core::hooks::HookSlot<ObsHook>>,
    /// Fault-injection hook (`net.stack` site), drawn per transmitted
    /// frame: `Fail` drops the frame as [`NetError::Faulted`], `Delay`
    /// stalls the sender on the virtual clock, `Panic` unwinds (contained
    /// by the dispatcher when transmitting from a handler).
    faults: Arc<spin_core::hooks::HookSlot<spin_fault::FaultHook>>,
    proto_thread: StrandId,
    /// The readiness scoreboard, flushed by the protocol thread after
    /// each inbound burst.
    ready_hub: Arc<ReadyHub>,
    /// Poller id allocator (`Net.Ready` demux keys).
    next_poller: AtomicU64,
    /// Per-poller `time_bound` grants (see the `Net.Ready` authorizer).
    poller_bounds: Arc<Mutex<HashMap<String, Nanos>>>,
}

/// One host's protocol stack.
#[derive(Clone)]
pub struct NetStack {
    inner: Arc<NetInner>,
}

impl NetStack {
    /// Installs the stack on a host: defines the events, builds the
    /// default protocol graph, registers NIC interrupt handlers and spawns
    /// the protocol thread. `eth_ip`/`atm_ip`/`t3_ip` attach the host to
    /// the three media.
    pub fn install(
        host: &Host,
        exec: &Arc<Executor>,
        dispatcher: &Dispatcher,
        addrs: &AddressMap,
        eth_ip: IpAddr,
        atm_ip: IpAddr,
        t3_ip: IpAddr,
    ) -> NetStack {
        // Per-poller `time_bound` grants, consulted by the `Net.Ready`
        // install authorizer (keyed by the poller's installer label).
        let poller_bounds: Arc<Mutex<HashMap<String, Nanos>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let events = NetEvents {
            ether_arrived: Self::define_link(dispatcher, "Ether.PktArrived"),
            atm_arrived: Self::define_link(dispatcher, "ATM.PktArrived"),
            t3_arrived: Self::define_link(dispatcher, "T3.PktArrived"),
            ip_arrived: {
                let (ev, owner) =
                    dispatcher.define::<IpPacket, ()>("IP.PacketArrived", Identity::kernel("IP"));
                owner.set_primary(|_| ()).expect("fresh event");
                ev
            },
            udp_arrived: {
                let (ev, owner) =
                    dispatcher.define::<UdpPacket, ()>("UDP.PktArrived", Identity::kernel("UDP"));
                owner.set_primary(|_| ()).expect("fresh event");
                ev
            },
            tcp_arrived: {
                let (ev, owner) =
                    dispatcher.define::<TcpSegment, ()>("TCP.PktArrived", Identity::kernel("TCP"));
                owner.set_primary(|_| ()).expect("fresh event");
                ev
            },
            icmp_arrived: {
                let (ev, owner) = dispatcher
                    .define::<IcmpPacket, ()>("ICMP.PktArrived", Identity::kernel("ICMP"));
                owner.set_primary(|_| ()).expect("fresh event");
                ev
            },
            send_packet: {
                let (ev, owner) = dispatcher
                    .define::<SendRequest, SendVerdict>("SendPacket", Identity::kernel("IP"));
                owner
                    .set_primary(|_| SendVerdict::Transmit)
                    .expect("fresh event");
                // If any handler suppressed, the send is suppressed.
                owner
                    .set_reducer(|results| {
                        if results.contains(&SendVerdict::Suppressed) {
                            SendVerdict::Suppressed
                        } else {
                            SendVerdict::Transmit
                        }
                    })
                    .expect("fresh event");
                ev
            },
            ip_proto_key: KeyFn::new(|p: &IpPacket| u64::from(p.header.protocol)),
            udp_port_key: KeyFn::new(|p: &UdpPacket| u64::from(p.header.dst_port)),
            tcp_port_key: KeyFn::new(|s: &TcpSegment| u64::from(s.header.dst_port)),
            net_ready: {
                let (ev, owner) =
                    dispatcher.define::<ReadyBatch, ()>("Net.Ready", Identity::kernel("Net"));
                owner.set_primary(|_| ()).expect("fresh event");
                // Pollers registered with a `time_bound` get it applied to
                // their delivery handler (the PR-3 abort machinery).
                let bounds = poller_bounds.clone();
                owner
                    .set_auth(move |req| InstallDecision::Allow {
                        owner_guard: None,
                        constraints: Some(Constraints {
                            mode: HandlerMode::Synchronous,
                            time_bound: bounds.lock().get(req.installer.name()).copied(),
                        }),
                    })
                    .expect("fresh event");
                ev
            },
            ready_poller_key: KeyFn::new(|b: &ReadyBatch| b.poller),
        };

        let mut my_ips = HashMap::new();
        my_ips.insert(Medium::Ethernet, eth_ip);
        my_ips.insert(Medium::Atm, atm_ip);
        my_ips.insert(Medium::T3, t3_ip);
        addrs.register(eth_ip, Medium::Ethernet, host.ethernet.addr());
        addrs.register(atm_ip, Medium::Atm, host.atm.addr());
        addrs.register(t3_ip, Medium::T3, host.t3.addr());

        // The protocol thread: drained by NIC interrupts.
        let nics: Vec<(Medium, Nic)> = vec![
            (Medium::Ethernet, host.ethernet.clone()),
            (Medium::Atm, host.atm.clone()),
            (Medium::T3, host.t3.clone()),
        ];
        let ev2 = events.clone();
        let stats = Arc::new(AtomicNetStats::default());
        let stats2 = stats.clone();
        let obs: Arc<spin_core::hooks::HookSlot<ObsHook>> =
            Arc::new(spin_core::hooks::HookSlot::new());
        let obs2 = Arc::clone(&obs);
        let ready_hub = Arc::new(ReadyHub::new());
        let hub2 = ready_hub.clone();
        let proto_thread =
            exec.spawn_on(host.id, &format!("netin-{}", host.id.0), 12, move |ctx| {
                loop {
                    let mut any = false;
                    for (medium, nic) in &nics {
                        // Drain the ring into a burst, then deliver it as
                        // one batched raise: the link event's plan
                        // snapshot, obs hooks and fault draws amortize
                        // across the burst. `nic.receive()` charges its
                        // driver/PIO costs here, during collection, exactly
                        // as it did when each frame was raised singly.
                        let mut burst: Vec<LinkFrame> = Vec::new();
                        while let Some(frame) = nic.receive() {
                            any = true;
                            stats2.frames_in.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                            stats2
                                .bytes_in
                                .fetch_add(frame.payload.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                            if let Some(obs) = obs2.get() {
                                obs.counters
                                    .packets_received
                                    .fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                                obs.counters
                                    .bytes_received
                                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                                obs.trace(
                                    TraceKind::PacketRx,
                                    frame.payload.len() as u64,
                                    *medium as u64,
                                );
                            }
                            burst.push(LinkFrame {
                                medium: *medium,
                                bytes: frame.payload,
                            });
                        }
                        if !burst.is_empty() {
                            let ev = match medium {
                                Medium::Ethernet => &ev2.ether_arrived,
                                Medium::Atm => &ev2.atm_arrived,
                                Medium::T3 => &ev2.t3_arrived,
                            };
                            let _ = ev.raise_batch(burst);
                        }
                    }
                    if any {
                        // Aggregate everything the burst made ready into
                        // one `Net.Ready` raise per poller. An idle hub
                        // (no pollers, or nothing newly ready) raises
                        // nothing and charges nothing.
                        hub2.flush(&ev2.net_ready);
                    } else {
                        ctx.block();
                    }
                }
            });
        exec.set_daemon(proto_thread);
        // NIC interrupts unblock the protocol thread.
        for v in [vectors::ETHERNET, vectors::ATM, vectors::T3] {
            let e2 = exec.clone();
            host.irqs.register(v, move || e2.unblock(proto_thread));
        }

        let inner = Arc::new(NetInner {
            host: host.clone(),
            exec: exec.clone(),
            addrs: addrs.clone(),
            my_ips,
            events,
            topology: Topology::default(),
            ping_waiters: Mutex::new(HashMap::new()),
            ping_seq: AtomicU16::new(1),
            stats,
            obs,
            faults: Arc::new(spin_core::hooks::HookSlot::new()),
            proto_thread,
            ready_hub,
            next_poller: AtomicU64::new(1),
            poller_bounds,
        });
        let stack = NetStack { inner };
        stack.build_default_graph();
        stack
    }

    fn define_link(dispatcher: &Dispatcher, name: &str) -> Event<LinkFrame, ()> {
        let (ev, owner) = dispatcher.define::<LinkFrame, ()>(name, Identity::kernel("Link"));
        owner.set_primary(|_| ()).expect("fresh event");
        ev
    }

    /// Installs the default IP / UDP / TCP / ICMP handlers — the core
    /// edges of Figure 5.
    fn build_default_graph(&self) {
        let ev = self.inner.events.clone();
        let topo = &self.inner.topology;

        // Link → IP (Ethernet carries an Ethernet header; ATM and T3 are
        // raw IP).
        let ip_ev = ev.ip_arrived.clone();
        self.inner
            .events
            .ether_arrived
            .install(Identity::kernel("IP"), move |f: &LinkFrame| {
                if let Some((eh, ip_bytes)) = EtherHeader::decode(&f.bytes) {
                    if eh.ethertype == ETHERTYPE_IPV4 {
                        if let Some((header, payload)) = Ipv4Header::decode(&ip_bytes) {
                            let _ = ip_ev.raise(IpPacket {
                                header,
                                payload,
                                medium: f.medium,
                            });
                        }
                    }
                }
            })
            .expect("install IP on ether");
        topo.note("Ether.PktArrived", "IP");
        for (link_ev, name) in [(&ev.atm_arrived, "ATM"), (&ev.t3_arrived, "T3")] {
            let ip_ev = ev.ip_arrived.clone();
            link_ev
                .install(Identity::kernel("IP"), move |f: &LinkFrame| {
                    if let Some((header, payload)) = Ipv4Header::decode(&f.bytes) {
                        let _ = ip_ev.raise(IpPacket {
                            header,
                            payload,
                            medium: f.medium,
                        });
                    }
                })
                .expect("install IP on link");
            topo.note(&format!("{name}.PktArrived"), "IP");
        }

        // IP → transports, guarded by the protocol type field (§3.2's
        // worked example of guards). Keyed on the shared protocol-number
        // key so the three demux guards compile into a single table
        // lookup per raise; the virtual-time charges are the same as the
        // opaque closures they replace.
        let udp_ev = ev.udp_arrived.clone();
        ev.ip_arrived
            .install_keyed(
                Identity::kernel("UDP"),
                &ev.ip_proto_key,
                u64::from(proto::UDP),
                move |p: &IpPacket| {
                    if let Some((header, payload)) = UdpHeader::decode(&p.payload) {
                        let _ = udp_ev.raise(UdpPacket {
                            ip: p.header,
                            header,
                            payload,
                        });
                    }
                },
            )
            .expect("install UDP");
        topo.note("IP.PacketArrived", "UDP");

        let tcp_ev = ev.tcp_arrived.clone();
        ev.ip_arrived
            .install_keyed(
                Identity::kernel("TCP"),
                &ev.ip_proto_key,
                u64::from(proto::TCP),
                move |p: &IpPacket| {
                    if let Some((header, payload)) = TcpHeader::decode(&p.payload) {
                        let _ = tcp_ev.raise(TcpSegment {
                            ip: p.header,
                            header,
                            payload,
                        });
                    }
                },
            )
            .expect("install TCP");
        topo.note("IP.PacketArrived", "TCP");

        let icmp_ev = ev.icmp_arrived.clone();
        ev.ip_arrived
            .install_keyed(
                Identity::kernel("ICMP"),
                &ev.ip_proto_key,
                u64::from(proto::ICMP),
                move |p: &IpPacket| {
                    if let Some((header, payload)) = IcmpHeader::decode(&p.payload) {
                        let _ = icmp_ev.raise(IcmpPacket {
                            ip: p.header,
                            header,
                            payload,
                        });
                    }
                },
            )
            .expect("install ICMP");
        topo.note("IP.PacketArrived", "ICMP");

        // ICMP default implementation: echo requests are answered, echo
        // replies wake pingers.
        let me = self.clone();
        ev.icmp_arrived
            .install(Identity::kernel("ICMP"), move |p: &IcmpPacket| {
                match p.header.kind {
                    IcmpKind::EchoRequest => {
                        let reply = IcmpHeader {
                            kind: IcmpKind::EchoReply,
                            ident: p.header.ident,
                            seq: p.header.seq,
                        }
                        .encode(&p.payload);
                        let _ = me.send_ip(p.ip.src, proto::ICMP, reply);
                    }
                    IcmpKind::EchoReply => {
                        let waiter = me
                            .inner
                            .ping_waiters
                            .lock()
                            .remove(&(p.header.ident, p.header.seq));
                        if let Some(ch) = waiter {
                            ch.try_push(me.inner.exec.clock().now());
                        }
                    }
                }
            })
            .expect("install ICMP echo");
        topo.note("ICMP.PktArrived", "Ping");
    }

    /// Wires the observability subsystem: frames crossing this stack are
    /// accounted to the net domain. One-shot; charges zero virtual time.
    // uncharged: one-shot control-plane wiring.
    pub fn set_obs(&self, hook: ObsHook) {
        let _ = self.inner.obs.set(hook);
    }

    /// Wires the deterministic fault-injection plan's `net.stack` site.
    /// One-shot; absent hooks cost nothing on the transmit path.
    // uncharged: one-shot control-plane wiring.
    pub fn set_fault_hook(&self, hook: spin_fault::FaultHook) {
        let _ = self.inner.faults.set(hook);
    }

    /// The wired observability hook, if any (measurement harnesses park
    /// their histograms in its accounting registry).
    // uncharged: accessor.
    pub fn obs(&self) -> Option<&ObsHook> {
        self.inner.obs.get()
    }

    /// The event bundle (for extensions).
    // uncharged: accessor.
    pub fn events(&self) -> &NetEvents {
        &self.inner.events
    }

    /// The Figure 5 topology recorder.
    // uncharged: accessor.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The executor this stack runs on.
    // uncharged: accessor.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.inner.exec
    }

    /// This host's IP on a medium.
    // uncharged: accessor.
    pub fn ip_on(&self, medium: Medium) -> IpAddr {
        self.inner.my_ips[&medium]
    }

    /// The protocol thread (diagnostics).
    // uncharged: accessor.
    pub fn protocol_thread(&self) -> StrandId {
        self.inner.proto_thread
    }

    /// Sends a transport segment to `dst`, running the `SendPacket`
    /// extension point first.
    // charged: one `SendPacket` raise plus the transmit path's NIC charges.
    pub fn send_ip(
        &self,
        dst: IpAddr,
        protocol: u8,
        segment: impl Into<BufChain>,
    ) -> Result<(), NetError> {
        let segment = segment.into();
        let verdict = self
            .inner
            .events
            .send_packet
            .raise(SendRequest {
                dst,
                protocol,
                payload: segment.clone(),
            })
            .unwrap_or(SendVerdict::Transmit);
        if verdict == SendVerdict::Suppressed {
            return Ok(());
        }
        self.transmit(dst, protocol, segment)
    }

    /// Sends a burst of transport segments: one batched `SendPacket`
    /// raise (one plan snapshot for the whole burst, per-item charges
    /// unchanged), then one per-NIC wire handoff for the surviving
    /// frames. Per-frame fault draws, routing and stats are exactly those
    /// of sequential [`NetStack::send_ip`] calls; returns the first error.
    // charged: one batched `SendPacket` raise (per-item charges identical
    // to lone raises) plus per-frame NIC charges via `send_burst`.
    pub fn send_ip_burst(&self, items: Vec<(IpAddr, u8, BufChain)>) -> Result<(), NetError> {
        if items.is_empty() {
            return Ok(());
        }
        let reqs: Vec<SendRequest> = items
            .iter()
            .map(|(dst, protocol, payload)| SendRequest {
                dst: *dst,
                protocol: *protocol,
                payload: payload.clone(),
            })
            .collect();
        let verdicts = self.inner.events.send_packet.raise_batch(reqs);
        let mut per_nic: Vec<(Medium, Vec<(WireEndpoint, Bytes)>)> = Vec::new();
        let mut first_err = None;
        for ((dst, protocol, chain), verdict) in items.into_iter().zip(verdicts) {
            if verdict.unwrap_or(SendVerdict::Transmit) == SendVerdict::Suppressed {
                continue;
            }
            match self.prepare_frame(dst, protocol, chain) {
                Ok((medium, endpoint, frame)) => match per_nic.last_mut() {
                    Some((m, batch)) if *m == medium => batch.push((endpoint, frame)),
                    _ => per_nic.push((medium, vec![(endpoint, frame)])),
                },
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        for (medium, batch) in per_nic {
            if let Err(e) = self.nic_for(medium).send_burst(batch) {
                first_err = first_err.or(Some(NetError::TooLarge(format!("{e:?}"))));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Transmits without consulting `SendPacket` (used by handlers that
    /// have already claimed the packet, e.g. multicast fan-out).
    // charged: header assembly is uncharged chain surgery; the NIC charges
    // driver/PIO/DMA costs on handoff.
    pub fn transmit(
        &self,
        dst: IpAddr,
        protocol: u8,
        segment: impl Into<BufChain>,
    ) -> Result<(), NetError> {
        let (medium, endpoint, frame) = self.prepare_frame(dst, protocol, segment.into())?;
        self.nic_for(medium)
            .send(endpoint, frame)
            .map_err(|e| NetError::TooLarge(format!("{e:?}")))
    }

    /// Transmits, retrying on failure with capped exponential backoff on
    /// the virtual timers. Retries are counted in **one** place — the
    /// stack's [`NetStats::retries`] and, when observability is wired,
    /// the net domain's `retries` counter. The caller (typically a packet
    /// handler) is never blocked: retries run from timer callbacks, so
    /// runs stay deterministic.
    // charged: each attempt pays the full transmit charge; retries fire
    // from virtual timers so the caller pays nothing extra.
    pub fn transmit_with_retry(&self, dst: IpAddr, protocol: u8, segment: impl Into<BufChain>) {
        let segment = segment.into();
        if self.transmit(dst, protocol, segment.clone()).is_ok() {
            return;
        }
        self.schedule_retry(dst, protocol, segment, 1, RETRY_BASE);
    }

    // charged: each retry pays the full transmit charge at its timer
    // instant; the bookkeeping itself is a counter write.
    fn schedule_retry(
        &self,
        dst: IpAddr,
        protocol: u8,
        segment: BufChain,
        attempt: u32,
        delay: Nanos,
    ) {
        if attempt > RETRY_MAX {
            return; // budget exhausted: drop, as a datagram service may
        }
        self.inner.stats.retries.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(obs) = self.inner.obs.get() {
            obs.counters.retries.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        let at = self.inner.exec.clock().now() + delay;
        let me = self.clone();
        self.inner.exec.timers().schedule_at(at, move |_| {
            if me.transmit(dst, protocol, segment.clone()).is_err() {
                me.schedule_retry(
                    dst,
                    protocol,
                    segment,
                    attempt + 1,
                    (delay * 2).min(RETRY_CAP),
                );
            }
        });
    }

    /// Per-frame transmit bookkeeping: fault draw, route resolution,
    /// header-chain assembly and stats. The returned frame is the
    /// flattened chain — the single device-boundary copy.
    // charged: the flatten is the device-boundary copy; the NIC charges
    // driver/PIO/DMA costs when the frame is handed over.
    fn prepare_frame(
        &self,
        dst: IpAddr,
        protocol: u8,
        segment: BufChain,
    ) -> Result<(Medium, WireEndpoint, Bytes), NetError> {
        if let Some(h) = self.inner.faults.get() {
            match h.draw() {
                Some(spin_fault::Injection::Panic) => h.fire_panic(),
                Some(spin_fault::Injection::Delay(ns)) => self.inner.exec.clock().advance(ns),
                Some(spin_fault::Injection::Fail) => return Err(NetError::Faulted { dst }),
                None => {}
            }
        }
        let (medium, endpoint) = self
            .inner
            .addrs
            .resolve(dst)
            .ok_or(NetError::NoRoute { dst })?;
        let src = self.inner.my_ips[&medium];
        let mut chain = segment;
        chain.prepend(Ipv4Header::encode_header(
            src,
            dst,
            protocol,
            64,
            chain.len(),
        ));
        if medium == Medium::Ethernet {
            let nic = self.nic_for(medium);
            chain.prepend(
                EtherHeader {
                    src: nic.addr().0,
                    dst: endpoint.0,
                    ethertype: ETHERTYPE_IPV4,
                }
                .encode_header(),
            );
        }
        let frame = chain.to_bytes();
        let stats = &self.inner.stats;
        stats.frames_out.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(obs) = self.inner.obs.get() {
            obs.counters.packets_sent.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.counters
                .bytes_sent
                .fetch_add(frame.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.trace(TraceKind::PacketTx, frame.len() as u64, medium as u64);
        }
        Ok((medium, endpoint, frame))
    }

    fn nic_for(&self, medium: Medium) -> &Nic {
        match medium {
            Medium::Ethernet => &self.inner.host.ethernet,
            Medium::Atm => &self.inner.host.atm,
            Medium::T3 => &self.inner.host.t3,
        }
    }

    /// Sends a UDP datagram.
    pub fn udp_send(
        &self,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        payload: &[u8],
    ) -> Result<(), NetError> {
        let datagram = UdpHeader::encode(src_port, dst_port, payload);
        self.send_ip(dst, proto::UDP, datagram)
    }

    /// The stack-wide readiness scoreboard (see [`crate::poll`]).
    // uncharged: accessor.
    pub fn ready_hub(&self) -> &Arc<ReadyHub> {
        &self.inner.ready_hub
    }

    /// Allocates a fresh poller id (`Net.Ready` demux key).
    // uncharged: control-plane id allocation.
    pub fn alloc_poller_id(&self) -> u64 {
        self.inner.next_poller.fetch_add(1, Ordering::Relaxed) // ordering: Relaxed — allocates a unique id; the poller carrying it is published separately.
    }

    /// Grants a `time_bound` to the named poller's `Net.Ready` handler;
    /// the event's authorizer consults this table at install time.
    // uncharged: control-plane policy registration.
    pub fn set_poller_bound(&self, label: &str, bound: Nanos) {
        self.inner
            .poller_bounds
            .lock()
            .insert(label.to_string(), bound);
    }

    /// Pings `dst` with `payload_len` bytes; returns the round-trip time.
    pub fn ping(&self, ctx: &StrandCtx, dst: IpAddr, payload_len: usize) -> Option<Nanos> {
        let ident = self.inner.host.id.0 as u16;
        let seq = self.inner.ping_seq.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let ch = KChannel::new(self.inner.exec.clone(), 1);
        self.inner
            .ping_waiters
            .lock()
            .insert((ident, seq), ch.clone());
        let t0 = self.inner.exec.clock().now();
        let msg = IcmpHeader {
            kind: IcmpKind::EchoRequest,
            ident,
            seq,
        }
        .encode(&vec![0u8; payload_len]);
        self.send_ip(dst, proto::ICMP, msg).ok()?;
        let arrived = ch.recv(ctx)?;
        Some(arrived - t0)
    }

    /// Stack counters.
    // uncharged: diagnostics snapshot.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.snapshot()
    }
}

/// Errors from the network stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    NoRoute {
        dst: IpAddr,
    },
    TooLarge(String),
    /// The transmission was dropped by the fault-injection plan
    /// (degraded-mode testing; never occurs with injection disabled).
    Faulted {
        dst: IpAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::UdpSocket;
    use crate::testrig::TwoHosts;

    #[test]
    fn udp_datagram_crosses_the_ethernet() {
        let rig = TwoHosts::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        let _sock = UdpSocket::bind_with(&rig.b, 7777, "sink", move |p| {
            g2.lock().push((p.header.src_port, p.payload.to_vec()));
        })
        .unwrap();
        let a = rig.a.clone();
        let dst = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            a.udp_send(1234, dst, 7777, b"hello spin").unwrap();
        });
        rig.exec.run_until_idle();
        let g = got.lock();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], (1234, b"hello spin".to_vec()));
    }

    #[test]
    fn udp_port_guards_separate_endpoints() {
        let rig = TwoHosts::new();
        let hits = Arc::new(Mutex::new((0u32, 0u32)));
        let h1 = hits.clone();
        let _s1 = UdpSocket::bind_with(&rig.b, 1, "one", move |_| h1.lock().0 += 1).unwrap();
        let h2 = hits.clone();
        let _s2 = UdpSocket::bind_with(&rig.b, 2, "two", move |_| h2.lock().1 += 1).unwrap();
        let a = rig.a.clone();
        let dst = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            a.udp_send(9, dst, 1, b"x").unwrap();
            a.udp_send(9, dst, 1, b"x").unwrap();
            a.udp_send(9, dst, 2, b"x").unwrap();
        });
        rig.exec.run_until_idle();
        assert_eq!(*hits.lock(), (2, 1));
    }

    #[test]
    fn ping_round_trip_over_both_media() {
        let rig = TwoHosts::new();
        let a = rig.a.clone();
        let eth_dst = rig.b.ip_on(Medium::Ethernet);
        let atm_dst = rig.b.ip_on(Medium::Atm);
        let results = Arc::new(Mutex::new(Vec::new()));
        let r2 = results.clone();
        rig.exec.spawn("pinger", move |ctx| {
            let eth = a.ping(ctx, eth_dst, 16).expect("ethernet ping");
            let atm = a.ping(ctx, atm_dst, 16).expect("atm ping");
            r2.lock().push((eth, atm));
        });
        rig.exec.run_until_idle();
        let r = results.lock();
        let (eth, atm) = r[0];
        assert!(eth > 0 && atm > 0);
        assert!(atm < eth, "ATM RTT {atm} should beat Ethernet {eth}");
    }

    #[test]
    fn send_packet_handlers_can_suppress() {
        let rig = TwoHosts::new();
        let seen = Arc::new(Mutex::new(0u32));
        let s2 = seen.clone();
        let _sock = UdpSocket::bind_with(&rig.b, 5, "sink", move |_| *s2.lock() += 1).unwrap();
        // A firewall extension suppressing everything to port 5.
        rig.a
            .events()
            .send_packet
            .install(Identity::extension("firewall"), move |req: &SendRequest| {
                if req.protocol == proto::UDP {
                    let bytes = req.payload.to_bytes();
                    if let Some((h, _)) = UdpHeader::decode(&bytes) {
                        if h.dst_port == 5 {
                            return SendVerdict::Suppressed;
                        }
                    }
                }
                SendVerdict::Transmit
            })
            .unwrap();
        let a = rig.a.clone();
        let dst = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            a.udp_send(9, dst, 5, b"blocked").unwrap();
            a.udp_send(9, dst, 6, b"allowed").unwrap();
        });
        rig.exec.run_until_idle();
        assert_eq!(*seen.lock(), 0, "port-5 traffic must be suppressed");
        assert!(rig.b.stats().frames_in >= 1, "port-6 traffic still flows");
    }

    #[test]
    fn topology_records_the_figure_5_graph() {
        let rig = TwoHosts::new();
        let rendered = rig.a.topology().render();
        for needle in [
            "Ether.PktArrived",
            "IP.PacketArrived",
            "-> UDP",
            "-> TCP",
            "-> ICMP",
        ] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
    }
}
