//! The network-based file system (§5.1 lists one among the `core`
//! services, next to the disk-based file system).
//!
//! An NFS-flavoured design over the in-kernel [`Rpc`] package: the server
//! extension exports `lookup` / `read` / `write` / `create` / `mkdir` /
//! `list` / `unlink` procedures backed by a local [`FileSystem`]; the
//! client extension offers the same blocking file API against a remote
//! host. Both halves run entirely inside their kernels, as the paper's
//! services do.

use crate::pkt::IpAddr;
use crate::rpc::{Rpc, RpcError};
use bytes::{BufMut, Bytes, BytesMut};
use spin_check::sync::Mutex;
use spin_fs::{FileSystem, FsError};
use spin_sched::{Executor, KChannel, StrandCtx};
use std::sync::Arc;

/// Errors seen by network file system clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFsError {
    /// The remote file system reported an error.
    Remote(String),
    /// The transport failed.
    Rpc(RpcError),
    /// The reply was malformed.
    Protocol,
}

fn encode_path_and(path: &str, rest: &[u8]) -> Vec<u8> {
    let mut b = BytesMut::with_capacity(2 + path.len() + rest.len());
    b.put_u16(path.len() as u16);
    b.extend_from_slice(path.as_bytes());
    b.extend_from_slice(rest);
    b.to_vec()
}

fn decode_path(args: &[u8]) -> Option<(String, &[u8])> {
    if args.len() < 2 {
        return None;
    }
    let n = u16::from_be_bytes(args[0..2].try_into().ok()?) as usize;
    if args.len() < 2 + n {
        return None;
    }
    let path = String::from_utf8_lossy(&args[2..2 + n]).into_owned();
    Some((path, &args[2 + n..]))
}

fn ok_reply(body: &[u8]) -> Vec<u8> {
    let mut v = vec![0u8];
    v.extend_from_slice(body);
    v
}

fn err_reply(e: &FsError) -> Vec<u8> {
    let mut v = vec![1u8];
    v.extend_from_slice(format!("{e:?}").as_bytes());
    v
}

/// The server half: exports a local file system over RPC.
pub struct NetFsServer {
    served: Arc<Mutex<u64>>,
}

impl NetFsServer {
    /// Exports `fs` through `rpc`. File data RPCs run on the protocol
    /// thread, so reads are served from a worker strand pool to keep the
    /// thread from blocking on disk: each request is bounced to a worker
    /// through a channel.
    pub fn export(rpc: &Rpc, fs: FileSystem, exec: &Arc<Executor>) -> Arc<NetFsServer> {
        let served = Arc::new(Mutex::new(0u64));

        // Worker: performs blocking file-system work.
        type Job = Box<dyn FnOnce(&StrandCtx) + Send>;
        let jobs: Arc<KChannel<Job>> = KChannel::new(exec.clone(), 64);
        let j2 = jobs.clone();
        let worker = exec.spawn("netfs-worker", move |ctx| {
            while let Some(job) = j2.recv(ctx) {
                job(ctx);
            }
        });
        exec.set_daemon(worker);

        // Non-blocking metadata procedures answer inline; data procedures
        // hop to the worker and reply through a oneshot channel. Because
        // the RPC layer expects a synchronous result, data procedures are
        // implemented with an in-kernel continuation: the RPC handler
        // blocks *its own* reply by polling a cell the worker fills. To
        // keep the protocol thread non-blocking we instead serve data
        // directly: the buffer cache only blocks on a miss, and the
        // server's cache is warm for benchmark workloads; a cold read
        // falls back to the worker path below.
        macro_rules! proc {
            ($name:expr, $body:expr) => {
                rpc.register($name, $body);
            };
        }

        let fs2 = fs.clone();
        proc!("netfs.create", move |args: &[u8]| {
            match decode_path(args) {
                Some((path, _)) => match fs2.create(&path) {
                    Ok(()) => ok_reply(&[]),
                    Err(e) => err_reply(&e),
                },
                None => err_reply(&FsError::NotFound { path: "?".into() }),
            }
        });
        let fs2 = fs.clone();
        proc!("netfs.mkdir", move |args: &[u8]| {
            match decode_path(args) {
                Some((path, _)) => match fs2.mkdir(&path) {
                    Ok(()) => ok_reply(&[]),
                    Err(e) => err_reply(&e),
                },
                None => err_reply(&FsError::NotFound { path: "?".into() }),
            }
        });
        let fs2 = fs.clone();
        proc!("netfs.size", move |args: &[u8]| {
            match decode_path(args) {
                Some((path, _)) => match fs2.size_of(&path) {
                    Ok(n) => ok_reply(&n.to_be_bytes()),
                    Err(e) => err_reply(&e),
                },
                None => err_reply(&FsError::NotFound { path: "?".into() }),
            }
        });
        let fs2 = fs.clone();
        proc!("netfs.list", move |args: &[u8]| {
            match decode_path(args) {
                Some((path, _)) => match fs2.list(&path) {
                    Ok(names) => ok_reply(names.join("\n").as_bytes()),
                    Err(e) => err_reply(&e),
                },
                None => err_reply(&FsError::NotFound { path: "?".into() }),
            }
        });
        let fs2 = fs.clone();
        proc!("netfs.unlink", move |args: &[u8]| {
            match decode_path(args) {
                Some((path, _)) => match fs2.unlink(&path) {
                    Ok(()) => ok_reply(&[]),
                    Err(e) => err_reply(&e),
                },
                None => err_reply(&FsError::NotFound { path: "?".into() }),
            }
        });

        // Data procedures: executed on the worker strand, so the protocol
        // thread never blocks on the disk. The handler answers EAGAIN
        // until the worker deposits the completed reply in the pending
        // table; the client's retry then collects it.
        use std::collections::HashMap;
        enum ReadState {
            InFlight,
            Done(Vec<u8>),
        }
        let pending: Arc<Mutex<HashMap<String, ReadState>>> = Arc::new(Mutex::new(HashMap::new()));
        let fs2 = fs.clone();
        let jobs2 = jobs.clone();
        let served2 = served.clone();
        proc!("netfs.read", move |args: &[u8]| {
            *served2.lock() += 1;
            let (path, _) = match decode_path(args) {
                Some(p) => p,
                None => return err_reply(&FsError::NotFound { path: "?".into() }),
            };
            {
                let mut pend = pending.lock();
                match pend.get(&path) {
                    Some(ReadState::Done(_)) => {
                        if let Some(ReadState::Done(reply)) = pend.remove(&path) {
                            return reply;
                        }
                        unreachable!("checked Done above");
                    }
                    Some(ReadState::InFlight) => return vec![2u8], // EAGAIN
                    None => {
                        pend.insert(path.clone(), ReadState::InFlight);
                    }
                }
            }
            let (fs3, pend2) = (fs2.clone(), pending.clone());
            jobs2.try_push(Box::new(move |ctx| {
                let reply = match fs3.read_file(ctx, &path) {
                    Ok(data) => ok_reply(&data),
                    Err(e) => err_reply(&e),
                };
                pend2.lock().insert(path, ReadState::Done(reply));
            }));
            vec![2u8] // EAGAIN: the worker is reading
        });
        let fs2 = fs.clone();
        let jobs2 = jobs.clone();
        proc!("netfs.write", move |args: &[u8]| {
            let (path, data) = match decode_path(args) {
                Some(p) => p,
                None => return err_reply(&FsError::NotFound { path: "?".into() }),
            };
            let data = data.to_vec();
            let fs3 = fs2.clone();
            let path2 = path.clone();
            jobs2.try_push(Box::new(move |ctx| {
                let _ = fs3.write_file(ctx, &path2, &data);
            }));
            ok_reply(&[]) // write-behind: acknowledged once queued
        });

        Arc::new(NetFsServer { served })
    }

    /// Data requests served (including EAGAIN rounds).
    pub fn requests(&self) -> u64 {
        *self.served.lock()
    }
}

/// The client half: a blocking remote file API.
pub struct NetFsClient {
    rpc: Rpc,
    server: IpAddr,
}

impl NetFsClient {
    /// Mounts the file system exported by `server`.
    pub fn mount(rpc: &Rpc, server: IpAddr) -> NetFsClient {
        NetFsClient {
            rpc: rpc.clone(),
            server,
        }
    }

    fn call(&self, ctx: &StrandCtx, proc_name: &str, args: &[u8]) -> Result<Bytes, NetFsError> {
        // Retry through EAGAIN while the server's worker completes disk
        // I/O (bounded to keep errors surfacing).
        for _ in 0..32 {
            let reply = self
                .rpc
                .call(ctx, self.server, proc_name, args)
                .map_err(NetFsError::Rpc)?;
            match reply.first() {
                Some(0) => return Ok(Bytes::from(reply[1..].to_vec())),
                Some(1) => {
                    return Err(NetFsError::Remote(
                        String::from_utf8_lossy(&reply[1..]).into_owned(),
                    ))
                }
                Some(2) => {
                    ctx.sleep(2_000_000); // EAGAIN: disk still busy
                    continue;
                }
                _ => return Err(NetFsError::Protocol),
            }
        }
        Err(NetFsError::Protocol)
    }

    /// Creates a remote file.
    pub fn create(&self, ctx: &StrandCtx, path: &str) -> Result<(), NetFsError> {
        self.call(ctx, "netfs.create", &encode_path_and(path, &[]))
            .map(|_| ())
    }

    /// Creates a remote directory.
    pub fn mkdir(&self, ctx: &StrandCtx, path: &str) -> Result<(), NetFsError> {
        self.call(ctx, "netfs.mkdir", &encode_path_and(path, &[]))
            .map(|_| ())
    }

    /// Writes a remote file (write-behind on the server).
    pub fn write_file(&self, ctx: &StrandCtx, path: &str, data: &[u8]) -> Result<(), NetFsError> {
        self.call(ctx, "netfs.write", &encode_path_and(path, data))
            .map(|_| ())
    }

    /// Reads a whole remote file.
    pub fn read_file(&self, ctx: &StrandCtx, path: &str) -> Result<Vec<u8>, NetFsError> {
        self.call(ctx, "netfs.read", &encode_path_and(path, &[]))
            .map(|b| b.to_vec())
    }

    /// Remote file size.
    pub fn size_of(&self, ctx: &StrandCtx, path: &str) -> Result<u64, NetFsError> {
        let b = self.call(ctx, "netfs.size", &encode_path_and(path, &[]))?;
        b[..]
            .try_into()
            .map(u64::from_be_bytes)
            .map_err(|_| NetFsError::Protocol)
    }

    /// Remote directory listing.
    pub fn list(&self, ctx: &StrandCtx, path: &str) -> Result<Vec<String>, NetFsError> {
        let b = self.call(ctx, "netfs.list", &encode_path_and(path, &[]))?;
        let s = String::from_utf8_lossy(&b);
        Ok(if s.is_empty() {
            Vec::new()
        } else {
            s.split('\n').map(String::from).collect()
        })
    }

    /// Removes a remote file.
    pub fn unlink(&self, ctx: &StrandCtx, path: &str) -> Result<(), NetFsError> {
        self.call(ctx, "netfs.unlink", &encode_path_and(path, &[]))
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;
    use spin_fs::{BufferCache, LruPolicy};

    fn rig() -> (TwoHosts, NetFsClient, Arc<NetFsServer>) {
        let rig = TwoHosts::new();
        let rpc_a = Rpc::install(&rig.a).unwrap();
        let rpc_b = Rpc::install(&rig.b).unwrap();
        let cache = BufferCache::new(
            rig.host_b.disk.clone(),
            rig.exec.clone(),
            128,
            Box::new(LruPolicy::default()),
        );
        let fs = FileSystem::format(cache, 0, 400);
        let server = NetFsServer::export(&rpc_b, fs, &rig.exec);
        let client = NetFsClient::mount(&rpc_a, rig.b.ip_on(Medium::Ethernet));
        (rig, client, server)
    }

    #[test]
    fn remote_create_write_read_round_trip() {
        let (rig, client, _server) = rig();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        rig.exec.spawn("nfs-user", move |ctx| {
            client.mkdir(ctx, "/export").unwrap();
            client.create(ctx, "/export/data").unwrap();
            client
                .write_file(ctx, "/export/data", b"over the wire")
                .unwrap();
            // Write-behind: give the server's worker a beat.
            ctx.sleep(50_000_000);
            *g2.lock() = client.read_file(ctx, "/export/data").unwrap();
            assert_eq!(client.size_of(ctx, "/export/data").unwrap(), 13);
            assert_eq!(client.list(ctx, "/export").unwrap(), vec!["data"]);
        });
        rig.exec.run_until_idle();
        assert_eq!(&got.lock()[..], b"over the wire");
    }

    #[test]
    fn remote_errors_are_reported() {
        let (rig, client, _server) = rig();
        let err = Arc::new(Mutex::new(None));
        let e2 = err.clone();
        rig.exec.spawn("nfs-user", move |ctx| {
            *e2.lock() = Some(client.read_file(ctx, "/no/such/file").unwrap_err());
        });
        rig.exec.run_until_idle();
        assert!(matches!(err.lock().clone(), Some(NetFsError::Remote(_))));
    }

    #[test]
    fn unlink_removes_remotely() {
        let (rig, client, _server) = rig();
        rig.exec.spawn("nfs-user", move |ctx| {
            client.create(ctx, "/t").unwrap();
            client.write_file(ctx, "/t", b"x").unwrap();
            ctx.sleep(50_000_000);
            client.unlink(ctx, "/t").unwrap();
            assert!(client.size_of(ctx, "/t").is_err());
        });
        assert_eq!(
            rig.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }
}
