//! Readiness: the epoll-style aggregation layer over the protocol graph.
//!
//! The webscale redesign replaces one-blocking-strand-per-connection with
//! a single server strand parked on a [`NetPoller`]. Sources (sockets,
//! listeners, connections) carry a [`Registration`]; when the packet path
//! makes one readable it *notes* the fact in the stack's [`ReadyHub`] —
//! an uncharged, deduplicating scoreboard. After each inbound burst the
//! protocol thread *flushes* the hub: one `Net.Ready` raise per poller
//! (batched via `raise_batch`), demultiplexed by a keyed `GuardSpec` on
//! the poller id, exactly the compiled-dispatch shape of PR-6.
//!
//! Charging story: readiness notes piggyback on the per-packet raises
//! that already paid for the packet's trip up the graph — the note itself
//! is a scoreboard write, not an event. The flush charges one `Net.Ready`
//! raise per poller with pending tokens, amortized across every token
//! that became ready in the burst. An empty hub flushes for free, so a
//! stack with no pollers charges nothing — that is what keeps the
//! pre-webscale goldens byte-identical with this module compiled in.

use crate::stack::NetStack;
use spin_check::sync::Mutex;
use spin_core::{Event, Identity};
use spin_sal::Nanos;
use spin_sched::{Executor, StrandCtx, StrandId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Interest/readiness bit masks.
pub mod interest {
    /// Data (or a datagram) is available to read.
    pub const READABLE: u8 = 0b001;
    /// A connection is waiting to be accepted.
    pub const ACCEPT: u8 = 0b010;
    /// The peer closed (or the source otherwise reached end-of-stream).
    pub const CLOSED: u8 = 0b100;
}

/// An application-chosen identifier for one registered source.
pub type Token = u64;

/// One poller's worth of readiness, raised as a single `Net.Ready` event.
#[derive(Clone)]
pub struct ReadyBatch {
    /// The destination poller id (the keyed demux field).
    pub poller: u64,
    /// `(token, readiness mask)` pairs, in ascending token order.
    pub tokens: Vec<(Token, u8)>,
}

/// The stack-wide readiness scoreboard: notes accumulate (deduplicated,
/// masks OR-merged) between bursts and are flushed as batched `Net.Ready`
/// raises by the protocol thread.
#[derive(Default)]
pub struct ReadyHub {
    /// `(poller, token) -> mask`, BTree-ordered so a flush groups each
    /// poller's tokens contiguously and deterministically.
    pending: Mutex<BTreeMap<(u64, Token), u8>>,
}

impl ReadyHub {
    /// An empty hub.
    // uncharged: constructor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records "`token` on `poller` became ready for `mask`". Merges into
    /// any pending note for the same source.
    // uncharged: scoreboard write; the packet that caused it already paid
    // its per-hop charges, and the flush charges the aggregated raise.
    pub fn note(&self, poller: u64, token: Token, mask: u8) {
        if mask == 0 {
            return;
        }
        *self.pending.lock().entry((poller, token)).or_insert(0) |= mask;
    }

    /// Raises everything pending as one [`ReadyBatch`] per poller through
    /// `ev` (`Net.Ready`). An empty hub raises nothing and charges
    /// nothing.
    // charged: each non-empty poller batch is one `Net.Ready` raise
    // (batched), paying the dispatcher's standard per-raise costs.
    pub fn flush(&self, ev: &Event<ReadyBatch, ()>) {
        let pending = std::mem::take(&mut *self.pending.lock());
        if pending.is_empty() {
            return;
        }
        let mut batches: Vec<ReadyBatch> = Vec::new();
        for ((poller, token), mask) in pending {
            match batches.last_mut() {
                Some(b) if b.poller == poller => b.tokens.push((token, mask)),
                _ => batches.push(ReadyBatch {
                    poller,
                    tokens: vec![(token, mask)],
                }),
            }
        }
        let _ = ev.raise_batch(batches);
    }

    /// Whether any notes are pending.
    // uncharged: diagnostics probe.
    pub fn is_empty(&self) -> bool {
        self.pending.lock().is_empty()
    }
}

/// A source's handle back to its poller: the packet path calls
/// [`Registration::note`] when the source becomes ready.
pub struct Registration {
    hub: Arc<ReadyHub>,
    poller: u64,
    token: Token,
    mask: u8,
}

impl Registration {
    /// Notes readiness, filtered to the registered interest (`CLOSED`
    /// always passes — end-of-stream must never be silently dropped).
    // uncharged: scoreboard write (see `ReadyHub::note`).
    pub fn note(&self, what: u8) {
        let m = what & (self.mask | interest::CLOSED);
        if m != 0 {
            self.hub.note(self.poller, self.token, m);
        }
    }
}

/// A source that can be registered with a [`NetPoller`].
pub trait Pollable {
    /// Attaches `r` to this source and returns its *current* level mask,
    /// so readiness that predates the registration is not lost.
    fn register(&self, r: Registration) -> u8;
}

struct PollInner {
    /// Accumulated readiness, drained by `wait`/`try_wait` in token order.
    ready: BTreeMap<Token, u8>,
    /// The strand parked in `wait`, if any.
    waiter: Option<StrandId>,
}

/// An epoll-style poller: sources are added with a token and an interest
/// mask; `wait` blocks until at least one is ready and drains the set.
pub struct NetPoller {
    id: u64,
    exec: Arc<Executor>,
    hub: Arc<ReadyHub>,
    inner: Mutex<PollInner>,
}

impl NetPoller {
    /// Creates a poller on `stack`, installing its keyed `Net.Ready`
    /// demux handler.
    // uncharged: poller setup is control-plane; delivery charges per raise.
    pub fn new(stack: &NetStack) -> Arc<NetPoller> {
        Self::with_time_bound(stack, None)
    }

    /// [`NetPoller::new`] with a `time_bound` constraint on the delivery
    /// handler: a delivery burning more virtual time than `bound` is
    /// aborted by the dispatcher (the PR-3 containment machinery).
    // uncharged: poller setup is control-plane; delivery charges per raise.
    pub fn with_time_bound(stack: &NetStack, bound: Option<Nanos>) -> Arc<NetPoller> {
        let id = stack.alloc_poller_id();
        let label = format!("poller-{id}");
        if let Some(b) = bound {
            stack.set_poller_bound(&label, b);
        }
        let poller = Arc::new(NetPoller {
            id,
            exec: stack.executor().clone(),
            hub: stack.ready_hub().clone(),
            inner: Mutex::new(PollInner {
                ready: BTreeMap::new(),
                waiter: None,
            }),
        });
        let me = poller.clone();
        stack
            .events()
            .net_ready
            .install_keyed(
                Identity::extension(&label),
                &stack.events().ready_poller_key,
                id,
                move |b: &ReadyBatch| me.deliver(b),
            )
            .expect("install poller demux");
        poller
    }

    /// This poller's id (the `Net.Ready` demux key).
    // uncharged: accessor.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers `src` under `token` with the given interest mask. Any
    /// readiness already present on the source is folded in immediately.
    // uncharged: registration is control-plane.
    pub fn add(&self, src: &dyn Pollable, token: Token, interest_mask: u8) {
        let reg = Registration {
            hub: self.hub.clone(),
            poller: self.id,
            token,
            mask: interest_mask,
        };
        let level = src.register(reg) & (interest_mask | interest::CLOSED);
        if level != 0 {
            *self.inner.lock().ready.entry(token).or_insert(0) |= level;
        }
    }

    /// Delivery from the keyed `Net.Ready` handler (protocol-thread
    /// context; must not block).
    // charged: runs inside the `Net.Ready` raise, which pays the
    // dispatcher's per-raise costs for the whole batch.
    fn deliver(&self, batch: &ReadyBatch) {
        let waiter = {
            let mut inner = self.inner.lock();
            for &(token, mask) in &batch.tokens {
                *inner.ready.entry(token).or_insert(0) |= mask;
            }
            inner.waiter.take()
        };
        if let Some(w) = waiter {
            self.exec.unblock(w);
        }
    }

    /// Posts local readiness (timer ticks, user wakeups) directly into
    /// this poller, bypassing the hub (no raise, no charge).
    // uncharged: local scoreboard write; no event is raised.
    pub fn post(&self, token: Token, mask: u8) {
        let waiter = {
            let mut inner = self.inner.lock();
            *inner.ready.entry(token).or_insert(0) |= mask;
            inner.waiter.take()
        };
        if let Some(w) = waiter {
            self.exec.unblock(w);
        }
    }

    /// Blocks until at least one source is ready, then drains and returns
    /// the ready set in ascending token order.
    // uncharged: blocking costs virtual time on the scheduler's account;
    // the readiness delivery itself was charged at the raise.
    pub fn wait(&self, ctx: &StrandCtx) -> Vec<(Token, u8)> {
        loop {
            {
                let mut inner = self.inner.lock();
                if !inner.ready.is_empty() {
                    return std::mem::take(&mut inner.ready).into_iter().collect();
                }
                inner.waiter = Some(ctx.id());
            }
            ctx.block();
        }
    }

    /// Drains the ready set without blocking (possibly empty).
    // uncharged: scoreboard read.
    pub fn try_wait(&self) -> Vec<(Token, u8)> {
        let mut inner = self.inner.lock();
        std::mem::take(&mut inner.ready).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_merges_and_groups_by_poller() {
        let hub = ReadyHub::new();
        hub.note(2, 10, interest::READABLE);
        hub.note(1, 5, interest::READABLE);
        hub.note(2, 10, interest::CLOSED); // merges with the first note
        hub.note(2, 3, interest::ACCEPT);
        let pending = std::mem::take(&mut *hub.pending.lock());
        let flat: Vec<((u64, Token), u8)> = pending.into_iter().collect();
        assert_eq!(
            flat,
            vec![
                ((1, 5), interest::READABLE),
                ((2, 3), interest::ACCEPT),
                ((2, 10), interest::READABLE | interest::CLOSED),
            ]
        );
    }

    #[test]
    fn registration_filters_by_interest_but_closed_passes() {
        let hub = Arc::new(ReadyHub::new());
        let reg = Registration {
            hub: hub.clone(),
            poller: 1,
            token: 7,
            mask: interest::ACCEPT,
        };
        reg.note(interest::READABLE); // not interested: dropped
        assert!(hub.is_empty());
        reg.note(interest::CLOSED); // always delivered
        assert!(!hub.is_empty());
    }
}
