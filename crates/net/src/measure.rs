//! Measurement harnesses for Table 5: UDP/IP round-trip latency and
//! reliable receive bandwidth between two hosts.
//!
//! "We measure latency using small packets (16 bytes), and bandwidth using
//! large packets (1500 for Ethernet and 8132 for ATM)" (§5.3). Bandwidth
//! uses a simple sliding-window reliable layer over UDP, as the paper's
//! "reliable bandwidth" implies.

use crate::stack::{Medium, NetStack};
use spin_obs::Histogram;
use spin_sal::Nanos;
use spin_sched::Executor;
use std::sync::Arc;

/// Echo port used by the latency harness.
const ECHO_PORT: u16 = 7;
/// Data/ack ports used by the bandwidth harness.
const DATA_PORT: u16 = 5001;
const ACK_PORT: u16 = 5002;

/// The histogram backing a harness: parked in the stack's obs accounting
/// registry when the rig is wired (so `/metrics` exposes it), standalone
/// otherwise. Either way the samples are exact (count/sum), so means
/// derived from it are byte-identical to the old scalar bookkeeping.
fn harness_histogram(stack: &NetStack, name: &str) -> Arc<Histogram> {
    match stack.obs() {
        Some(hook) => hook.obs().accounting().histogram(name),
        None => Arc::new(Histogram::new()),
    }
}

/// Measures the average UDP round-trip time for `payload` bytes over
/// `medium`, from the stack `client` to `server`, with `rounds` trips.
pub fn udp_round_trip(
    exec: &Arc<Executor>,
    client: &NetStack,
    server: &NetStack,
    medium: Medium,
    payload: usize,
    rounds: u32,
) -> Nanos {
    // Echo service on the server.
    let server2 = server.clone();
    crate::socket::UdpSocket::bind_with(server, ECHO_PORT, "echo", move |p| {
        let _ = server2.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");

    let reply_ch =
        crate::socket::UdpSocket::bind(client, 6000, "rtt-client", 4).expect("bind client");
    let dst = server.ip_on(medium);
    let clock = exec.clock().clone();
    let client2 = client.clone();
    // Per-round samples land in a histogram; consecutive round times
    // telescope, so `sum / count` equals the old whole-run average.
    let hist = harness_histogram(client, &format!("net.rtt_ns.{medium:?}"));
    // The registry histogram is cumulative across runs; this call's mean
    // comes from the delta.
    let (count0, sum0) = (hist.count(), hist.sum());
    let h2 = hist.clone();
    exec.spawn("rtt-driver", move |ctx| {
        let data = vec![0u8; payload];
        // Warm-up round.
        client2.udp_send(6000, dst, ECHO_PORT, &data).unwrap();
        reply_ch.recv(ctx);
        let mut prev = clock.now();
        for _ in 0..rounds {
            client2.udp_send(6000, dst, ECHO_PORT, &data).unwrap();
            reply_ch.recv(ctx);
            let now = clock.now();
            h2.record(now - prev);
            prev = now;
        }
    });
    exec.run_until_idle();
    let n = hist.count() - count0;
    (hist.sum() - sum0).checked_div(n).unwrap_or(0)
}

/// Measures reliable receive bandwidth in Mb/s: `packets` packets of
/// `packet_size` payload bytes, sliding window of `window`.
pub fn reliable_bandwidth(
    exec: &Arc<Executor>,
    sender: &NetStack,
    receiver: &NetStack,
    medium: Medium,
    packet_size: usize,
    packets: u32,
    window: u32,
) -> f64 {
    let src_ip = sender.ip_on(medium);
    // Receiver: ack every packet by sequence number; delivered payload
    // sizes land in a histogram (count × sum replace the old byte tally).
    let recv2 = receiver.clone();
    let received = harness_histogram(receiver, &format!("net.bw_recv_bytes.{medium:?}"));
    let rc2 = received.clone();
    crate::socket::UdpSocket::bind_with(receiver, DATA_PORT, "sink", move |p| {
        rc2.record(p.payload.len() as u64);
        let seq = &p.payload[..4];
        let _ = recv2.udp_send(DATA_PORT, src_ip, ACK_PORT, seq);
    })
    .expect("bind sink");

    // Sender: window-limited blast.
    let acks = crate::socket::UdpSocket::bind(sender, ACK_PORT, "acks", 1024).expect("bind acks");
    let dst = receiver.ip_on(medium);
    let clock = exec.clock().clone();
    let sender2 = sender.clone();
    let elapsed = harness_histogram(sender, &format!("net.bw_elapsed_ns.{medium:?}"));
    let sum0 = elapsed.sum();
    let e2 = elapsed.clone();
    exec.spawn("bw-driver", move |ctx| {
        let t0 = clock.now();
        let mut inflight = 0u32;
        let mut acked = 0u32;
        for seq in 0..packets {
            while inflight >= window {
                acks.recv(ctx);
                acked += 1;
                inflight -= 1;
            }
            let mut data = vec![0u8; packet_size];
            data[..4].copy_from_slice(&seq.to_be_bytes());
            sender2.udp_send(DATA_PORT, dst, DATA_PORT, &data).unwrap();
            inflight += 1;
        }
        while acked < packets {
            acks.recv(ctx);
            acked += 1;
        }
        e2.record(clock.now() - t0);
    });
    exec.run_until_idle();
    let ns = elapsed.sum() - sum0;
    let bits = packets as f64 * packet_size as f64 * 8.0;
    bits * 1e9 / ns as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrig::TwoHosts;

    #[test]
    fn ethernet_latency_is_in_the_table_5_band() {
        let rig = TwoHosts::new();
        let rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
        let us = rtt as f64 / 1000.0;
        // Paper: SPIN 565 µs on Ethernet (unoptimized drivers).
        assert!((380.0..760.0).contains(&us), "Ethernet RTT {us} µs");
    }

    #[test]
    fn atm_latency_beats_ethernet_and_is_in_band() {
        let rig = TwoHosts::new();
        let eth = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
        let rig2 = TwoHosts::new();
        let atm = udp_round_trip(&rig2.exec, &rig2.a, &rig2.b, Medium::Atm, 16, 8);
        let us = atm as f64 / 1000.0;
        // Paper: SPIN 421 µs on ATM.
        assert!((280.0..560.0).contains(&us), "ATM RTT {us} µs");
        assert!(atm < eth);
    }

    #[test]
    fn ethernet_bandwidth_is_wire_limited() {
        let rig = TwoHosts::new();
        let mbps = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 1458, 60, 16);
        // Paper: 8.9 Mb/s on the 10 Mb/s Ethernet.
        assert!(
            (7.0..10.0).contains(&mbps),
            "Ethernet bandwidth {mbps} Mb/s"
        );
    }

    #[test]
    fn atm_bandwidth_is_pio_limited() {
        let rig = TwoHosts::new();
        let mbps = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Atm, 8104, 60, 16);
        // Paper: SPIN reaches 33 Mb/s; the card's PIO ceiling is ~53.
        assert!((20.0..53.0).contains(&mbps), "ATM bandwidth {mbps} Mb/s");
    }
}
