//! Transparent protocol forwarding as a kernel extension (§5.3, Table 6).
//!
//! "In SPIN an application installs a node into the protocol stack which
//! redirects all data and control packets destined for a particular port
//! number to a secondary host." Because the node sits *inside* the stack
//! (at the transport boundary, below connection state), TCP control
//! segments — SYN, FIN, RST — are forwarded like any other, so "end-to-end
//! connection establishment and termination semantics" hold, unlike the
//! user-level OSF/1 splice the paper compares against.
//!
//! The forwarder rewrites addresses NAT-style and keeps a flow table so
//! replies from the secondary host retrace the path to the original
//! client.

use crate::pkt::{proto, IpAddr, TcpHeader, UdpHeader};
use crate::stack::{NetStack, TcpSegment, UdpPacket};
use bytes::Bytes;
use spin_check::sync::Mutex;
use spin_core::{Constraints, GuardSpec, Identity, InstallSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Forwarding statistics. Transmit retries are no longer counted here:
/// the stack's [`crate::stack::NetStats::retries`] is the single
/// authoritative retry counter (see `NetStack::transmit_with_retry`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    pub forwarded: u64,
    pub replies: u64,
    pub flows: u64,
}

struct FlowTable {
    /// client (ip, port) → rewritten source port on the forwarder.
    out: BTreeMap<(IpAddr, u16), u16>,
    /// rewritten source port → client (ip, port).
    back: BTreeMap<u16, (IpAddr, u16)>,
    next_port: u16,
    stats: ForwardStats,
}

/// A deterministic export of a forwarder's flow table — the `Old` state a
/// hot-swap transfers into the next version (`crates/swap`). Flows are
/// sorted by rewritten port, so two snapshots of equal tables are equal
/// regardless of hash-map iteration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSnapshot {
    /// `(client ip, client port, rewritten port)` per live flow.
    pub flows: Vec<(IpAddr, u16, u16)>,
    /// Next rewritten port the table would allocate.
    pub next_port: u16,
    /// Counters at the snapshot instant (carried across the swap).
    pub stats: ForwardStats,
}

impl FlowTable {
    fn translate(&mut self, client: (IpAddr, u16)) -> u16 {
        if let Some(&p) = self.out.get(&client) {
            return p;
        }
        let p = self.next_port;
        self.next_port += 1;
        self.out.insert(client, p);
        self.back.insert(p, client);
        self.stats.flows += 1;
        p
    }
}

/// A transparent forwarder for one service port.
pub struct Forwarder {
    state: Arc<Mutex<FlowTable>>,
    identity: Identity,
}

/// Builds the outbound UDP handler: client → forwarder:`port` ⇒
/// forwarder → `target`:`port`.
fn udp_out_handler(
    stack: &NetStack,
    state: &Arc<Mutex<FlowTable>>,
    port: u16,
    target: IpAddr,
) -> impl Fn(&UdpPacket) + Send + Sync + 'static {
    let state = state.clone();
    let stack = stack.clone();
    move |p: &UdpPacket| {
        let rewritten = {
            let mut st = state.lock();
            st.stats.forwarded += 1;
            st.translate((p.ip.src, p.header.src_port))
        };
        let datagram = UdpHeader::encode(rewritten, port, &p.payload);
        stack.transmit_with_retry(target, proto::UDP, datagram);
    }
}

/// Builds the inbound UDP handler: target's replies to a rewritten port ⇒
/// original client.
fn udp_back_handler(
    stack: &NetStack,
    state: &Arc<Mutex<FlowTable>>,
    port: u16,
) -> impl Fn(&UdpPacket) + Send + Sync + 'static {
    let state = state.clone();
    let stack = stack.clone();
    move |p: &UdpPacket| {
        let client = {
            let mut st = state.lock();
            match st.back.get(&p.header.dst_port).copied() {
                Some(c) => {
                    st.stats.replies += 1;
                    c
                }
                None => return,
            }
        };
        let datagram = UdpHeader::encode(port, client.1, &p.payload);
        stack.transmit_with_retry(client.0, proto::UDP, datagram);
    }
}

impl Forwarder {
    /// Installs a UDP forwarder on `stack`: datagrams to `port` are
    /// redirected to `target`; replies retrace to the original client.
    pub fn install_udp(stack: &NetStack, port: u16, target: IpAddr) -> Forwarder {
        let identity = Identity::extension("Forward");
        let state = Arc::new(Mutex::new(FlowTable {
            out: BTreeMap::new(),
            back: BTreeMap::new(),
            next_port: 40_000,
            stats: ForwardStats::default(),
        }));

        // Outbound traffic is keyed on the shared UDP port key, so the
        // forwarder joins the port binds in one compiled dispatch-table
        // lookup.
        stack
            .events()
            .udp_arrived
            .install_keyed(
                identity.clone(),
                &stack.events().udp_port_key,
                u64::from(port),
                udp_out_handler(stack, &state, port, target),
            )
            .expect("install UDP forwarder (out)");
        stack.topology().note("UDP.PktArrived", "Forward");

        // Replies: a key range over the rewritten-port space, same key.
        stack
            .events()
            .udp_arrived
            .install_specs(
                identity.clone(),
                vec![GuardSpec::KeyRange(
                    stack.events().udp_port_key.clone(),
                    40_000,
                    u64::from(u16::MAX),
                )],
                udp_back_handler(stack, &state, port),
            )
            .expect("install UDP forwarder (back)");

        Forwarder { state, identity }
    }

    /// Builds a successor version of a UDP forwarder from a transferred
    /// [`FlowSnapshot`] *without installing it*: the returned
    /// [`InstallSpec`]s are handed to [`spin_core::Event::rebind`] so the
    /// hot-swap replaces the old version's handlers in one atomic
    /// generation bump (`crates/swap` orchestrates the protocol).
    ///
    /// The new version keeps the snapshot's flow table, so replies for
    /// flows opened under the old version still retrace, and forwarding is
    /// semantically identical — which is what makes the post-swap virtual
    /// outputs byte-identical to an uninterrupted run.
    pub fn udp_swap_specs(
        stack: &NetStack,
        port: u16,
        target: IpAddr,
        version: &str,
        snapshot: FlowSnapshot,
    ) -> (Forwarder, Vec<InstallSpec<UdpPacket, ()>>) {
        let identity = Identity::extension(version);
        let mut out = BTreeMap::new();
        let mut back = BTreeMap::new();
        for &(ip, client_port, rewritten) in &snapshot.flows {
            out.insert((ip, client_port), rewritten);
            back.insert(rewritten, (ip, client_port));
        }
        let state = Arc::new(Mutex::new(FlowTable {
            out,
            back,
            next_port: snapshot.next_port,
            stats: snapshot.stats,
        }));
        let specs = vec![
            InstallSpec {
                installer: identity.clone(),
                handler: Arc::new(udp_out_handler(stack, &state, port, target)),
                guards: vec![GuardSpec::KeyEq(
                    stack.events().udp_port_key.clone(),
                    u64::from(port),
                )],
                constraints: Constraints::default(),
            },
            InstallSpec {
                installer: identity.clone(),
                handler: Arc::new(udp_back_handler(stack, &state, port)),
                guards: vec![GuardSpec::KeyRange(
                    stack.events().udp_port_key.clone(),
                    40_000,
                    u64::from(u16::MAX),
                )],
                constraints: Constraints::default(),
            },
        ];
        (Forwarder { state, identity }, specs)
    }

    /// Installs a TCP forwarder: whole segments (including SYN/FIN/RST
    /// control) to `port` are redirected to `target` — this is what
    /// preserves end-to-end semantics.
    pub fn install_tcp(stack: &NetStack, port: u16, target: IpAddr) -> Forwarder {
        let identity = Identity::extension("Forward");
        let state = Arc::new(Mutex::new(FlowTable {
            out: BTreeMap::new(),
            back: BTreeMap::new(),
            next_port: 40_000,
            stats: ForwardStats::default(),
        }));

        let st2 = state.clone();
        let stack2 = stack.clone();
        stack
            .events()
            .tcp_arrived
            .install_keyed(
                Identity::extension("Forward"),
                &stack.events().tcp_port_key,
                u64::from(port),
                move |s: &TcpSegment| {
                    let rewritten = {
                        let mut st = st2.lock();
                        st.stats.forwarded += 1;
                        st.translate((s.ip.src, s.header.src_port))
                    };
                    let mut h = s.header;
                    h.src_port = rewritten;
                    stack2.transmit_with_retry(target, proto::TCP, reencode(&h, &s.payload));
                },
            )
            .expect("install TCP forwarder (out)");
        stack.topology().note("TCP.PktArrived", "Forward");

        let st3 = state.clone();
        let stack3 = stack.clone();
        stack
            .events()
            .tcp_arrived
            .install_specs(
                Identity::extension("Forward"),
                vec![GuardSpec::KeyRange(
                    stack.events().tcp_port_key.clone(),
                    40_000,
                    u64::from(u16::MAX),
                )],
                move |s: &TcpSegment| {
                    let client = {
                        let mut st = st3.lock();
                        match st.back.get(&s.header.dst_port).copied() {
                            Some(c) => {
                                st.stats.replies += 1;
                                c
                            }
                            None => return,
                        }
                    };
                    let mut h = s.header;
                    h.src_port = port;
                    h.dst_port = client.1;
                    stack3.transmit_with_retry(client.0, proto::TCP, reencode(&h, &s.payload));
                },
            )
            .expect("install TCP forwarder (back)");

        Forwarder { state, identity }
    }

    /// Counters so far.
    pub fn stats(&self) -> ForwardStats {
        self.state.lock().stats
    }

    /// The identity this forwarder's handlers are installed under — the
    /// `old_installer` a hot-swap rebind replaces.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// A deterministic export of the flow table (sorted by rewritten
    /// port) — the typed `Old` state for a hot-swap transfer.
    pub fn snapshot(&self) -> FlowSnapshot {
        let st = self.state.lock();
        let mut flows: Vec<(IpAddr, u16, u16)> = st
            .out
            .iter()
            .map(|(&(ip, client_port), &rewritten)| (ip, client_port, rewritten))
            .collect();
        flows.sort_by_key(|&(_, _, rewritten)| rewritten);
        FlowSnapshot {
            flows,
            next_port: st.next_port,
            stats: st.stats,
        }
    }
}

fn reencode(h: &TcpHeader, payload: &Bytes) -> Bytes {
    h.encode(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::tcp::TcpStack;
    use crate::testrig::ThreeHosts;

    #[test]
    fn udp_requests_are_forwarded_and_replies_retrace() {
        // A (client) → B (forwarder) → C (server), replies C → B → A.
        let rig = ThreeHosts::new();
        let fwd = Forwarder::install_udp(&rig.b, 7, rig.c.ip_on(Medium::Ethernet));
        // Echo server on C.
        let c2 = rig.c.clone();
        let _echo = crate::socket::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
            let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
        })
        .unwrap();
        // Client on A: a blocking request/reply to the *forwarder's* IP.
        let a = rig.a.clone();
        let b_ip = rig.b.ip_on(Medium::Ethernet);
        let reply_ch = crate::socket::UdpSocket::bind(&rig.a, 5555, "client", 4).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            a.udp_send(5555, b_ip, 7, b"through the forwarder").unwrap();
            let reply = reply_ch.recv(ctx).expect("echo reply");
            g2.lock().extend_from_slice(&reply.payload);
        });
        rig.exec.run_until_idle();
        assert_eq!(&got.lock()[..], b"through the forwarder");
        let s = fwd.stats();
        assert_eq!(s.forwarded, 1);
        assert_eq!(s.replies, 1);
        assert_eq!(s.flows, 1);
    }

    #[test]
    fn v2_from_snapshot_keeps_flows_and_counters_across_a_rebind() {
        // Open a flow under v1, hot-swap the handlers to a v2 built from
        // the snapshot, and check the same client's next request reuses
        // the transferred flow (same rewritten port, counters carried).
        let rig = ThreeHosts::new();
        let target = rig.c.ip_on(Medium::Ethernet);
        let fwd = Forwarder::install_udp(&rig.b, 7, target);
        let c2 = rig.c.clone();
        let _echo = crate::socket::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
            let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
        })
        .unwrap();
        let b_ip = rig.b.ip_on(Medium::Ethernet);
        let reply_ch = crate::socket::UdpSocket::bind(&rig.a, 5555, "client", 4).unwrap();
        let round = |tag: &'static [u8]| {
            let a = rig.a.clone();
            let ch = reply_ch.clone();
            rig.exec.spawn("client", move |ctx| {
                a.udp_send(5555, b_ip, 7, tag).unwrap();
                ch.recv(ctx).expect("echo reply");
            });
            rig.exec.run_until_idle();
        };
        round(b"before swap");
        let snapshot = fwd.snapshot();
        assert_eq!(snapshot.flows.len(), 1);

        let (v2, specs) = Forwarder::udp_swap_specs(&rig.b, 7, target, "Forward-v2", snapshot);
        rig.b
            .events()
            .udp_arrived
            .rebind(fwd.identity(), fwd.identity(), specs)
            .unwrap();

        round(b"after swap");
        let s = v2.stats();
        assert_eq!(s.forwarded, 2, "v1's counters carried into v2");
        assert_eq!(s.replies, 2);
        assert_eq!(s.flows, 1, "the client's flow survived the swap");
        // The old handle's table is no longer fed.
        assert_eq!(fwd.stats().forwarded, 1);
    }

    #[test]
    fn failed_forwards_retry_with_a_bounded_budget() {
        // Forward to an unroutable target: every transmit fails, so the
        // forwarder retries exactly FWD_RETRY_MAX times and then drops.
        let rig = ThreeHosts::new();
        let nowhere = IpAddr::new(10, 99, 99, 99);
        let fwd = Forwarder::install_udp(&rig.b, 7, nowhere);
        let a = rig.a.clone();
        let b_ip = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("client", move |_| {
            a.udp_send(5555, b_ip, 7, b"black hole").unwrap();
        });
        rig.exec.run_until_idle();
        let s = fwd.stats();
        assert_eq!(s.forwarded, 1);
        assert_eq!(s.replies, 0);
        // Retries are counted once, at the stack.
        assert_eq!(
            rig.b.stats().retries,
            u64::from(crate::stack::RETRY_MAX),
            "budget fully consumed"
        );
    }

    #[test]
    fn tcp_connections_established_through_the_forwarder() {
        // The paper's point: control packets (SYN/FIN) forward too, so a
        // full TCP connection works end-to-end through the splice.
        let rig = ThreeHosts::new();
        let _fwd = Forwarder::install_tcp(&rig.b, 80, rig.c.ip_on(Medium::Ethernet));
        let tcp_a = TcpStack::install(&rig.a);
        let tcp_c = TcpStack::install(&rig.c);

        let listener = tcp_c.listen(80);
        rig.exec.spawn("server", move |ctx| {
            let conn = listener.accept(ctx).expect("forwarded SYN");
            let req = conn.recv(ctx).expect("data");
            assert_eq!(&req[..], b"GET /");
            conn.send(ctx, b"200 OK").unwrap();
            conn.close(ctx);
        });
        let b_ip = rig.b.ip_on(Medium::Ethernet);
        let done = Arc::new(Mutex::new(false));
        let d2 = done.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = tcp_a
                .connect(ctx, b_ip, 80)
                .expect("handshake through forwarder");
            conn.send(ctx, b"GET /").unwrap();
            let reply = conn.recv(ctx).expect("reply");
            assert_eq!(&reply[..], b"200 OK");
            conn.close(ctx);
            *d2.lock() = true;
        });
        rig.exec.run_until_idle();
        assert!(*done.lock());
    }
}
