//! The standard two-workstation testbed used throughout the networking
//! tests and benchmarks: two hosts on one board (shared timeline), both
//! attached to Ethernet, ATM and T3, each with an installed [`NetStack`].

use crate::pkt::IpAddr;
use crate::stack::{AddressMap, Medium, NetStack};
use spin_core::Dispatcher;
use spin_sal::{Host, MulticoreBoard, SimBoard};
use spin_sched::{Executor, Multicore};
use std::sync::Arc;

/// The two-host rig.
pub struct TwoHosts {
    pub board: SimBoard,
    pub exec: Arc<Executor>,
    pub dispatcher: Dispatcher,
    pub addrs: AddressMap,
    pub host_a: Host,
    pub host_b: Host,
    pub a: NetStack,
    pub b: NetStack,
}

impl Default for TwoHosts {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoHosts {
    /// Builds the rig with conventional addresses: host A is 10.x.0.1,
    /// host B is 10.x.0.2 (x = 0 Ethernet, 1 ATM, 2 T3).
    pub fn new() -> TwoHosts {
        let board = SimBoard::new();
        let host_a = board.new_host(256);
        let host_b = board.new_host(256);
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        exec.add_irq_controller(host_a.irqs.clone());
        exec.add_irq_controller(host_b.irqs.clone());
        let dispatcher = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let addrs = AddressMap::new();
        let a = NetStack::install(
            &host_a,
            &exec,
            &dispatcher,
            &addrs,
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 1, 0, 1),
            IpAddr::new(10, 2, 0, 1),
        );
        let b = NetStack::install(
            &host_b,
            &exec,
            &dispatcher,
            &addrs,
            IpAddr::new(10, 0, 0, 2),
            IpAddr::new(10, 1, 0, 2),
            IpAddr::new(10, 2, 0, 2),
        );
        TwoHosts {
            board,
            exec,
            dispatcher,
            addrs,
            host_a,
            host_b,
            a,
            b,
        }
    }

    /// The IP of stack `b` on `medium` (the usual target).
    pub fn b_ip(&self, medium: Medium) -> IpAddr {
        self.b.ip_on(medium)
    }

    /// Wires an observability subsystem across the whole rig: trace
    /// records stamp the shared board clock, the executor accounts to the
    /// sched domain, both stacks to the net domain.
    pub fn wire_obs(&self, obs: &spin_obs::Obs) {
        let clock = self.board.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.exec.set_obs(obs.domain("sched"));
        self.a.set_obs(obs.domain("net"));
        self.b.set_obs(obs.domain("net"));
        self.dispatcher.set_obs(obs.domain("dispatcher"));
    }
}

/// The two-workstation rig in multicore mode: each host is a kernel
/// shard with its own executor, dispatcher, clock and timer queue, all
/// pumped by the [`Multicore`] barrier. Wire frames cross shards through
/// mailboxes; every virtual-time output is identical at any worker count.
pub struct ShardedPair {
    pub board: MulticoreBoard,
    pub mc: Multicore,
    pub addrs: AddressMap,
    pub host_a: Host,
    pub host_b: Host,
    pub exec_a: Arc<Executor>,
    pub exec_b: Arc<Executor>,
    pub disp_a: Dispatcher,
    pub disp_b: Dispatcher,
    pub a: NetStack,
    pub b: NetStack,
}

impl ShardedPair {
    /// Builds the sharded rig pumped by `workers` OS threads, with the
    /// same conventional addresses as [`TwoHosts`].
    pub fn new(workers: usize) -> ShardedPair {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(workers, board.lookahead());
        let addrs = AddressMap::new();
        let mut built = Vec::new();
        for n in 1..=2u8 {
            let host = board.new_host(256);
            let exec = mc.add_host(host.clone());
            let dispatcher = Dispatcher::new(host.clock.clone(), host.profile.clone());
            mc.wire_dispatcher(&dispatcher, host.id);
            let stack = NetStack::install(
                &host,
                &exec,
                &dispatcher,
                &addrs,
                IpAddr::new(10, 0, 0, n),
                IpAddr::new(10, 1, 0, n),
                IpAddr::new(10, 2, 0, n),
            );
            built.push((host, exec, dispatcher, stack));
        }
        let (host_b, exec_b, disp_b, b) = built.pop().expect("two shards");
        let (host_a, exec_a, disp_a, a) = built.pop().expect("one shard");
        ShardedPair {
            board,
            mc,
            addrs,
            host_a,
            host_b,
            exec_a,
            exec_b,
            disp_a,
            disp_b,
            a,
            b,
        }
    }

    /// The IP of stack `b` on `medium` (the usual target).
    pub fn b_ip(&self, medium: Medium) -> IpAddr {
        self.b.ip_on(medium)
    }

    /// Wires an observability subsystem across the rig: shard metrics
    /// from the barrier, per-stack net accounting, per-dispatcher lanes.
    /// Trace stamps read shard A's clock (a diagnostic convenience — the
    /// counters, not the stamps, are the worker-invariant surface).
    pub fn wire_obs(&self, obs: &spin_obs::Obs) {
        let clock = self.host_a.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.mc.wire_obs(obs);
        self.a.set_obs(obs.domain("net"));
        self.b.set_obs(obs.domain("net"));
        self.disp_a.set_obs(obs.domain("dispatcher"));
        self.disp_b.set_obs(obs.domain("dispatcher"));
    }
}

/// A three-workstation rig (client, forwarder, server) for the Table 6
/// protocol-forwarding experiments.
pub struct ThreeHosts {
    pub board: SimBoard,
    pub exec: Arc<Executor>,
    pub dispatcher: Dispatcher,
    pub addrs: AddressMap,
    pub a: NetStack,
    pub b: NetStack,
    pub c: NetStack,
}

impl Default for ThreeHosts {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreeHosts {
    /// Builds the rig; host X is 10.m.0.X on medium m.
    pub fn new() -> ThreeHosts {
        let board = SimBoard::new();
        let hosts: Vec<Host> = (0..3).map(|_| board.new_host(256)).collect();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let dispatcher = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let addrs = AddressMap::new();
        let mut stacks = Vec::new();
        for (i, host) in hosts.iter().enumerate() {
            exec.add_irq_controller(host.irqs.clone());
            let n = (i + 1) as u8;
            stacks.push(NetStack::install(
                host,
                &exec,
                &dispatcher,
                &addrs,
                IpAddr::new(10, 0, 0, n),
                IpAddr::new(10, 1, 0, n),
                IpAddr::new(10, 2, 0, n),
            ));
        }
        let c = stacks.pop().expect("three stacks");
        let b = stacks.pop().expect("two stacks");
        let a = stacks.pop().expect("one stack");
        ThreeHosts {
            board,
            exec,
            dispatcher,
            addrs,
            a,
            b,
            c,
        }
    }

    /// Wires an observability subsystem across the whole rig (see
    /// [`TwoHosts::wire_obs`]).
    pub fn wire_obs(&self, obs: &spin_obs::Obs) {
        let clock = self.board.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.exec.set_obs(obs.domain("sched"));
        for stack in [&self.a, &self.b, &self.c] {
            stack.set_obs(obs.domain("net"));
        }
        self.dispatcher.set_obs(obs.domain("dispatcher"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::Mutex;
    use spin_sal::Nanos;
    use spin_sched::IdleOutcome;

    /// UDP ping-pong across two kernel shards: every virtual arrival
    /// time, reply time and mailbox count is identical at 1, 2 and 4
    /// workers.
    #[test]
    fn sharded_udp_ping_pong_is_worker_count_invariant() {
        let run = |workers: usize| -> (Vec<Nanos>, Nanos, u64) {
            let rig = ShardedPair::new(workers);
            let echo = rig.b.clone();
            let _echo_sock = crate::socket::UdpSocket::bind_with(&rig.b, 7, "echo", move |p| {
                let src = p.ip.src;
                let port = p.header.src_port;
                echo.udp_send(7, src, port, &p.payload).unwrap();
            })
            .unwrap();
            let arrivals: Arc<Mutex<Vec<Nanos>>> = Arc::new(Mutex::new(Vec::new()));
            let arr = arrivals.clone();
            let clock_a = rig.host_a.clock.clone();
            let _sink = crate::socket::UdpSocket::bind_with(&rig.a, 9, "pong-sink", move |_| {
                arr.lock().push(clock_a.now())
            })
            .unwrap();
            let a = rig.a.clone();
            let dst = rig.b_ip(Medium::Ethernet);
            rig.exec_a.spawn("pinger", move |ctx| {
                for _ in 0..4 {
                    a.udp_send(9, dst, 7, b"ping").unwrap();
                    ctx.sleep(200_000);
                }
            });
            assert_eq!(rig.mc.run_until_idle(), IdleOutcome::AllComplete);
            let arrivals = arrivals.lock().clone();
            assert_eq!(arrivals.len(), 4, "all four pongs arrived");
            let st = rig.mc.stats();
            (arrivals, rig.host_b.clock.now(), st.mail_posted)
        };
        let base = run(1);
        assert_eq!(run(2), base, "2 workers diverged");
        assert_eq!(run(4), base, "4 workers diverged");
    }
}
