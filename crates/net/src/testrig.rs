//! The standard two-workstation testbed used throughout the networking
//! tests and benchmarks: two hosts on one board (shared timeline), both
//! attached to Ethernet, ATM and T3, each with an installed [`NetStack`].

use crate::pkt::IpAddr;
use crate::stack::{AddressMap, Medium, NetStack};
use spin_core::Dispatcher;
use spin_sal::{Host, SimBoard};
use spin_sched::Executor;
use std::sync::Arc;

/// The two-host rig.
pub struct TwoHosts {
    pub board: SimBoard,
    pub exec: Arc<Executor>,
    pub dispatcher: Dispatcher,
    pub addrs: AddressMap,
    pub host_a: Host,
    pub host_b: Host,
    pub a: NetStack,
    pub b: NetStack,
}

impl Default for TwoHosts {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoHosts {
    /// Builds the rig with conventional addresses: host A is 10.x.0.1,
    /// host B is 10.x.0.2 (x = 0 Ethernet, 1 ATM, 2 T3).
    pub fn new() -> TwoHosts {
        let board = SimBoard::new();
        let host_a = board.new_host(256);
        let host_b = board.new_host(256);
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        exec.add_irq_controller(host_a.irqs.clone());
        exec.add_irq_controller(host_b.irqs.clone());
        let dispatcher = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let addrs = AddressMap::new();
        let a = NetStack::install(
            &host_a,
            &exec,
            &dispatcher,
            &addrs,
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 1, 0, 1),
            IpAddr::new(10, 2, 0, 1),
        );
        let b = NetStack::install(
            &host_b,
            &exec,
            &dispatcher,
            &addrs,
            IpAddr::new(10, 0, 0, 2),
            IpAddr::new(10, 1, 0, 2),
            IpAddr::new(10, 2, 0, 2),
        );
        TwoHosts {
            board,
            exec,
            dispatcher,
            addrs,
            host_a,
            host_b,
            a,
            b,
        }
    }

    /// The IP of stack `b` on `medium` (the usual target).
    pub fn b_ip(&self, medium: Medium) -> IpAddr {
        self.b.ip_on(medium)
    }

    /// Wires an observability subsystem across the whole rig: trace
    /// records stamp the shared board clock, the executor accounts to the
    /// sched domain, both stacks to the net domain.
    pub fn wire_obs(&self, obs: &spin_obs::Obs) {
        let clock = self.board.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.exec.set_obs(obs.domain("sched"));
        self.a.set_obs(obs.domain("net"));
        self.b.set_obs(obs.domain("net"));
        self.dispatcher.set_obs(obs.domain("dispatcher"));
    }
}

/// A three-workstation rig (client, forwarder, server) for the Table 6
/// protocol-forwarding experiments.
pub struct ThreeHosts {
    pub board: SimBoard,
    pub exec: Arc<Executor>,
    pub dispatcher: Dispatcher,
    pub addrs: AddressMap,
    pub a: NetStack,
    pub b: NetStack,
    pub c: NetStack,
}

impl Default for ThreeHosts {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreeHosts {
    /// Builds the rig; host X is 10.m.0.X on medium m.
    pub fn new() -> ThreeHosts {
        let board = SimBoard::new();
        let hosts: Vec<Host> = (0..3).map(|_| board.new_host(256)).collect();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let dispatcher = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let addrs = AddressMap::new();
        let mut stacks = Vec::new();
        for (i, host) in hosts.iter().enumerate() {
            exec.add_irq_controller(host.irqs.clone());
            let n = (i + 1) as u8;
            stacks.push(NetStack::install(
                host,
                &exec,
                &dispatcher,
                &addrs,
                IpAddr::new(10, 0, 0, n),
                IpAddr::new(10, 1, 0, n),
                IpAddr::new(10, 2, 0, n),
            ));
        }
        let c = stacks.pop().expect("three stacks");
        let b = stacks.pop().expect("two stacks");
        let a = stacks.pop().expect("one stack");
        ThreeHosts {
            board,
            exec,
            dispatcher,
            addrs,
            a,
            b,
            c,
        }
    }

    /// Wires an observability subsystem across the whole rig (see
    /// [`TwoHosts::wire_obs`]).
    pub fn wire_obs(&self, obs: &spin_obs::Obs) {
        let clock = self.board.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.exec.set_obs(obs.domain("sched"));
        for stack in [&self.a, &self.b, &self.c] {
            stack.set_obs(obs.domain("net"));
        }
        self.dispatcher.set_obs(obs.domain("dispatcher"));
    }
}
