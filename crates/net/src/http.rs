//! The in-kernel HTTP server extension (Figure 5's "HTTP" box; §5.4).
//!
//! "The HTTP extension implements the HyperText Transport Protocol
//! directly within the kernel, enabling a server to respond quickly to
//! HTTP requests by splicing together the protocol stack and the local
//! file system." The server controls its own object cache with the hybrid
//! policy of §5.4 and runs the file system beneath it without block
//! caching, avoiding double buffering.
//!
//! Webscale redesign: instead of an acceptor strand plus one strand per
//! connection, the server is a **single** daemon strand parked on a
//! [`NetPoller`]. The listener and every live connection are poller
//! sources; requests are parsed from accumulated bytes per session, typed
//! [`Request`]s are dispatched to typed [`Response`] routes, and slow
//! clients (slowloris) are reaped by an idle sweep driven from a rearming
//! virtual timer. Admission is gated per request by an optional PR-8
//! [`QuotaCell`]; over-budget requests get a deterministic 503.

use crate::pkt::IpAddr;
use crate::poll::{interest, NetPoller, Token};
use crate::stack::NetStack;
use crate::tcp::{TcpConn, TcpStack};
use bytes::Bytes;
use spin_check::sync::{Mutex, RwLock};
use spin_core::QuotaCell;
use spin_fs::{FileSystem, WebCache};
use spin_sal::Nanos;
use spin_sched::StrandCtx;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    pub requests: u64,
    pub ok: u64,
    pub not_found: u64,
    pub bad_requests: u64,
    /// Requests refused by the quota cell (503).
    pub shed: u64,
    /// Connections reaped by the slow-client idle sweep.
    pub timeouts: u64,
}

/// A parsed HTTP request, as handed to typed route handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Headers in wire order, names as received.
    pub headers: Vec<(String, String)>,
    pub body: Bytes,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A typed HTTP response; the server owns serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    /// Emitted in order, before `Content-Length`.
    pub headers: Vec<(String, String)>,
    pub body: Bytes,
}

impl Response {
    /// A 200 with the given body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A bare 404 (1995-style: status line only).
    pub fn not_found() -> Response {
        Response {
            status: 404,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// A bare 400.
    pub fn bad_request() -> Response {
        Response {
            status: 400,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// A bare 503 (quota admission refused).
    pub fn unavailable() -> Response {
        Response {
            status: 503,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes to the wire bytes. Error replies with empty bodies stay
    /// bare status lines (the pre-redesign byte format); 200s always
    /// carry `Content-Length`.
    fn encode(&self) -> Bytes {
        let mut head = format!("HTTP/1.0 {} {}\r\n", self.status, self.reason());
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        if self.status == 200 || !self.body.is_empty() {
            head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        Bytes::from(out)
    }
}

/// A dynamic in-kernel handler for one path.
pub type RouteHandler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// The immutable route snapshot published by the server (snapshot-swap
/// like the dispatcher's plans: readers never hold a lock while a handler
/// runs). BTree: deterministic iteration for diagnostics.
type RouteTable = BTreeMap<String, RouteHandler>;

/// Server tuning knobs.
#[derive(Clone)]
pub struct HttpConfig {
    /// Listener backlog (SYNs arriving past it are dropped; the client's
    /// SYN retransmit recovers).
    pub backlog: usize,
    /// A connection idle longer than this (virtual time) without
    /// completing a request is reaped — the slowloris defense.
    pub idle_timeout: Nanos,
    /// Idle-sweep period; armed only while sessions exist so the timer
    /// wheel drains when the storm ends.
    pub tick: Nanos,
    /// `time_bound` constraint on the server poller's `Net.Ready`
    /// delivery handler (the PR-3 containment machinery).
    pub time_bound: Option<Nanos>,
    /// Per-request admission gate (PR-8). Refusals get a 503.
    pub quota: Option<Arc<QuotaCell>>,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            backlog: 64,
            idle_timeout: 2_000_000_000,
            tick: 500_000_000,
            time_bound: None,
            quota: None,
        }
    }
}

/// The poller token reserved for the listener.
const LISTENER_TOKEN: Token = 0;
/// The poller token the idle-sweep timer posts to.
const TICK_TOKEN: Token = u64::MAX;

struct Session {
    conn: Arc<TcpConn>,
    buf: Vec<u8>,
    last_activity: Nanos,
}

/// The in-kernel web server.
pub struct HttpServer {
    stats: Arc<Mutex<HttpStats>>,
    cache: Arc<WebCache>,
    routes: RwLock<Arc<RouteTable>>,
    quota: Option<Arc<QuotaCell>>,
}

impl HttpServer {
    /// Starts the server on `port` with default tuning, serving files
    /// from `fs` through `cache`.
    pub fn start(
        stack: &NetStack,
        tcp: &TcpStack,
        fs: FileSystem,
        cache: Arc<WebCache>,
        port: u16,
    ) -> Arc<HttpServer> {
        Self::start_with(stack, tcp, fs, cache, port, HttpConfig::default())
    }

    /// Starts the server with explicit tuning. Spawns exactly one daemon
    /// strand regardless of connection count.
    pub fn start_with(
        stack: &NetStack,
        tcp: &TcpStack,
        fs: FileSystem,
        cache: Arc<WebCache>,
        port: u16,
        cfg: HttpConfig,
    ) -> Arc<HttpServer> {
        let server = Arc::new(HttpServer {
            stats: Arc::new(Mutex::new(HttpStats::default())),
            cache,
            routes: RwLock::new(Arc::new(BTreeMap::new())),
            quota: cfg.quota.clone(),
        });
        stack.topology().note("TCP.PktArrived", "HTTP");
        let listener = tcp.listen_backlog(port, cfg.backlog);
        let poller = NetPoller::with_time_bound(stack, cfg.time_bound);
        poller.add(listener.as_ref(), LISTENER_TOKEN, interest::ACCEPT);
        let exec = stack.executor().clone();
        let clock = exec.clock().clone();
        let srv = server.clone();
        let exec2 = exec.clone();
        let daemon = exec.spawn("http-server", move |ctx| {
            let mut sessions: BTreeMap<Token, Session> = BTreeMap::new();
            let mut next_token: Token = 1;
            let mut tick_armed = false;
            let arm = |armed: &mut bool| {
                if !*armed {
                    *armed = true;
                    let p = poller.clone();
                    let at = clock.now() + cfg.tick;
                    exec2
                        .timers()
                        .schedule_at(at, move |_| p.post(TICK_TOKEN, interest::READABLE));
                }
            };
            loop {
                for (token, mask) in poller.wait(ctx) {
                    if token == LISTENER_TOKEN {
                        while let Some(conn) = listener.try_accept() {
                            let tok = next_token;
                            next_token += 1;
                            poller.add(conn.as_ref(), tok, interest::READABLE);
                            sessions.insert(
                                tok,
                                Session {
                                    conn,
                                    buf: Vec::new(),
                                    last_activity: clock.now(),
                                },
                            );
                            arm(&mut tick_armed);
                        }
                    } else if token == TICK_TOKEN {
                        tick_armed = false;
                        let now = clock.now();
                        let expired: Vec<Token> = sessions
                            .iter()
                            .filter(|(_, s)| {
                                // A session with undrained input is never
                                // idle: under load, one `wait` batch can
                                // run longer in virtual time than the
                                // idle timeout, and sessions accepted at
                                // the head of the batch would otherwise
                                // be reaped by the tick at its tail while
                                // their request sits queued in the ready
                                // set. Only peers that have gone silent
                                // (everything received already drained)
                                // are idle.
                                now.saturating_sub(s.last_activity) > cfg.idle_timeout
                                    && s.conn.incoming_len() == 0
                            })
                            .map(|(t, _)| *t)
                            .collect();
                        for t in expired {
                            let s = sessions.remove(&t).expect("listed above");
                            srv.stats.lock().timeouts += 1;
                            s.conn.begin_close();
                        }
                        if !sessions.is_empty() {
                            arm(&mut tick_armed);
                        }
                    } else if let Some(s) = sessions.get_mut(&token) {
                        while let Some(chunk) = s.conn.try_recv() {
                            s.buf.extend_from_slice(&chunk);
                        }
                        s.last_activity = clock.now();
                        if let Some(req) = parse_complete(&s.buf) {
                            let s = sessions.remove(&token).expect("present");
                            srv.respond(ctx, &s.conn, &req, &fs);
                        } else if mask & interest::CLOSED != 0 {
                            // Peer gave up before completing a request.
                            let s = sessions.remove(&token).expect("present");
                            s.conn.begin_close();
                        }
                    }
                }
            }
        });
        exec.set_daemon(daemon);
        server
    }

    /// Serves one parsed request and fires the close (non-blocking: the
    /// FIN handshake completes on the protocol thread).
    fn respond(&self, ctx: &StrandCtx, conn: &Arc<TcpConn>, req: &Request, fs: &FileSystem) {
        self.stats.lock().requests += 1;
        let t0 = ctx.executor().clock().now();
        let admitted = match &self.quota {
            Some(cell) => cell.admit(t0).is_ok(),
            None => true,
        };
        let resp = if !admitted {
            self.stats.lock().shed += 1;
            Response::unavailable()
        } else {
            self.serve(ctx, req, fs)
        };
        let _ = conn.send_buf(ctx, resp.encode());
        conn.begin_close();
        if admitted {
            if let Some(cell) = &self.quota {
                cell.complete(ctx.executor().clock().now() - t0);
            }
        }
    }

    /// Routes a request: dynamic routes first (any method), then GET file
    /// service through the object cache.
    fn serve(&self, ctx: &StrandCtx, req: &Request, fs: &FileSystem) -> Response {
        if !req.path.starts_with('/') {
            self.stats.lock().bad_requests += 1;
            return Response::bad_request();
        }
        let handler = self.routes.read().get(&req.path).cloned();
        if let Some(handler) = handler {
            let resp = handler(req);
            let mut st = self.stats.lock();
            match resp.status {
                200 => st.ok += 1,
                404 => st.not_found += 1,
                _ => st.bad_requests += 1,
            }
            return resp;
        }
        if req.method != "GET" {
            self.stats.lock().bad_requests += 1;
            return Response::bad_request();
        }
        // The hybrid object cache fronts the (uncached) file system.
        if fs.size_of(&req.path).is_err() {
            self.stats.lock().not_found += 1;
            return Response::not_found();
        }
        let path = req.path.clone();
        let (body, _hit) = self
            .cache
            .get_or_load(&path, || fs.read_file(ctx, &path).unwrap_or_default());
        self.stats.lock().ok += 1;
        Response::ok(Bytes::copy_from_slice(&body))
    }

    /// Installs a typed handler for `path` (rebuild-and-swap; replaces
    /// any previous handler on the same path).
    pub fn route(
        &self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) {
        let mut slot = self.routes.write();
        let mut next = RouteTable::clone(&slot);
        next.insert(path.to_string(), Arc::new(handler));
        *slot = Arc::new(next);
    }

    /// Server counters.
    pub fn stats(&self) -> HttpStats {
        *self.stats.lock()
    }

    /// The object cache (for policy inspection in benches).
    pub fn cache(&self) -> &Arc<WebCache> {
        &self.cache
    }
}

/// Parses a complete request (head terminated by `\r\n\r\n`, body per
/// `Content-Length`) from accumulated bytes. `None` while incomplete.
/// An unparseable request line yields a `Request` with an empty method,
/// which the server answers with 400.
fn parse_complete(buf: &[u8]) -> Option<Request> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = head.split("\r\n");
    let mut first = lines.next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("").to_string();
    let path = first.next().unwrap_or("").to_string();
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return None;
    }
    Some(Request {
        method,
        path,
        headers,
        body: Bytes::copy_from_slice(&buf[body_start..body_start + content_length]),
    })
}

/// A blocking HTTP GET; returns (status line, body).
pub fn http_get(
    ctx: &StrandCtx,
    tcp: &TcpStack,
    server: IpAddr,
    port: u16,
    path: &str,
) -> Option<(String, Vec<u8>)> {
    let conn = tcp.connect(ctx, server, port).ok()?;
    let request = format!("GET {path} HTTP/1.0\r\n\r\n");
    conn.send(ctx, request.as_bytes()).ok()?;
    let mut response = Vec::new();
    while let Some(chunk) = conn.recv(ctx) {
        response.extend_from_slice(&chunk);
    }
    conn.close(ctx);
    let sep = response.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&response[..sep]).into_owned();
    let status = head.lines().next()?.to_string();
    Some((status, response[sep + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;
    use spin_fs::{BufferCache, HybridBySize, NoCachePolicy};

    fn web_rig() -> (TwoHosts, TcpStack, Arc<HttpServer>) {
        web_rig_with(HttpConfig::default())
    }

    fn web_rig_with(cfg: HttpConfig) -> (TwoHosts, TcpStack, Arc<HttpServer>) {
        let rig = TwoHosts::new();
        let tcp_a = TcpStack::install(&rig.a);
        let tcp_b = TcpStack::install(&rig.b);
        // The server's file system runs uncached under the object cache.
        let bc = BufferCache::new(
            rig.host_b.disk.clone(),
            rig.exec.clone(),
            64,
            Box::new(NoCachePolicy),
        );
        let fs = FileSystem::format(bc, 1000, 500);
        // Populate content.
        let fs2 = fs.clone();
        rig.exec.spawn("setup", move |ctx| {
            fs2.create("/index.html").unwrap();
            fs2.write_file(ctx, "/index.html", b"<html>SPIN</html>")
                .unwrap();
            fs2.create("/big.mpg").unwrap();
            fs2.write_file(ctx, "/big.mpg", &vec![7u8; 100_000])
                .unwrap();
        });
        rig.exec.run_until_idle();
        let cache = Arc::new(WebCache::new(
            1 << 20,
            Box::new(HybridBySize {
                large_threshold: 64 * 1024,
            }),
        ));
        let server = HttpServer::start_with(&rig.b, &tcp_b, fs, cache, 80, cfg);
        (rig, tcp_a, server)
    }

    #[test]
    fn get_serves_file_content() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/index.html");
        });
        rig.exec.run_until_idle();
        let (status, body) = got.lock().clone().expect("response");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert_eq!(body, b"<html>SPIN</html>");
        assert_eq!(server.stats().ok, 1);
    }

    #[test]
    fn missing_files_are_404() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/nope");
        });
        rig.exec.run_until_idle();
        let (status, _) = got.lock().clone().expect("response");
        assert!(status.contains("404"));
        assert_eq!(server.stats().not_found, 1);
    }

    #[test]
    fn small_files_cache_large_files_bypass() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let tcp2 = tcp_a.clone();
        rig.exec.spawn("client", move |ctx| {
            for _ in 0..2 {
                http_get(ctx, &tcp2, dst, 80, "/index.html").expect("ok");
                http_get(ctx, &tcp2, dst, 80, "/big.mpg").expect("ok");
            }
        });
        rig.exec.run_until_idle();
        let cs = server.cache().stats();
        assert_eq!(cs.hits, 1, "second /index.html is a cache hit");
        assert_eq!(cs.bypasses, 2, "/big.mpg is never cached");
    }

    #[test]
    fn cached_requests_are_faster() {
        let (rig, tcp_a, _server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let clock = rig.exec.clock().clone();
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = times.clone();
        rig.exec.spawn("client", move |ctx| {
            for _ in 0..2 {
                let t0 = clock.now();
                http_get(ctx, &tcp_a, dst, 80, "/index.html").expect("ok");
                t2.lock().push(clock.now() - t0);
            }
        });
        rig.exec.run_until_idle();
        let t = times.lock();
        assert!(
            t[1] < t[0],
            "cached ({}) must beat uncached ({}) — the §5.4 claim",
            t[1],
            t[0]
        );
    }

    #[test]
    fn typed_routes_see_method_headers_and_body() {
        let (rig, tcp_a, server) = web_rig();
        server.route("/echo", |req: &Request| {
            let who = req.header("x-who").unwrap_or("?").to_string();
            let body = format!("{} {} {}", req.method, who, req.body.len());
            Response::ok(body.into_bytes())
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = tcp_a.connect(ctx, dst, 80).unwrap();
            conn.send(
                ctx,
                b"POST /echo HTTP/1.0\r\nX-Who: spin\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
            while let Some(chunk) = conn.recv(ctx) {
                g2.lock().extend_from_slice(&chunk);
            }
            conn.close(ctx);
        });
        rig.exec.run_until_idle();
        let response = got.lock().clone();
        let text = String::from_utf8_lossy(&response).into_owned();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.ends_with("POST spin 5"), "{text}");
    }

    #[test]
    fn slowloris_connections_are_reaped() {
        let cfg = HttpConfig {
            idle_timeout: 50_000_000,
            tick: 10_000_000,
            ..HttpConfig::default()
        };
        let (rig, tcp_a, server) = web_rig_with(cfg);
        let dst = rig.b_ip(Medium::Ethernet);
        rig.exec.spawn("slowloris", move |ctx| {
            let conn = tcp_a.connect(ctx, dst, 80).unwrap();
            // A partial request line, then silence.
            conn.send(ctx, b"GET /index.ht").unwrap();
            // Outlive the idle timeout without completing the request.
            ctx.sleep(200_000_000);
            // The server must have FIN'd us by now.
            while conn.recv(ctx).is_some() {}
        });
        rig.exec.run_until_idle();
        let st = server.stats();
        assert_eq!(st.timeouts, 1, "the slow client was reaped");
        assert_eq!(st.requests, 0, "no request ever completed");
    }
}
