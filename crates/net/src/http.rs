//! The in-kernel HTTP server extension (Figure 5's "HTTP" box; §5.4).
//!
//! "The HTTP extension implements the HyperText Transport Protocol
//! directly within the kernel, enabling a server to respond quickly to
//! HTTP requests by splicing together the protocol stack and the local
//! file system." The server controls its own object cache with the hybrid
//! policy of §5.4 and runs the file system beneath it without block
//! caching, avoiding double buffering.

use crate::pkt::IpAddr;
use crate::stack::NetStack;
use crate::tcp::{TcpConn, TcpStack};
use spin_check::sync::{Mutex, RwLock};
use spin_fs::{FileSystem, WebCache};
use spin_sched::StrandCtx;
use std::collections::HashMap;
use std::sync::Arc;

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    pub requests: u64,
    pub ok: u64,
    pub not_found: u64,
    pub bad_requests: u64,
}

/// A dynamic in-kernel handler for one path: renders the response body.
pub type RouteHandler = Arc<dyn Fn() -> String + Send + Sync>;

/// The immutable route snapshot published by the server (snapshot-swap
/// like the dispatcher's plans: readers never hold a lock while a handler
/// runs).
type RouteTable = HashMap<String, RouteHandler>;

/// The in-kernel web server.
pub struct HttpServer {
    stats: Arc<Mutex<HttpStats>>,
    cache: Arc<WebCache>,
    routes: RwLock<Arc<RouteTable>>,
}

impl HttpServer {
    /// Starts the server on `port`, serving files from `fs` through
    /// `cache`. Spawns an acceptor strand plus one strand per connection.
    pub fn start(
        stack: &NetStack,
        tcp: &TcpStack,
        fs: FileSystem,
        cache: Arc<WebCache>,
        port: u16,
    ) -> Arc<HttpServer> {
        let server = Arc::new(HttpServer {
            stats: Arc::new(Mutex::new(HttpStats::default())),
            cache,
            routes: RwLock::new(Arc::new(HashMap::new())),
        });
        stack.topology().note("TCP.PktArrived", "HTTP");
        let listener = tcp.listen(port);
        let exec = stack.executor().clone();
        let srv = server.clone();
        let acceptor = exec.clone().spawn("http-accept", move |ctx| {
            while let Some(conn) = listener.accept(ctx) {
                let srv = srv.clone();
                let fs = fs.clone();
                ctx.executor().spawn("http-conn", move |cctx| {
                    srv.serve_connection(cctx, &conn, &fs);
                });
            }
        });
        exec.set_daemon(acceptor);
        server
    }

    fn serve_connection(&self, ctx: &StrandCtx, conn: &Arc<TcpConn>, fs: &FileSystem) {
        // One request per connection (HTTP/1.0 semantics, as in 1995).
        let request = match conn.recv(ctx) {
            Some(r) => r,
            None => return,
        };
        self.stats.lock().requests += 1;
        let line = String::from_utf8_lossy(&request);
        let path = match parse_request(&line) {
            Some(p) => p,
            None => {
                self.stats.lock().bad_requests += 1;
                let _ = conn.send(ctx, b"HTTP/1.0 400 Bad Request\r\n\r\n");
                conn.close(ctx);
                return;
            }
        };
        // Dynamic routes take precedence over files — in-kernel extensions
        // (the `/metrics` endpoint) splice in here.
        let handler = self.routes.read().get(&path).cloned();
        if let Some(handler) = handler {
            let body = handler();
            self.stats.lock().ok += 1;
            let header = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            let _ = conn.send(ctx, header.as_bytes());
            if !body.is_empty() {
                let _ = conn.send(ctx, body.as_bytes());
            }
            conn.close(ctx);
            return;
        }
        // The hybrid object cache fronts the (uncached) file system.
        let exists = fs.size_of(&path).is_ok();
        if !exists {
            self.stats.lock().not_found += 1;
            let _ = conn.send(ctx, b"HTTP/1.0 404 Not Found\r\n\r\n");
            conn.close(ctx);
            return;
        }
        let (body, _hit) = self
            .cache
            .get_or_load(&path, || fs.read_file(ctx, &path).unwrap_or_default());
        self.stats.lock().ok += 1;
        let header = format!("HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n", body.len());
        let _ = conn.send(ctx, header.as_bytes());
        if !body.is_empty() {
            let _ = conn.send(ctx, &body);
        }
        conn.close(ctx);
    }

    /// Installs a dynamic handler for `path` (rebuild-and-swap; replaces
    /// any previous handler on the same path).
    pub fn route(&self, path: &str, handler: impl Fn() -> String + Send + Sync + 'static) {
        let mut slot = self.routes.write();
        let mut next = HashMap::clone(&slot);
        next.insert(path.to_string(), Arc::new(handler));
        *slot = Arc::new(next);
    }

    /// Server counters.
    pub fn stats(&self) -> HttpStats {
        *self.stats.lock()
    }

    /// The object cache (for policy inspection in benches).
    pub fn cache(&self) -> &Arc<WebCache> {
        &self.cache
    }
}

fn parse_request(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    if !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

/// A blocking HTTP GET; returns (status line, body).
pub fn http_get(
    ctx: &StrandCtx,
    tcp: &TcpStack,
    server: IpAddr,
    port: u16,
    path: &str,
) -> Option<(String, Vec<u8>)> {
    let conn = tcp.connect(ctx, server, port).ok()?;
    let request = format!("GET {path} HTTP/1.0\r\n\r\n");
    conn.send(ctx, request.as_bytes()).ok()?;
    let mut response = Vec::new();
    while let Some(chunk) = conn.recv(ctx) {
        response.extend_from_slice(&chunk);
    }
    conn.close(ctx);
    let sep = response.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&response[..sep]).into_owned();
    let status = head.lines().next()?.to_string();
    Some((status, response[sep + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;
    use spin_fs::{BufferCache, HybridBySize, NoCachePolicy};

    fn web_rig() -> (TwoHosts, TcpStack, Arc<HttpServer>) {
        let rig = TwoHosts::new();
        let tcp_a = TcpStack::install(&rig.a);
        let tcp_b = TcpStack::install(&rig.b);
        // The server's file system runs uncached under the object cache.
        let bc = BufferCache::new(
            rig.host_b.disk.clone(),
            rig.exec.clone(),
            64,
            Box::new(NoCachePolicy),
        );
        let fs = FileSystem::format(bc, 1000, 500);
        // Populate content.
        let fs2 = fs.clone();
        rig.exec.spawn("setup", move |ctx| {
            fs2.create("/index.html").unwrap();
            fs2.write_file(ctx, "/index.html", b"<html>SPIN</html>")
                .unwrap();
            fs2.create("/big.mpg").unwrap();
            fs2.write_file(ctx, "/big.mpg", &vec![7u8; 100_000])
                .unwrap();
        });
        rig.exec.run_until_idle();
        let cache = Arc::new(WebCache::new(
            1 << 20,
            Box::new(HybridBySize {
                large_threshold: 64 * 1024,
            }),
        ));
        let server = HttpServer::start(&rig.b, &tcp_b, fs, cache, 80);
        (rig, tcp_a, server)
    }

    #[test]
    fn get_serves_file_content() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/index.html");
        });
        rig.exec.run_until_idle();
        let (status, body) = got.lock().clone().expect("response");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert_eq!(body, b"<html>SPIN</html>");
        assert_eq!(server.stats().ok, 1);
    }

    #[test]
    fn missing_files_are_404() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("client", move |ctx| {
            *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/nope");
        });
        rig.exec.run_until_idle();
        let (status, _) = got.lock().clone().expect("response");
        assert!(status.contains("404"));
        assert_eq!(server.stats().not_found, 1);
    }

    #[test]
    fn small_files_cache_large_files_bypass() {
        let (rig, tcp_a, server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let tcp2 = tcp_a.clone();
        rig.exec.spawn("client", move |ctx| {
            for _ in 0..2 {
                http_get(ctx, &tcp2, dst, 80, "/index.html").expect("ok");
                http_get(ctx, &tcp2, dst, 80, "/big.mpg").expect("ok");
            }
        });
        rig.exec.run_until_idle();
        let cs = server.cache().stats();
        assert_eq!(cs.hits, 1, "second /index.html is a cache hit");
        assert_eq!(cs.bypasses, 2, "/big.mpg is never cached");
    }

    #[test]
    fn cached_requests_are_faster() {
        let (rig, tcp_a, _server) = web_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let clock = rig.exec.clock().clone();
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = times.clone();
        rig.exec.spawn("client", move |ctx| {
            for _ in 0..2 {
                let t0 = clock.now();
                http_get(ctx, &tcp_a, dst, 80, "/index.html").expect("ok");
                t2.lock().push(clock.now() - t0);
            }
        });
        rig.exec.run_until_idle();
        let t = times.lock();
        assert!(
            t[1] < t[0],
            "cached ({}) must beat uncached ({}) — the §5.4 claim",
            t[1],
            t[0]
        );
    }
}
