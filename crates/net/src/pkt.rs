//! Packet headers: Ethernet, IPv4, UDP, TCP, ICMP.
//!
//! Real wire formats with real encode/decode and the Internet checksum, so
//! the protocol graph of Figure 5 pushes genuine byte frames between
//! layers and hosts.

use bytes::{Bytes, BytesMut};

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr(u32::from_be_bytes([a, b, c, d]))
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// IP protocol numbers used in the stack.
pub mod proto {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// The Internet checksum (RFC 1071) over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// A 14-byte Ethernet header (addresses abbreviated to the simulation's
/// wire endpoints, padded to MAC width on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherHeader {
    pub src: u32,
    pub dst: u32,
    pub ethertype: u16,
}

impl EtherHeader {
    pub const LEN: usize = 14;

    /// Serializes the header followed by `payload`.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN + payload.len());
        b.extend_from_slice(&self.encode_header());
        b.extend_from_slice(payload);
        b.freeze()
    }

    /// Serializes just the 14 header bytes — the chain path prepends this
    /// segment without copying the payload.
    pub fn encode_header(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN);
        b.extend_from_slice(&[0, 0]); // dst MAC padding to 6 bytes
        b.extend_from_slice(&self.dst.to_be_bytes());
        b.extend_from_slice(&[0, 0]); // src MAC padding to 6 bytes
        b.extend_from_slice(&self.src.to_be_bytes());
        b.extend_from_slice(&self.ethertype.to_be_bytes());
        b.freeze()
    }

    /// Parses a frame into (header, payload).
    pub fn decode(frame: &Bytes) -> Option<(EtherHeader, Bytes)> {
        if frame.len() < Self::LEN {
            return None;
        }
        let dst = u32::from_be_bytes(frame[2..6].try_into().ok()?);
        let src = u32::from_be_bytes(frame[8..12].try_into().ok()?);
        let ethertype = u16::from_be_bytes(frame[12..14].try_into().ok()?);
        Some((
            EtherHeader {
                src,
                dst,
                ethertype,
            },
            frame.slice(Self::LEN..),
        ))
    }
}

/// A 20-byte IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: IpAddr,
    pub dst: IpAddr,
    pub protocol: u8,
    pub ttl: u8,
    pub total_len: u16,
}

impl Ipv4Header {
    pub const LEN: usize = 20;

    /// Serializes the header (checksum computed) followed by `payload`.
    pub fn encode(src: IpAddr, dst: IpAddr, protocol: u8, ttl: u8, payload: &[u8]) -> Bytes {
        let header = Self::encode_header(src, dst, protocol, ttl, payload.len());
        let mut b = BytesMut::with_capacity(Self::LEN + payload.len());
        b.extend_from_slice(&header);
        b.extend_from_slice(payload);
        b.freeze()
    }

    /// Serializes just the 20 header bytes (checksum computed) for a
    /// payload of `payload_len` bytes — the chain path prepends this
    /// segment without copying the payload.
    pub fn encode_header(
        src: IpAddr,
        dst: IpAddr,
        protocol: u8,
        ttl: u8,
        payload_len: usize,
    ) -> Bytes {
        let total_len = (Self::LEN + payload_len) as u16;
        let mut h = [0u8; Self::LEN];
        h[0] = 0x45; // v4, IHL 5
        h[2..4].copy_from_slice(&total_len.to_be_bytes());
        h[8] = ttl;
        h[9] = protocol;
        h[12..16].copy_from_slice(&src.0.to_be_bytes());
        h[16..20].copy_from_slice(&dst.0.to_be_bytes());
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        Bytes::copy_from_slice(&h)
    }

    /// Parses and checksum-verifies a packet into (header, payload).
    pub fn decode(packet: &Bytes) -> Option<(Ipv4Header, Bytes)> {
        if packet.len() < Self::LEN || packet[0] != 0x45 {
            return None;
        }
        if internet_checksum(&packet[..Self::LEN]) != 0 {
            return None;
        }
        let total_len = u16::from_be_bytes(packet[2..4].try_into().ok()?);
        if (total_len as usize) > packet.len() {
            return None;
        }
        let header = Ipv4Header {
            ttl: packet[8],
            protocol: packet[9],
            src: IpAddr(u32::from_be_bytes(packet[12..16].try_into().ok()?)),
            dst: IpAddr(u32::from_be_bytes(packet[16..20].try_into().ok()?)),
            total_len,
        };
        Some((header, packet.slice(Self::LEN..total_len as usize)))
    }
}

/// An 8-byte UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub len: u16,
}

impl UdpHeader {
    pub const LEN: usize = 8;

    /// Serializes header + payload.
    pub fn encode(src_port: u16, dst_port: u16, payload: &[u8]) -> Bytes {
        let header = Self::encode_header(src_port, dst_port, payload.len());
        let mut b = BytesMut::with_capacity(Self::LEN + payload.len());
        b.extend_from_slice(&header);
        b.extend_from_slice(payload);
        b.freeze()
    }

    /// Serializes just the 8 header bytes for a payload of `payload_len`
    /// bytes — the chain path prepends this segment without copying the
    /// payload.
    pub fn encode_header(src_port: u16, dst_port: u16, payload_len: usize) -> Bytes {
        let len = (Self::LEN + payload_len) as u16;
        let mut b = BytesMut::with_capacity(Self::LEN);
        b.extend_from_slice(&src_port.to_be_bytes());
        b.extend_from_slice(&dst_port.to_be_bytes());
        b.extend_from_slice(&len.to_be_bytes());
        b.extend_from_slice(&[0, 0]); // checksum optional over simulated wire
        b.freeze()
    }

    /// Parses a datagram into (header, payload).
    pub fn decode(datagram: &Bytes) -> Option<(UdpHeader, Bytes)> {
        if datagram.len() < Self::LEN {
            return None;
        }
        let header = UdpHeader {
            src_port: u16::from_be_bytes(datagram[0..2].try_into().ok()?),
            dst_port: u16::from_be_bytes(datagram[2..4].try_into().ok()?),
            len: u16::from_be_bytes(datagram[4..6].try_into().ok()?),
        };
        if (header.len as usize) < Self::LEN || (header.len as usize) > datagram.len() {
            return None;
        }
        Some((header, datagram.slice(Self::LEN..header.len as usize)))
    }
}

/// TCP flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.rst as u8) << 2 | (self.ack as u8) << 4
    }
    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A 20-byte TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
}

impl TcpHeader {
    pub const LEN: usize = 20;

    /// Serializes header + payload.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN + payload.len());
        b.extend_from_slice(&self.encode_header());
        b.extend_from_slice(payload);
        b.freeze()
    }

    /// Serializes just the 20 header bytes — the chain path prepends this
    /// segment without copying the payload.
    pub fn encode_header(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN);
        b.extend_from_slice(&self.src_port.to_be_bytes());
        b.extend_from_slice(&self.dst_port.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(&self.ack.to_be_bytes());
        b.extend_from_slice(&[0x50, self.flags.to_byte()]); // offset 5, flags
        b.extend_from_slice(&self.window.to_be_bytes());
        b.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        b.freeze()
    }

    /// Builds the wire segment as a zero-copy chain: header segment +
    /// payload segment, byte-identical to [`TcpHeader::encode`].
    pub fn encode_chain(&self, payload: Bytes) -> spin_sal::BufChain {
        let mut c = spin_sal::BufChain::from_bytes(payload);
        c.prepend(self.encode_header());
        c
    }

    /// Parses a segment into (header, payload).
    pub fn decode(segment: &Bytes) -> Option<(TcpHeader, Bytes)> {
        if segment.len() < Self::LEN {
            return None;
        }
        Some((
            TcpHeader {
                src_port: u16::from_be_bytes(segment[0..2].try_into().ok()?),
                dst_port: u16::from_be_bytes(segment[2..4].try_into().ok()?),
                seq: u32::from_be_bytes(segment[4..8].try_into().ok()?),
                ack: u32::from_be_bytes(segment[8..12].try_into().ok()?),
                flags: TcpFlags::from_byte(segment[13]),
                window: u16::from_be_bytes(segment[14..16].try_into().ok()?),
            },
            segment.slice(Self::LEN..),
        ))
    }
}

/// ICMP message types used by ping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpKind {
    EchoRequest,
    EchoReply,
}

/// An 8-byte ICMP echo header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    pub kind: IcmpKind,
    pub ident: u16,
    pub seq: u16,
}

impl IcmpHeader {
    pub const LEN: usize = 8;

    /// Serializes header + payload.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN + payload.len());
        b.extend_from_slice(&[
            match self.kind {
                IcmpKind::EchoRequest => 8,
                IcmpKind::EchoReply => 0,
            },
            0,
            0,
            0,
        ]);
        b.extend_from_slice(&self.ident.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(payload);
        b.freeze()
    }

    /// Parses a message into (header, payload).
    pub fn decode(msg: &Bytes) -> Option<(IcmpHeader, Bytes)> {
        if msg.len() < Self::LEN {
            return None;
        }
        let kind = match msg[0] {
            8 => IcmpKind::EchoRequest,
            0 => IcmpKind::EchoReply,
            _ => return None,
        };
        Some((
            IcmpHeader {
                kind,
                ident: u16::from_be_bytes(msg[4..6].try_into().ok()?),
                seq: u16::from_be_bytes(msg[6..8].try_into().ok()?),
            },
            msg.slice(Self::LEN..),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_addr_display() {
        assert_eq!(IpAddr::new(10, 0, 0, 1).to_string(), "10.0.0.1");
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let data = [
            0x45u8, 0x00, 0x00, 0x1c, 0, 0, 0, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2,
        ];
        let csum = internet_checksum(&data);
        let mut with = data;
        with[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_handles_odd_lengths() {
        assert_ne!(internet_checksum(&[1, 2, 3]), internet_checksum(&[1, 2]));
    }

    #[test]
    fn ether_round_trip() {
        let h = EtherHeader {
            src: 1,
            dst: 2,
            ethertype: ETHERTYPE_IPV4,
        };
        let frame = h.encode(b"payload");
        let (h2, p) = EtherHeader::decode(&frame).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&p[..], b"payload");
    }

    #[test]
    fn ipv4_round_trip_and_checksum_rejection() {
        let src = IpAddr::new(10, 0, 0, 1);
        let dst = IpAddr::new(10, 0, 0, 2);
        let pkt = Ipv4Header::encode(src, dst, proto::UDP, 64, b"data");
        let (h, p) = Ipv4Header::decode(&pkt).unwrap();
        assert_eq!(h.src, src);
        assert_eq!(h.dst, dst);
        assert_eq!(h.protocol, proto::UDP);
        assert_eq!(&p[..], b"data");
        // Corrupt a byte: checksum must reject.
        let mut bad = pkt.to_vec();
        bad[13] ^= 0xFF;
        assert!(Ipv4Header::decode(&Bytes::from(bad)).is_none());
    }

    #[test]
    fn udp_round_trip_and_length_check() {
        let d = UdpHeader::encode(1000, 2000, b"ping");
        let (h, p) = UdpHeader::decode(&d).unwrap();
        assert_eq!((h.src_port, h.dst_port), (1000, 2000));
        assert_eq!(&p[..], b"ping");
        assert!(UdpHeader::decode(&Bytes::from_static(b"tiny")).is_none());
    }

    #[test]
    fn tcp_round_trip_with_flags() {
        let h = TcpHeader {
            src_port: 80,
            dst_port: 1234,
            seq: 0xDEAD_BEEF,
            ack: 0x1234_5678,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 8192,
        };
        let seg = h.encode(b"x");
        let (h2, p) = TcpHeader::decode(&seg).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&p[..], b"x");
    }

    #[test]
    fn chain_encoders_match_copy_encoders_byte_for_byte() {
        let eth = EtherHeader {
            src: 3,
            dst: 9,
            ethertype: ETHERTYPE_IPV4,
        };
        let mut chain = spin_sal::BufChain::from_bytes(Bytes::from_static(b"inner"));
        chain.prepend(eth.encode_header());
        assert_eq!(chain.to_bytes(), eth.encode(b"inner"));

        let src = IpAddr::new(10, 0, 0, 1);
        let dst = IpAddr::new(10, 0, 0, 2);
        let mut ip = spin_sal::BufChain::from_bytes(Bytes::from_static(b"datagram"));
        ip.prepend(Ipv4Header::encode_header(
            src,
            dst,
            proto::UDP,
            64,
            ip.len(),
        ));
        assert_eq!(
            ip.to_bytes(),
            Ipv4Header::encode(src, dst, proto::UDP, 64, b"datagram")
        );

        let mut udp = spin_sal::BufChain::from_bytes(Bytes::from_static(b"ping"));
        udp.prepend(UdpHeader::encode_header(1000, 2000, udp.len()));
        assert_eq!(udp.to_bytes(), UdpHeader::encode(1000, 2000, b"ping"));

        let tcp = TcpHeader {
            src_port: 80,
            dst_port: 1234,
            seq: 7,
            ack: 9,
            flags: TcpFlags {
                ack: true,
                ..Default::default()
            },
            window: 4096,
        };
        assert_eq!(
            tcp.encode_chain(Bytes::from_static(b"seg")).to_bytes(),
            tcp.encode(b"seg")
        );
    }

    #[test]
    fn icmp_round_trip() {
        let h = IcmpHeader {
            kind: IcmpKind::EchoRequest,
            ident: 7,
            seq: 3,
        };
        let m = h.encode(b"abcdefgh");
        let (h2, p) = IcmpHeader::decode(&m).unwrap();
        assert_eq!(h, h2);
        assert_eq!(p.len(), 8);
    }
}
