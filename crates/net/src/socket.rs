//! The unified typed socket layer over the protocol graph.
//!
//! Pre-webscale, the stack exposed three ad-hoc entry points — `udp_bind`
//! (a bare handler), `udp_channel` (a handler feeding a channel) and the
//! TCP listener's blocking `accept` loop — each forcing one strand per
//! endpoint. [`UdpSocket`] replaces the first two with one type that is
//! also [`Pollable`], so a single strand parked on a
//! [`crate::poll::NetPoller`] can drain any number of sockets.
//!
//! Charging story: binding is control-plane (one keyed install, exactly
//! what `udp_bind` charged — nothing); the per-datagram path charges are
//! unchanged because the delivery handler is the same keyed `UDP.PktArrived`
//! handler as before, merely ending in a queue push plus an uncharged
//! readiness note instead of user code.

use crate::pkt::IpAddr;
use crate::poll::{interest, Pollable, Registration};
use crate::stack::{NetError, NetStack, UdpPacket};
use spin_check::sync::Mutex;
use spin_core::{DispatchError, Identity};
use spin_sched::{KChannel, StrandCtx};
use std::sync::Arc;

/// A typed UDP endpoint: bound to a local port, optionally queueing
/// inbound datagrams, registrable with a poller.
pub struct UdpSocket {
    stack: NetStack,
    port: u16,
    /// Present in queue mode ([`UdpSocket::bind`]); absent in tap mode
    /// ([`UdpSocket::bind_with`]), where the handler consumes datagrams.
    queue: Option<Arc<KChannel<UdpPacket>>>,
    /// The poller registration, shared with the delivery handler so
    /// readiness notes reach whichever poller adopts this socket.
    reg: Arc<Mutex<Option<Registration>>>,
}

impl UdpSocket {
    /// Binds `port`, queueing up to `depth` inbound datagrams for
    /// [`UdpSocket::recv`]/[`UdpSocket::try_recv`] (excess is dropped, as
    /// a datagram service may). The charge profile is identical to the
    /// old `udp_channel`: one keyed install, per-datagram delivery paid by
    /// the packet's own raise.
    // uncharged: socket setup is control-plane; the packet path charges per hop.
    pub fn bind(
        stack: &NetStack,
        port: u16,
        label: &str,
        depth: usize,
    ) -> Result<Arc<UdpSocket>, DispatchError> {
        let queue = KChannel::new(stack.executor().clone(), depth);
        let reg: Arc<Mutex<Option<Registration>>> = Arc::new(Mutex::new(None));
        let q2 = queue.clone();
        let r2 = reg.clone();
        Self::install(stack, port, label, move |p| {
            q2.try_push(p.clone());
            if let Some(r) = r2.lock().as_ref() {
                r.note(interest::READABLE);
            }
        })?;
        Ok(Arc::new(UdpSocket {
            stack: stack.clone(),
            port,
            queue: Some(queue),
            reg,
        }))
    }

    /// Binds `port` with an in-path handler (the paper's `udp_bind`
    /// idiom): `handler` runs inside the datagram's own `UDP.PktArrived`
    /// raise, and nothing is queued on the socket.
    // uncharged: socket setup is control-plane; the packet path charges per hop.
    pub fn bind_with(
        stack: &NetStack,
        port: u16,
        label: &str,
        handler: impl Fn(&UdpPacket) + Send + Sync + 'static,
    ) -> Result<Arc<UdpSocket>, DispatchError> {
        Self::install(stack, port, label, handler)?;
        Ok(Arc::new(UdpSocket {
            stack: stack.clone(),
            port,
            queue: None,
            reg: Arc::new(Mutex::new(None)),
        }))
    }

    // uncharged: one keyed install on `UDP.PktArrived` — N bound ports
    // cost one lookup per datagram, not N guard evaluations.
    fn install(
        stack: &NetStack,
        port: u16,
        label: &str,
        handler: impl Fn(&UdpPacket) + Send + Sync + 'static,
    ) -> Result<spin_core::HandlerId, DispatchError> {
        stack.topology().note("UDP.PktArrived", label);
        stack.events().udp_arrived.install_keyed(
            Identity::extension(label),
            &stack.events().udp_port_key,
            u64::from(port),
            move |p: &UdpPacket| handler(p),
        )
    }

    /// The bound local port.
    // uncharged: accessor.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks until a datagram arrives (queue mode only; `None` in tap
    /// mode or after close).
    // uncharged: blocking costs virtual time on the scheduler's account.
    pub fn recv(&self, ctx: &StrandCtx) -> Option<UdpPacket> {
        self.queue.as_ref()?.recv(ctx)
    }

    /// Takes a queued datagram without blocking.
    // uncharged: queue pop; delivery was charged on the packet's raise.
    pub fn try_recv(&self) -> Option<UdpPacket> {
        self.queue.as_ref()?.try_recv()
    }

    /// Sends a datagram from this socket's port.
    // charged: the full `SendPacket` + NIC transmit path.
    pub fn send_to(&self, dst: IpAddr, dst_port: u16, payload: &[u8]) -> Result<(), NetError> {
        self.stack.udp_send(self.port, dst, dst_port, payload)
    }
}

impl Pollable for UdpSocket {
    // uncharged: registration is control-plane.
    fn register(&self, r: Registration) -> u8 {
        let level = match &self.queue {
            Some(q) if !q.is_empty() => interest::READABLE,
            _ => 0,
        };
        *self.reg.lock() = Some(r);
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    #[test]
    fn queue_mode_matches_a_hand_rolled_channel_bind() {
        // Back-compat equivalence: `UdpSocket::bind` behaves exactly like
        // the old `udp_channel` idiom (inline keyed install + KChannel).
        let rig = TwoHosts::new();
        let sock = UdpSocket::bind(&rig.b, 7, "sock", 16).unwrap();
        let legacy = KChannel::new(rig.exec.clone(), 16);
        let l2 = legacy.clone();
        rig.b
            .events()
            .udp_arrived
            .install_keyed(
                Identity::extension("legacy"),
                &rig.b.events().udp_port_key,
                8,
                move |p: &UdpPacket| {
                    l2.try_push(p.clone());
                },
            )
            .unwrap();
        let a = rig.a.clone();
        let dst = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            for i in 0..4u8 {
                a.udp_send(100, dst, 7, &[i]).unwrap();
                a.udp_send(100, dst, 8, &[i]).unwrap();
            }
        });
        rig.exec.run_until_idle();
        let mut new_way = Vec::new();
        while let Some(p) = sock.try_recv() {
            new_way.push(p.payload.to_vec());
        }
        let mut old_way = Vec::new();
        while let Some(p) = legacy.try_recv() {
            old_way.push(p.payload.to_vec());
        }
        assert_eq!(new_way, old_way);
        assert_eq!(new_way.len(), 4);
    }

    #[test]
    fn tap_mode_runs_in_the_packet_path() {
        let rig = TwoHosts::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        let _sock = UdpSocket::bind_with(&rig.b, 9, "tap", move |p| {
            g2.lock().push(p.payload.to_vec());
        })
        .unwrap();
        let a = rig.a.clone();
        let dst = rig.b.ip_on(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            a.udp_send(1, dst, 9, b"abc").unwrap();
        });
        rig.exec.run_until_idle();
        assert_eq!(got.lock().as_slice(), &[b"abc".to_vec()]);
    }
}
