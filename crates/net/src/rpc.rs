//! A remote procedure call package over UDP (Figure 5's "RPC" box).
//!
//! Procedures are registered by name; calls carry a request id, block the
//! calling strand until the reply, and retransmit on timeout (the usual
//! at-least-once datagram RPC). Both stub directions run entirely in the
//! kernel, as in the paper.
//!
//! Degraded-mode operation: retransmissions back off exponentially on the
//! virtual clock up to a configurable cap ([`RpcConfig`]), so a lossy or
//! fault-injected wire converges instead of hammering. Every retransmit
//! is counted in [`RpcStats`] and, when observability is wired on the
//! stack, in the net domain's `retries` counter.

use crate::pkt::IpAddr;
use crate::stack::NetStack;
use bytes::{Bytes, BytesMut};
use spin_check::sync::Mutex;
use spin_check::sync::{AtomicU64, Ordering};
use spin_core::DispatchError;
use spin_sal::Nanos;
use spin_sched::{KChannel, StrandCtx};
use std::collections::HashMap;
use std::sync::Arc;

/// The UDP port carrying RPC traffic.
pub const RPC_PORT: u16 = 3001;

/// Reply timeout before a retransmission.
const RPC_TIMEOUT: Nanos = 100_000_000;

/// Retries before giving up.
const RPC_RETRIES: u32 = 3;

/// Retry and backoff policy for [`Rpc::call`]. All timing is virtual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// Reply timeout for the first attempt.
    pub base_timeout: Nanos,
    /// Cap on the per-attempt timeout as backoff doubles it.
    pub max_timeout: Nanos,
    /// Total attempts (the first transmission plus retransmissions).
    pub attempts: u32,
}

impl Default for RpcConfig {
    fn default() -> RpcConfig {
        RpcConfig {
            base_timeout: RPC_TIMEOUT,
            max_timeout: 4 * RPC_TIMEOUT,
            attempts: RPC_RETRIES,
        }
    }
}

/// Cumulative call/retry counters for one [`Rpc`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    /// Calls issued.
    pub calls: u64,
    /// Retransmissions (attempts beyond each call's first).
    pub retries: u64,
    /// Calls that exhausted every attempt.
    pub timeouts: u64,
}

#[derive(Default)]
struct AtomicRpcStats {
    calls: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
}

/// RPC errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retries.
    Timeout,
    /// The remote had no such procedure.
    NoProcedure(String),
}

/// A server-side procedure.
pub type Procedure = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

const TAG_CALL: u8 = 0;
const TAG_REPLY: u8 = 1;
const TAG_NO_PROC: u8 = 2;

/// In-flight calls awaiting replies, keyed by call id.
type PendingCalls = HashMap<u64, Arc<KChannel<(u8, Bytes)>>>;

/// The RPC package bound to one host's stack.
#[derive(Clone)]
pub struct Rpc {
    stack: NetStack,
    procedures: Arc<Mutex<HashMap<String, Procedure>>>,
    pending: Arc<Mutex<PendingCalls>>,
    next_id: Arc<AtomicU64>,
    config: RpcConfig,
    stats: Arc<AtomicRpcStats>,
}

impl Rpc {
    /// Installs the package (binds the RPC port) with the default policy.
    pub fn install(stack: &NetStack) -> Result<Rpc, DispatchError> {
        Rpc::install_with(stack, RpcConfig::default())
    }

    /// Installs the package with an explicit retry/backoff policy.
    pub fn install_with(stack: &NetStack, config: RpcConfig) -> Result<Rpc, DispatchError> {
        let rpc = Rpc {
            stack: stack.clone(),
            procedures: Arc::new(Mutex::new(HashMap::new())),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_id: Arc::new(AtomicU64::new(1)),
            config,
            stats: Arc::new(AtomicRpcStats::default()),
        };
        let rpc2 = rpc.clone();
        crate::socket::UdpSocket::bind_with(stack, RPC_PORT, "RPC", move |p| {
            rpc2.on_datagram(p.ip.src, &p.payload);
        })?;
        Ok(rpc)
    }

    /// Cumulative call/retry counters.
    pub fn stats(&self) -> RpcStats {
        RpcStats {
            calls: self.stats.calls.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            retries: self.stats.retries.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            timeouts: self.stats.timeouts.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }

    /// Registers a named procedure.
    pub fn register(&self, name: &str, f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static) {
        self.procedures.lock().insert(name.to_string(), Arc::new(f));
    }

    fn on_datagram(&self, src: IpAddr, payload: &Bytes) {
        if payload.len() < 9 {
            return;
        }
        let tag = payload[0];
        let id = u64::from_be_bytes(payload[1..9].try_into().expect("length checked"));
        match tag {
            TAG_CALL => {
                // name-len(2) name args...
                if payload.len() < 11 {
                    return;
                }
                let nlen = u16::from_be_bytes(payload[9..11].try_into().expect("len")) as usize;
                if payload.len() < 11 + nlen {
                    return;
                }
                let name = String::from_utf8_lossy(&payload[11..11 + nlen]).into_owned();
                let args = &payload[11 + nlen..];
                let proc = self.procedures.lock().get(&name).cloned();
                let (tag, body) = match proc {
                    Some(f) => (TAG_REPLY, f(args)),
                    None => (TAG_NO_PROC, name.into_bytes()),
                };
                let mut b = BytesMut::with_capacity(9 + body.len());
                b.extend_from_slice(&[tag]);
                b.extend_from_slice(&id.to_be_bytes());
                b.extend_from_slice(&body);
                let _ = self.stack.udp_send(RPC_PORT, src, RPC_PORT, &b.freeze());
            }
            TAG_REPLY | TAG_NO_PROC => {
                let waiter = self.pending.lock().get(&id).cloned();
                if let Some(ch) = waiter {
                    ch.try_push((tag, payload.slice(9..)));
                }
            }
            _ => {}
        }
    }

    /// Calls `name` on `dst`, blocking until the reply (with retries).
    pub fn call(
        &self,
        ctx: &StrandCtx,
        dst: IpAddr,
        name: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, RpcError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let ch = KChannel::new(self.stack.executor().clone(), 1);
        self.pending.lock().insert(id, ch.clone());

        let mut b = BytesMut::with_capacity(11 + name.len() + args.len());
        b.extend_from_slice(&[TAG_CALL]);
        b.extend_from_slice(&id.to_be_bytes());
        b.extend_from_slice(&(name.len() as u16).to_be_bytes());
        b.extend_from_slice(name.as_bytes());
        b.extend_from_slice(args);
        let request = b.freeze();

        let exec = self.stack.executor().clone();
        self.stats.calls.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        let result = (|| {
            let mut timeout = self.config.base_timeout;
            for attempt in 0..self.config.attempts {
                if attempt > 0 {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                    if let Some(obs) = self.stack.obs() {
                        obs.counters.retries.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                    }
                }
                let _ = self.stack.udp_send(RPC_PORT, dst, RPC_PORT, &request);
                let waiter = ctx.id();
                let e2 = exec.clone();
                let timer = exec
                    .timers()
                    .schedule_at(exec.clock().now() + timeout, move |_| e2.unblock(waiter));
                // Capped exponential backoff: each retransmission waits
                // twice as long, up to the configured ceiling.
                timeout = (timeout * 2).min(self.config.max_timeout);
                let got = match ch.try_recv() {
                    Some(r) => Some(r),
                    None => {
                        // Either the reply or the timeout wakes us; an
                        // empty channel after waking means timeout.
                        ctx.block();
                        ch.try_recv()
                    }
                };
                exec.timers().cancel(timer);
                match got {
                    Some((TAG_REPLY, body)) => return Ok(body.to_vec()),
                    Some((_, body)) => {
                        return Err(RpcError::NoProcedure(
                            String::from_utf8_lossy(&body).into_owned(),
                        ))
                    }
                    None => continue, // retransmit
                }
            }
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            Err(RpcError::Timeout)
        })();
        self.pending.lock().remove(&id);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    fn rig() -> (TwoHosts, Rpc, Rpc) {
        let rig = TwoHosts::new();
        let a = Rpc::install(&rig.a).unwrap();
        let b = Rpc::install(&rig.b).unwrap();
        (rig, a, b)
    }

    #[test]
    fn call_returns_the_procedure_result() {
        let (rig, a, b) = rig();
        b.register("sum", |args| {
            let total: u64 = args.iter().map(|&x| x as u64).sum();
            total.to_be_bytes().to_vec()
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(0u64));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            let reply = a.call(ctx, dst, "sum", &[1, 2, 3]).unwrap();
            *g2.lock() = u64::from_be_bytes(reply.try_into().unwrap());
        });
        rig.exec.run_until_idle();
        assert_eq!(*got.lock(), 6);
    }

    #[test]
    fn unknown_procedure_is_reported() {
        let (rig, a, _b) = rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            *g2.lock() = Some(a.call(ctx, dst, "nope", &[]));
        });
        rig.exec.run_until_idle();
        assert_eq!(
            got.lock().clone().unwrap(),
            Err(RpcError::NoProcedure("nope".to_string()))
        );
    }

    #[test]
    fn retries_back_off_exponentially_and_are_counted() {
        let rig = TwoHosts::new();
        let a = Rpc::install_with(
            &rig.a,
            RpcConfig {
                base_timeout: 100_000_000,
                max_timeout: 400_000_000,
                attempts: 4,
            },
        )
        .unwrap();
        let b = Rpc::install(&rig.b).unwrap();
        // Drop the first two requests: the call succeeds on attempt 3,
        // after 100 ms + 200 ms of backed-off waiting.
        rig.board.ethernet.set_drop_filter(|i| i < 2);
        b.register("echo", |args| args.to_vec());
        let dst = rig.b_ip(Medium::Ethernet);
        let clock = rig.exec.clock().clone();
        let elapsed = Arc::new(Mutex::new(0u64));
        let e2 = elapsed.clone();
        let a2 = a.clone();
        rig.exec.spawn("caller", move |ctx| {
            let t0 = clock.now();
            a2.call(ctx, dst, "echo", b"degraded").unwrap();
            *e2.lock() = clock.now() - t0;
        });
        rig.exec.run_until_idle();
        let stats = a.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.retries, 2, "two retransmissions before success");
        assert_eq!(stats.timeouts, 0);
        // The caller wakes at each attempt's timer: 100 ms, then 200 ms,
        // then 400 ms for the successful third attempt — 700 ms total.
        // (A fixed 100 ms timeout would have finished at 300 ms.)
        let e = *elapsed.lock();
        assert!(
            e >= 700_000_000,
            "backoff doubled the second and third waits, got {e}"
        );
        assert!(e < 800_000_000, "the call converged, got {e}");
    }

    #[test]
    fn exhausted_attempts_time_out_and_are_counted() {
        let rig = TwoHosts::new();
        let a = Rpc::install_with(
            &rig.a,
            RpcConfig {
                base_timeout: 10_000_000,
                max_timeout: 20_000_000,
                attempts: 3,
            },
        )
        .unwrap();
        let _b = Rpc::install(&rig.b).unwrap();
        rig.board.ethernet.set_drop_filter(|_| true); // dead wire
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        let a2 = a.clone();
        rig.exec.spawn("caller", move |ctx| {
            *g2.lock() = Some(a2.call(ctx, dst, "echo", b"x"));
        });
        rig.exec.run_until_idle();
        assert_eq!(got.lock().clone().unwrap(), Err(RpcError::Timeout));
        let stats = a.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn lost_requests_are_retransmitted() {
        let (rig, a, b) = rig();
        // Drop the first two frames on the wire: the first call attempt
        // (request) and its retry's request... then let traffic through.
        rig.board.ethernet.set_drop_filter(|i| i < 1);
        b.register("echo", |args| args.to_vec());
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            *g2.lock() = a.call(ctx, dst, "echo", b"persist").unwrap();
        });
        rig.exec.run_until_idle();
        assert_eq!(&got.lock()[..], b"persist");
    }
}
