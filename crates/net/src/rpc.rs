//! A remote procedure call package over UDP (Figure 5's "RPC" box).
//!
//! Procedures are registered by name; calls carry a request id, block the
//! calling strand until the reply, and retransmit on timeout (the usual
//! at-least-once datagram RPC). Both stub directions run entirely in the
//! kernel, as in the paper.

use crate::pkt::IpAddr;
use crate::stack::NetStack;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use spin_core::DispatchError;
use spin_sal::Nanos;
use spin_sched::{KChannel, StrandCtx};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The UDP port carrying RPC traffic.
pub const RPC_PORT: u16 = 3001;

/// Reply timeout before a retransmission.
const RPC_TIMEOUT: Nanos = 100_000_000;

/// Retries before giving up.
const RPC_RETRIES: u32 = 3;

/// RPC errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retries.
    Timeout,
    /// The remote had no such procedure.
    NoProcedure(String),
}

/// A server-side procedure.
pub type Procedure = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

const TAG_CALL: u8 = 0;
const TAG_REPLY: u8 = 1;
const TAG_NO_PROC: u8 = 2;

/// In-flight calls awaiting replies, keyed by call id.
type PendingCalls = HashMap<u64, Arc<KChannel<(u8, Bytes)>>>;

/// The RPC package bound to one host's stack.
#[derive(Clone)]
pub struct Rpc {
    stack: NetStack,
    procedures: Arc<Mutex<HashMap<String, Procedure>>>,
    pending: Arc<Mutex<PendingCalls>>,
    next_id: Arc<AtomicU64>,
}

impl Rpc {
    /// Installs the package (binds the RPC port).
    pub fn install(stack: &NetStack) -> Result<Rpc, DispatchError> {
        let rpc = Rpc {
            stack: stack.clone(),
            procedures: Arc::new(Mutex::new(HashMap::new())),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_id: Arc::new(AtomicU64::new(1)),
        };
        let rpc2 = rpc.clone();
        stack.udp_bind(RPC_PORT, "RPC", move |p| {
            rpc2.on_datagram(p.ip.src, &p.payload);
        })?;
        Ok(rpc)
    }

    /// Registers a named procedure.
    pub fn register(&self, name: &str, f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static) {
        self.procedures.lock().insert(name.to_string(), Arc::new(f));
    }

    fn on_datagram(&self, src: IpAddr, payload: &Bytes) {
        if payload.len() < 9 {
            return;
        }
        let tag = payload[0];
        let id = u64::from_be_bytes(payload[1..9].try_into().expect("length checked"));
        match tag {
            TAG_CALL => {
                // name-len(2) name args...
                if payload.len() < 11 {
                    return;
                }
                let nlen = u16::from_be_bytes(payload[9..11].try_into().expect("len")) as usize;
                if payload.len() < 11 + nlen {
                    return;
                }
                let name = String::from_utf8_lossy(&payload[11..11 + nlen]).into_owned();
                let args = &payload[11 + nlen..];
                let proc = self.procedures.lock().get(&name).cloned();
                let (tag, body) = match proc {
                    Some(f) => (TAG_REPLY, f(args)),
                    None => (TAG_NO_PROC, name.into_bytes()),
                };
                let mut b = BytesMut::with_capacity(9 + body.len());
                b.extend_from_slice(&[tag]);
                b.extend_from_slice(&id.to_be_bytes());
                b.extend_from_slice(&body);
                let _ = self.stack.udp_send(RPC_PORT, src, RPC_PORT, &b.freeze());
            }
            TAG_REPLY | TAG_NO_PROC => {
                let waiter = self.pending.lock().get(&id).cloned();
                if let Some(ch) = waiter {
                    ch.try_push((tag, payload.slice(9..)));
                }
            }
            _ => {}
        }
    }

    /// Calls `name` on `dst`, blocking until the reply (with retries).
    pub fn call(
        &self,
        ctx: &StrandCtx,
        dst: IpAddr,
        name: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, RpcError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let ch = KChannel::new(self.stack.executor().clone(), 1);
        self.pending.lock().insert(id, ch.clone());

        let mut b = BytesMut::with_capacity(11 + name.len() + args.len());
        b.extend_from_slice(&[TAG_CALL]);
        b.extend_from_slice(&id.to_be_bytes());
        b.extend_from_slice(&(name.len() as u16).to_be_bytes());
        b.extend_from_slice(name.as_bytes());
        b.extend_from_slice(args);
        let request = b.freeze();

        let exec = self.stack.executor().clone();
        let result = (|| {
            for _ in 0..RPC_RETRIES {
                let _ = self.stack.udp_send(RPC_PORT, dst, RPC_PORT, &request);
                let waiter = ctx.id();
                let e2 = exec.clone();
                let timer = exec
                    .timers()
                    .schedule_at(exec.clock().now() + RPC_TIMEOUT, move |_| {
                        e2.unblock(waiter)
                    });
                let got = match ch.try_recv() {
                    Some(r) => Some(r),
                    None => {
                        // Either the reply or the timeout wakes us; an
                        // empty channel after waking means timeout.
                        ctx.block();
                        ch.try_recv()
                    }
                };
                exec.timers().cancel(timer);
                match got {
                    Some((TAG_REPLY, body)) => return Ok(body.to_vec()),
                    Some((_, body)) => {
                        return Err(RpcError::NoProcedure(
                            String::from_utf8_lossy(&body).into_owned(),
                        ))
                    }
                    None => continue, // retransmit
                }
            }
            Err(RpcError::Timeout)
        })();
        self.pending.lock().remove(&id);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    fn rig() -> (TwoHosts, Rpc, Rpc) {
        let rig = TwoHosts::new();
        let a = Rpc::install(&rig.a).unwrap();
        let b = Rpc::install(&rig.b).unwrap();
        (rig, a, b)
    }

    #[test]
    fn call_returns_the_procedure_result() {
        let (rig, a, b) = rig();
        b.register("sum", |args| {
            let total: u64 = args.iter().map(|&x| x as u64).sum();
            total.to_be_bytes().to_vec()
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(0u64));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            let reply = a.call(ctx, dst, "sum", &[1, 2, 3]).unwrap();
            *g2.lock() = u64::from_be_bytes(reply.try_into().unwrap());
        });
        rig.exec.run_until_idle();
        assert_eq!(*got.lock(), 6);
    }

    #[test]
    fn unknown_procedure_is_reported() {
        let (rig, a, _b) = rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            *g2.lock() = Some(a.call(ctx, dst, "nope", &[]));
        });
        rig.exec.run_until_idle();
        assert_eq!(
            got.lock().clone().unwrap(),
            Err(RpcError::NoProcedure("nope".to_string()))
        );
    }

    #[test]
    fn lost_requests_are_retransmitted() {
        let (rig, a, b) = rig();
        // Drop the first two frames on the wire: the first call attempt
        // (request) and its retry's request... then let traffic through.
        rig.board.ethernet.set_drop_filter(|i| i < 1);
        b.register("echo", |args| args.to_vec());
        let dst = rig.b_ip(Medium::Ethernet);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        rig.exec.spawn("caller", move |ctx| {
            *g2.lock() = a.call(ctx, dst, "echo", b"persist").unwrap();
        });
        rig.exec.run_until_idle();
        assert_eq!(&got.lock()[..], b"persist");
    }
}
