//! The `/metrics` in-kernel extension: splices the observability
//! subsystem onto the in-kernel web server, the same way the HTTP
//! extension itself splices the stack onto the file system (§5.4).
//!
//! Serving a scrape is ordinary kernel work and pays ordinary costs: the
//! page is produced by raising the kernel's `Obs.Snapshot` event through
//! the dispatcher (charged like any event) and shipped through the full
//! TCP path. Only the *collection* of the numbers is free — the
//! spin-obs cost-model invariant.

use crate::http::{HttpServer, Request, Response};
use spin_core::Event;
use std::sync::Arc;

/// Installs the `/metrics` route on `server`. `snapshot` is the
/// `Obs.Snapshot` event returned by `Kernel::install_obs` (importable
/// from the `ObsService` domain by any extension).
pub fn install_metrics(server: &Arc<HttpServer>, snapshot: Event<(), String>) {
    server.route("/metrics", move |_req: &Request| {
        let page = snapshot
            .raise(())
            .unwrap_or_else(|e| format!("# Obs.Snapshot failed: {e:?}\n"));
        Response::ok(page.into_bytes()).with_header("Content-Type", "text/plain; version=0.0.4")
    });
}
