//! Active messages as a kernel extension (Figure 5's "A.M." box).
//!
//! "The RPC and A.M. extensions, for example, implement the network
//! transport for a remote procedure call package and active messages
//! \[von Eicken et al. 92\]" (§5.3). An active message names its handler
//! directly: the receiver dispatches on a small handler index with no
//! intermediate queueing, entirely within the kernel.

use crate::pkt::IpAddr;
use crate::stack::NetStack;
use bytes::{Bytes, BytesMut};
use spin_check::sync::Mutex;
use spin_core::DispatchError;
use std::collections::HashMap;
use std::sync::Arc;

/// The UDP port carrying active messages.
pub const AM_PORT: u16 = 3000;

/// An active-message handler: receives (source, four word arguments,
/// bulk payload).
pub type AmHandler = Arc<dyn Fn(IpAddr, [u64; 4], &[u8]) + Send + Sync>;

/// The active-messages extension for one host.
#[derive(Clone)]
pub struct ActiveMessages {
    stack: NetStack,
    handlers: Arc<Mutex<HashMap<u32, AmHandler>>>,
}

impl ActiveMessages {
    /// Installs the extension (binds the AM port).
    pub fn install(stack: &NetStack) -> Result<ActiveMessages, DispatchError> {
        let handlers: Arc<Mutex<HashMap<u32, AmHandler>>> = Arc::new(Mutex::new(HashMap::new()));
        let h2 = handlers.clone();
        crate::socket::UdpSocket::bind_with(stack, AM_PORT, "A.M.", move |p| {
            if p.payload.len() < 36 {
                return;
            }
            let idx = u32::from_be_bytes(p.payload[0..4].try_into().expect("length checked"));
            let mut args = [0u64; 4];
            for (i, a) in args.iter_mut().enumerate() {
                let off = 4 + i * 8;
                *a = u64::from_be_bytes(p.payload[off..off + 8].try_into().expect("length"));
            }
            let handler = h2.lock().get(&idx).cloned();
            if let Some(f) = handler {
                f(p.ip.src, args, &p.payload[36..]);
            }
        })?;
        Ok(ActiveMessages {
            stack: stack.clone(),
            handlers,
        })
    }

    /// Registers the handler for index `idx`.
    pub fn register(&self, idx: u32, f: impl Fn(IpAddr, [u64; 4], &[u8]) + Send + Sync + 'static) {
        self.handlers.lock().insert(idx, Arc::new(f));
    }

    /// Sends an active message invoking handler `idx` on `dst`.
    pub fn send(&self, dst: IpAddr, idx: u32, args: [u64; 4], payload: &[u8]) {
        let mut b = BytesMut::with_capacity(36 + payload.len());
        b.extend_from_slice(&idx.to_be_bytes());
        for a in args {
            b.extend_from_slice(&a.to_be_bytes());
        }
        b.extend_from_slice(payload);
        let msg: Bytes = b.freeze();
        let _ = self.stack.udp_send(AM_PORT, dst, AM_PORT, &msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    #[test]
    fn handlers_fire_with_args_and_payload() {
        let rig = TwoHosts::new();
        let am_a = ActiveMessages::install(&rig.a).unwrap();
        let am_b = ActiveMessages::install(&rig.b).unwrap();
        let got = Arc::new(Mutex::new(None));
        let g2 = got.clone();
        am_b.register(7, move |src, args, payload| {
            *g2.lock() = Some((src, args, payload.to_vec()));
        });
        let dst = rig.b_ip(Medium::Atm);
        let a_ip = rig.a.ip_on(Medium::Atm);
        rig.exec.spawn("sender", move |_| {
            am_a.send(dst, 7, [1, 2, 3, 4], b"bulk");
        });
        rig.exec.run_until_idle();
        let g = got.lock().clone().expect("message delivered");
        assert_eq!(g.0, a_ip);
        assert_eq!(g.1, [1, 2, 3, 4]);
        assert_eq!(g.2, b"bulk");
    }

    #[test]
    fn unregistered_indices_are_dropped() {
        let rig = TwoHosts::new();
        let am_a = ActiveMessages::install(&rig.a).unwrap();
        let _am_b = ActiveMessages::install(&rig.b).unwrap();
        let dst = rig.b_ip(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            am_a.send(dst, 99, [0; 4], b"");
        });
        // Nothing to assert beyond "no panic / clean completion".
        assert_eq!(
            rig.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }

    #[test]
    fn round_trip_reply_via_active_message() {
        let rig = TwoHosts::new();
        let am_a = ActiveMessages::install(&rig.a).unwrap();
        let am_b = ActiveMessages::install(&rig.b).unwrap();
        // B's handler 1 replies with handler 2 to the source.
        let am_b2 = am_b.clone();
        am_b.register(1, move |src, args, _| {
            am_b2.send(src, 2, [args[0] + 1, 0, 0, 0], b"");
        });
        let got = Arc::new(Mutex::new(0u64));
        let g2 = got.clone();
        am_a.register(2, move |_, args, _| {
            *g2.lock() = args[0];
        });
        let dst = rig.b_ip(Medium::Ethernet);
        rig.exec.spawn("sender", move |_| {
            am_a.send(dst, 1, [41, 0, 0, 0], b"");
        });
        rig.exec.run_until_idle();
        assert_eq!(*got.lock(), 42);
    }
}
