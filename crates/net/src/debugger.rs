//! The network debugger (§5.1's `core` includes "a network debugger
//! \[Redell 88\]" — Topaz-style teledebugging).
//!
//! A small kernel extension that answers debugging requests arriving over
//! UDP: peek and poke physical memory (through capabilities the operator
//! granted it), read kernel statistics, and list the event topology. A
//! remote workstation can debug this one even when its local console is
//! wedged — the protocol thread and the stack are all that must survive.

use crate::pkt::IpAddr;
use crate::stack::NetStack;
use bytes::{Bytes, BytesMut};
use spin_check::sync::Mutex;
use spin_core::DispatchError;
use spin_sal::{FrameId, PhysMem};
use spin_sched::StrandCtx;
use std::sync::Arc;

/// The UDP port the debugger listens on.
pub const DEBUG_PORT: u16 = 2345;

const OP_PEEK: u8 = 1;
const OP_POKE: u8 = 2;
const OP_STATS: u8 = 3;
const OP_TOPOLOGY: u8 = 4;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// The in-kernel debugger extension.
pub struct NetDebugger {
    requests_served: Arc<Mutex<u64>>,
}

impl NetDebugger {
    /// Installs the debugger on `stack`, with access to `mem` limited to
    /// frames below `frame_limit` (the operator's grant).
    pub fn install(
        stack: &NetStack,
        mem: PhysMem,
        frame_limit: u32,
    ) -> Result<Arc<NetDebugger>, DispatchError> {
        let served = Arc::new(Mutex::new(0u64));
        let s2 = served.clone();
        let stack2 = stack.clone();
        let topo = stack.topology().clone();
        crate::socket::UdpSocket::bind_with(stack, DEBUG_PORT, "NetDbg", move |p| {
            *s2.lock() += 1;
            let reply = Self::handle(&stack2, &mem, frame_limit, &topo, &p.payload);
            let _ = stack2.udp_send(DEBUG_PORT, p.ip.src, p.header.src_port, &reply);
        })?;
        Ok(Arc::new(NetDebugger {
            requests_served: served,
        }))
    }

    fn handle(
        stack: &NetStack,
        mem: &PhysMem,
        frame_limit: u32,
        topo: &crate::stack::Topology,
        req: &Bytes,
    ) -> Bytes {
        let mut out = BytesMut::new();
        if req.is_empty() {
            out.extend_from_slice(&[STATUS_ERR]);
            return out.freeze();
        }
        match req[0] {
            OP_PEEK if req.len() >= 11 => {
                let frame = u32::from_be_bytes(req[1..5].try_into().expect("len"));
                let offset = u32::from_be_bytes(req[5..9].try_into().expect("len")) as usize;
                let len = u16::from_be_bytes(req[9..11].try_into().expect("len")) as usize;
                if frame >= frame_limit || len > 1024 || offset + len > spin_sal::PAGE_SIZE {
                    out.extend_from_slice(&[STATUS_ERR]);
                } else {
                    let mut buf = vec![0u8; len];
                    mem.read(FrameId(frame), offset, &mut buf);
                    out.extend_from_slice(&[STATUS_OK]);
                    out.extend_from_slice(&buf);
                }
            }
            OP_POKE if req.len() >= 9 => {
                let frame = u32::from_be_bytes(req[1..5].try_into().expect("len"));
                let offset = u32::from_be_bytes(req[5..9].try_into().expect("len")) as usize;
                let data = &req[9..];
                if frame >= frame_limit || offset + data.len() > spin_sal::PAGE_SIZE {
                    out.extend_from_slice(&[STATUS_ERR]);
                } else {
                    mem.write(FrameId(frame), offset, data);
                    out.extend_from_slice(&[STATUS_OK]);
                }
            }
            OP_STATS => {
                let s = stack.stats();
                out.extend_from_slice(&[STATUS_OK]);
                for v in [s.frames_in, s.frames_out, s.bytes_in, s.bytes_out] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            OP_TOPOLOGY => {
                out.extend_from_slice(&[STATUS_OK]);
                out.extend_from_slice(topo.render().as_bytes());
            }
            _ => out.extend_from_slice(&[STATUS_ERR]),
        }
        out.freeze()
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        *self.requests_served.lock()
    }
}

/// A remote debugging client.
pub struct DebugClient {
    stack: NetStack,
    target: IpAddr,
    replies: Arc<crate::socket::UdpSocket>,
}

impl DebugClient {
    /// Attaches to `target`'s debugger from `stack`.
    pub fn attach(stack: &NetStack, target: IpAddr) -> Result<DebugClient, DispatchError> {
        let replies = crate::socket::UdpSocket::bind(stack, DEBUG_PORT + 1, "NetDbg client", 8)?;
        Ok(DebugClient {
            stack: stack.clone(),
            target,
            replies,
        })
    }

    fn transact(&self, ctx: &StrandCtx, req: &[u8]) -> Option<Bytes> {
        self.stack
            .udp_send(DEBUG_PORT + 1, self.target, DEBUG_PORT, req)
            .ok()?;
        let reply = self.replies.recv(ctx)?;
        if reply.payload.first() == Some(&STATUS_OK) {
            Some(reply.payload.slice(1..))
        } else {
            None
        }
    }

    /// Reads `len` bytes at (frame, offset) of the target's memory.
    pub fn peek(&self, ctx: &StrandCtx, frame: u32, offset: u32, len: u16) -> Option<Vec<u8>> {
        let mut req = vec![OP_PEEK];
        req.extend_from_slice(&frame.to_be_bytes());
        req.extend_from_slice(&offset.to_be_bytes());
        req.extend_from_slice(&len.to_be_bytes());
        self.transact(ctx, &req).map(|b| b.to_vec())
    }

    /// Writes bytes at (frame, offset) of the target's memory.
    pub fn poke(&self, ctx: &StrandCtx, frame: u32, offset: u32, data: &[u8]) -> bool {
        let mut req = vec![OP_POKE];
        req.extend_from_slice(&frame.to_be_bytes());
        req.extend_from_slice(&offset.to_be_bytes());
        req.extend_from_slice(data);
        self.transact(ctx, &req).is_some()
    }

    /// Fetches the target's network counters (in, out, bytes in, bytes out).
    pub fn stats(&self, ctx: &StrandCtx) -> Option<[u64; 4]> {
        let b = self.transact(ctx, &[OP_STATS])?;
        if b.len() < 32 {
            return None;
        }
        let mut out = [0u64; 4];
        for (i, v) in out.iter_mut().enumerate() {
            *v = u64::from_be_bytes(b[i * 8..(i + 1) * 8].try_into().ok()?);
        }
        Some(out)
    }

    /// Fetches the target's Figure 5 topology as text.
    pub fn topology(&self, ctx: &StrandCtx) -> Option<String> {
        self.transact(ctx, &[OP_TOPOLOGY])
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    fn rig() -> (TwoHosts, Arc<NetDebugger>, DebugClient) {
        let rig = TwoHosts::new();
        let dbg = NetDebugger::install(&rig.b, rig.host_b.mem.clone(), 16).unwrap();
        let client = DebugClient::attach(&rig.a, rig.b.ip_on(Medium::Ethernet)).unwrap();
        (rig, dbg, client)
    }

    #[test]
    fn peek_and_poke_target_memory_remotely() {
        let (rig, dbg, client) = rig();
        rig.host_b.mem.write(FrameId(3), 100, b"panic log here");
        let got = Arc::new(Mutex::new((Vec::new(), false, Vec::new())));
        let g2 = got.clone();
        rig.exec.spawn("operator", move |ctx| {
            let peeked = client.peek(ctx, 3, 100, 14).expect("granted frame");
            let poked = client.poke(ctx, 3, 100, b"PATCHED");
            let after = client.peek(ctx, 3, 100, 7).expect("granted frame");
            *g2.lock() = (peeked, poked, after);
        });
        rig.exec.run_until_idle();
        let g = got.lock();
        assert_eq!(&g.0, b"panic log here");
        assert!(g.1);
        assert_eq!(&g.2, b"PATCHED");
        assert_eq!(dbg.requests_served(), 3);
    }

    #[test]
    fn grants_are_enforced() {
        let (rig, _dbg, client) = rig();
        let denied = Arc::new(Mutex::new(false));
        let d2 = denied.clone();
        rig.exec.spawn("attacker", move |ctx| {
            // Frame 99 is outside the operator's grant of 16 frames.
            *d2.lock() = client.peek(ctx, 99, 0, 8).is_none();
        });
        rig.exec.run_until_idle();
        assert!(*denied.lock());
    }

    #[test]
    fn stats_and_topology_are_readable() {
        let (rig, _dbg, client) = rig();
        let got = Arc::new(Mutex::new((None, None)));
        let g2 = got.clone();
        rig.exec.spawn("operator", move |ctx| {
            let stats = client.stats(ctx);
            let topo = client.topology(ctx);
            *g2.lock() = (stats, topo);
        });
        rig.exec.run_until_idle();
        let g = got.lock();
        let stats = g.0.expect("stats");
        assert!(stats[0] >= 1, "the target saw at least our request frames");
        assert!(g.1.as_ref().expect("topology").contains("IP.PacketArrived"));
    }
}
