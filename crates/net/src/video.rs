//! The networked video system (§1.2, §5.4, Figure 6).
//!
//! "The server is structured as three kernel extensions, one that uses the
//! local file system to read video frames from the disk, another that
//! sends the video out over the network, and a third that registers itself
//! as a handler on the SendPacket event, transforming the single send into
//! a multicast to a list of clients. ... On the client, an extension
//! awaits incoming video packets, decompresses and writes them directly to
//! the frame buffer."
//!
//! "Because each outgoing packet is pushed through the protocol graph only
//! once, and not once per client stream, SPIN's server can support a
//! larger number of clients" — reproduced here: the per-frame protocol
//! work happens once, and the multicast handler fans out at the driver
//! boundary.

use crate::pkt::{proto, IpAddr, UdpHeader};
use crate::stack::{NetStack, SendRequest, SendVerdict};
use spin_check::sync::Mutex;
use spin_core::Identity;
use spin_fs::FileSystem;
use spin_sal::Nanos;
use spin_sched::StrandId;
use std::sync::Arc;

/// The UDP port video streams use.
pub const VIDEO_PORT: u16 = 4000;

/// The sentinel "multicast group" address the server sends to.
pub const MULTICAST_GROUP: IpAddr = IpAddr::new(239, 0, 0, 1);

/// Per-byte CPU cost of software decompression on the client.
const DECOMPRESS_NS_PER_BYTE_X100: u64 = 300; // 3 ns/byte

/// Server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VideoServerStats {
    pub frames_sent: u64,
    pub packets_multicast: u64,
    pub bytes_read: u64,
}

/// The video server extension bundle.
pub struct VideoServer {
    clients: Arc<Mutex<Vec<IpAddr>>>,
    stats: Arc<Mutex<VideoServerStats>>,
    strand: StrandId,
}

impl VideoServer {
    /// Starts the server: streams `path` at `fps` frames of `frame_size`
    /// bytes for `frames` frames, multicasting to the registered clients.
    /// Packets ride the medium that routes to each client's address.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        stack: &NetStack,
        fs: FileSystem,
        path: &str,
        frame_size: usize,
        fps: u64,
        frames: u64,
        packet_size: usize,
    ) -> Arc<VideoServer> {
        let clients: Arc<Mutex<Vec<IpAddr>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Mutex::new(VideoServerStats::default()));

        // Extension 3: the SendPacket multicast handler. It claims video
        // packets addressed to the group and fans them out at the driver
        // boundary, so the protocol graph above runs once per packet.
        let c2 = clients.clone();
        let stack2 = stack.clone();
        let st2 = stats.clone();
        stack
            .events()
            .send_packet
            .install_guarded(
                Identity::extension("VideoMulticast"),
                |req: &SendRequest| req.dst == MULTICAST_GROUP && req.protocol == proto::UDP,
                move |req: &SendRequest| {
                    let targets = c2.lock().clone();
                    for dst in targets {
                        let _ = stack2.transmit(dst, proto::UDP, req.payload.clone());
                        st2.lock().packets_multicast += 1;
                    }
                    SendVerdict::Suppressed
                },
            )
            .expect("install multicast handler");
        stack.topology().note("SendPacket", "Video multicast");

        // Extensions 1+2: the reader/sender strand.
        let exec = stack.executor().clone();
        let stack3 = stack.clone();
        let st3 = stats.clone();
        let path = path.to_string();
        let frame_interval: Nanos = 1_000_000_000 / fps.max(1);
        let strand = exec.spawn("video-server", move |ctx| {
            let file_size = fs_size(&fs, &path);
            for frame in 0..frames {
                let offset = (frame * frame_size as u64) % file_size.max(1);
                let data = fs
                    .read_at(ctx, &path, offset, frame_size)
                    .unwrap_or_else(|_| vec![0u8; frame_size]);
                st3.lock().bytes_read += data.len() as u64;
                // Chunk the frame into packets and push each through the
                // graph once.
                for chunk in data.chunks(packet_size) {
                    let datagram = UdpHeader::encode(VIDEO_PORT, VIDEO_PORT, chunk);
                    let _ = stack3.send_ip(MULTICAST_GROUP, proto::UDP, datagram);
                }
                st3.lock().frames_sent += 1;
                ctx.sleep(frame_interval);
            }
        });

        Arc::new(VideoServer {
            clients,
            stats,
            strand,
        })
    }

    /// Subscribes a client address to the stream.
    pub fn add_client(&self, addr: IpAddr) {
        self.clients.lock().push(addr);
    }

    /// Server counters.
    pub fn stats(&self) -> VideoServerStats {
        *self.stats.lock()
    }

    /// The streaming strand (diagnostics).
    pub fn strand(&self) -> StrandId {
        self.strand
    }
}

fn fs_size(fs: &FileSystem, path: &str) -> u64 {
    fs.size_of(path).unwrap_or(0)
}

/// Client statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VideoClientStats {
    pub packets: u64,
    pub bytes: u64,
}

/// The video client extension: decompress and blit to the framebuffer.
pub struct VideoClient {
    stats: Arc<Mutex<VideoClientStats>>,
}

impl VideoClient {
    /// Installs the client on `stack`, consuming the video port.
    pub fn install(stack: &NetStack) -> Arc<VideoClient> {
        let stats = Arc::new(Mutex::new(VideoClientStats::default()));
        let st2 = stats.clone();
        let clock = stack.executor().clock().clone();
        let profile = stack.executor().profile().clone();
        crate::socket::UdpSocket::bind_with(stack, VIDEO_PORT, "Video", move |p| {
            // Decompress...
            clock.advance(p.payload.len() as u64 * DECOMPRESS_NS_PER_BYTE_X100 / 100);
            // ...and write to the frame buffer.
            clock.advance(profile.copy(p.payload.len()));
            let mut s = st2.lock();
            s.packets += 1;
            s.bytes += p.payload.len() as u64;
        })
        .expect("bind video port");
        Arc::new(VideoClient { stats })
    }

    /// Client counters.
    pub fn stats(&self) -> VideoClientStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;
    use spin_fs::{BufferCache, LruPolicy};

    fn movie(rig: &TwoHosts, bytes: usize) -> FileSystem {
        let bc = BufferCache::new(
            rig.host_a.disk.clone(),
            rig.exec.clone(),
            128,
            Box::new(LruPolicy::default()),
        );
        let fs = FileSystem::format(bc, 0, 1000);
        let fs2 = fs.clone();
        rig.exec.spawn("setup", move |ctx| {
            fs2.create("/movie").unwrap();
            fs2.write_file(ctx, "/movie", &vec![42u8; bytes]).unwrap();
        });
        rig.exec.run_until_idle();
        fs
    }

    #[test]
    fn frames_stream_to_a_client() {
        let rig = TwoHosts::new();
        let fs = movie(&rig, 100_000);
        let client = VideoClient::install(&rig.b);
        let server = VideoServer::start(&rig.a, fs, "/movie", 8_000, 30, 5, 1400);
        server.add_client(rig.b_ip(Medium::Ethernet));
        rig.exec.run_until_idle();
        let ss = server.stats();
        let cs = client.stats();
        assert_eq!(ss.frames_sent, 5);
        assert_eq!(cs.bytes, 5 * 8_000, "every frame byte must arrive");
        // 8000 bytes at 1400/packet = 6 packets per frame.
        assert_eq!(cs.packets, 5 * 6);
    }

    #[test]
    fn multicast_fans_out_once_per_client_at_the_driver() {
        let rig = TwoHosts::new();
        let fs = movie(&rig, 100_000);
        let client = VideoClient::install(&rig.b);
        let server = VideoServer::start(&rig.a, fs, "/movie", 2_800, 30, 3, 1400);
        // Two subscriptions to the same client host (distinct streams in
        // spirit; same sink here).
        server.add_client(rig.b_ip(Medium::Ethernet));
        server.add_client(rig.b_ip(Medium::Ethernet));
        rig.exec.run_until_idle();
        let ss = server.stats();
        // 3 frames x 2 packets x 2 clients at the driver boundary.
        assert_eq!(ss.packets_multicast, 12);
        assert_eq!(client.stats().packets, 12);
    }

    #[test]
    fn no_clients_means_no_transmissions() {
        let rig = TwoHosts::new();
        let fs = movie(&rig, 50_000);
        let server = VideoServer::start(&rig.a, fs, "/movie", 1_000, 30, 2, 1400);
        rig.exec.run_until_idle();
        assert_eq!(server.stats().frames_sent, 2);
        assert_eq!(server.stats().packets_multicast, 0);
    }
}
