//! TCP as a kernel extension.
//!
//! The paper's stack includes TCP among the in-kernel protocol extensions
//! (Figure 5; Table 7 lists a 5077-line TCP). The original "use\[d\] the DEC
//! OSF/1 TCP engine as a SPIN extension, and manually assert\[ed\] that the
//! code, which is written in C, is safe" (§5.3 n.2); here TCP is written
//! natively. The implementation covers what the experiments exercise:
//!
//! * three-way handshake and active/passive open,
//! * cumulative ACKs, in-order delivery with an out-of-order reassembly
//!   buffer,
//! * sender flow control from the peer's advertised window,
//! * slow start / congestion avoidance with an ssthresh halved on loss,
//! * timeout-driven retransmission,
//! * FIN close (TIME_WAIT collapsed to CLOSED; no simultaneous-open).
//!
//! Segments are processed on the protocol thread, which must never block:
//! handler work is send-and-signal only; blocking waits happen on the
//! caller's strand.

use crate::pkt::{proto, IpAddr, TcpFlags, TcpHeader};
use crate::poll::{interest, Pollable, Registration};
use crate::stack::{NetStack, TcpSegment};
use bytes::Bytes;
use spin_check::sync::{AtomicU32, Ordering};
use spin_check::sync::{Mutex, RwLock};
use spin_core::Identity;
use spin_sal::{BufChain, Nanos};
use spin_sched::{Executor, KChannel, StrandCtx, StrandId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Maximum segment size (fits the Ethernet MTU under IP + TCP headers).
pub const MSS: usize = 1400;

/// Receive window advertised to the peer.
const RECV_WINDOW: u16 = 32_768;

/// Retransmission timeout (virtual time).
const RTO: Nanos = 150_000_000;

/// SYN retry limit before `connect` fails.
const SYN_RETRIES: u32 = 4;

/// Connection-table shards: webscale churn means install/teardown from
/// every worker, so the table is striped rather than a single mutex.
const CONN_SHARDS: usize = 16;

/// Ephemeral port range base (ports wrap within `30_000..58_000`; a port
/// is only recycled after ~28k intervening connects, long after the
/// earlier connection was reaped).
const EPHEMERAL_BASE: u16 = 30_000;
const EPHEMERAL_SPAN: u32 = 28_000;

/// TCP errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpError {
    /// No listener on the destination port (RST received).
    Refused,
    /// The connection is closed.
    Closed,
    /// The handshake timed out.
    Timeout,
    /// Transmission failed (no route).
    Net(String),
}

/// Connection states (RFC 793 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ConnKey {
    local_port: u16,
    peer: IpAddr,
    peer_port: u16,
}

/// Deterministic shard assignment (splitmix64 finalizer over the key).
fn shard_of(key: &ConnKey) -> usize {
    let mut x = (u64::from(key.local_port) << 48)
        ^ (u64::from(key.peer_port) << 32)
        ^ u64::from(key.peer.0);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % CONN_SHARDS as u64) as usize
}

struct SendEntry {
    seq: u32,
    data: Bytes,
    fin: bool,
}

struct ConnState {
    state: TcpState,
    snd_una: u32,
    snd_nxt: u32,
    peer_window: u32,
    cwnd: u32,
    ssthresh: u32,
    rcv_nxt: u32,
    /// Out-of-order segments awaiting the gap to fill.
    reassembly: BTreeMap<u32, Bytes>,
    /// Sent but unacknowledged segments, oldest first.
    retransmit: VecDeque<SendEntry>,
    /// Strands blocked waiting for window space.
    send_waiters: Vec<StrandId>,
    rto_timer: Option<spin_sal::clock::TimerId>,
    retransmissions: u64,
    fin_received: bool,
}

/// One TCP connection.
pub struct TcpConn {
    key: ConnKey,
    stack: NetStack,
    exec: Arc<Executor>,
    state: Mutex<ConnState>,
    /// In-order data delivered to the application.
    incoming: Arc<KChannel<Bytes>>,
    /// Signaled when the handshake completes (or fails: payload false).
    established: Arc<KChannel<bool>>,
    /// Signaled when the close handshake fully completes.
    closed: Arc<KChannel<()>>,
    /// Poller registration: data arrival notes `READABLE`, end-of-stream
    /// notes `CLOSED` (see [`crate::poll`]).
    reg: Mutex<Option<Registration>>,
}

impl TcpConn {
    /// The connection's current state.
    pub fn state(&self) -> TcpState {
        self.state.lock().state
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.state.lock().retransmissions
    }

    /// The peer address and port.
    pub fn peer(&self) -> (IpAddr, u16) {
        (self.key.peer, self.key.peer_port)
    }

    /// The local (bound) port.
    pub fn local_port(&self) -> u16 {
        self.key.local_port
    }

    /// Received chunks buffered and not yet read (diagnostics).
    pub fn incoming_len(&self) -> usize {
        self.incoming.len()
    }

    fn send_segment(&self, flags: TcpFlags, seq: u32, payload: &[u8]) {
        let st = self.state.lock();
        let header = TcpHeader {
            src_port: self.key.local_port,
            dst_port: self.key.peer_port,
            seq,
            ack: if flags.ack { st.rcv_nxt } else { 0 },
            flags,
            window: RECV_WINDOW,
        };
        drop(st);
        let seg = header.encode(payload);
        let _ = self.stack.send_ip(self.key.peer, proto::TCP, seg);
    }

    fn usable_window(st: &ConnState) -> u32 {
        let in_flight = st.snd_nxt.wrapping_sub(st.snd_una);
        st.peer_window.min(st.cwnd).saturating_sub(in_flight)
    }

    fn arm_rto(self: &Arc<Self>, st: &mut ConnState) {
        if st.rto_timer.is_some() || st.retransmit.is_empty() {
            return;
        }
        let me = self.clone();
        let at = self.exec.clock().now() + RTO;
        st.rto_timer = Some(self.exec.timers().schedule_at(at, move |_| me.on_rto()));
    }

    fn on_rto(self: &Arc<Self>) {
        let front = {
            let mut st = self.state.lock();
            st.rto_timer = None;
            if st.retransmit.is_empty() || st.state == TcpState::Closed {
                return;
            }
            // Loss: halve into ssthresh, restart slow start.
            let in_flight = st.snd_nxt.wrapping_sub(st.snd_una);
            st.ssthresh = (in_flight / 2).max(2 * MSS as u32);
            st.cwnd = MSS as u32;
            st.retransmissions += 1;
            let e = st.retransmit.front().expect("checked non-empty");
            (e.seq, e.data.clone(), e.fin)
        };
        let (seq, data, fin) = front;
        self.send_segment(
            TcpFlags {
                ack: true,
                fin,
                ..Default::default()
            },
            seq,
            &data,
        );
        let mut st = self.state.lock();
        self.arm_rto(&mut st);
    }

    /// Sends `data`, blocking for window space as needed (copies once
    /// into a [`Bytes`]; use [`TcpConn::send_buf`] to avoid that copy).
    pub fn send(self: &Arc<Self>, ctx: &StrandCtx, data: &[u8]) -> Result<(), TcpError> {
        self.send_buf(ctx, Bytes::copy_from_slice(data))
    }

    /// Sends `data` zero-copy: segments are cheap `Bytes` slices of the
    /// buffer, prepended with headers as [`BufChain`]s, and each window's
    /// worth goes to the stack as one burst (`send_ip_burst`), amortizing
    /// the `SendPacket` raise across the window.
    pub fn send_buf(self: &Arc<Self>, ctx: &StrandCtx, data: Bytes) -> Result<(), TcpError> {
        let mut offset = 0;
        while offset < data.len() {
            // Wait for window space.
            loop {
                let mut st = self.state.lock();
                match st.state {
                    TcpState::Established | TcpState::CloseWait => {}
                    _ => return Err(TcpError::Closed),
                }
                if Self::usable_window(&st) >= 1 {
                    break;
                }
                st.send_waiters.push(ctx.id());
                drop(st);
                ctx.block();
            }
            // Slice as many segments as the window permits in one burst.
            let batch = {
                let mut st = self.state.lock();
                let mut window = Self::usable_window(&st) as usize;
                let mut batch: Vec<(IpAddr, u8, BufChain)> = Vec::new();
                while offset < data.len() && window > 0 {
                    let n = (data.len() - offset).min(MSS).min(window);
                    let chunk = data.slice(offset..offset + n);
                    let seq = st.snd_nxt;
                    st.snd_nxt = st.snd_nxt.wrapping_add(n as u32);
                    st.retransmit.push_back(SendEntry {
                        seq,
                        data: chunk.clone(),
                        fin: false,
                    });
                    let header = TcpHeader {
                        src_port: self.key.local_port,
                        dst_port: self.key.peer_port,
                        seq,
                        ack: st.rcv_nxt,
                        flags: TcpFlags {
                            ack: true,
                            ..Default::default()
                        },
                        window: RECV_WINDOW,
                    };
                    batch.push((self.key.peer, proto::TCP, header.encode_chain(chunk)));
                    offset += n;
                    window -= n;
                }
                batch
            };
            let _ = self.stack.send_ip_burst(batch);
            {
                let mut st = self.state.lock();
                self.arm_rto(&mut st);
            }
        }
        Ok(())
    }

    /// Receives the next in-order chunk; `None` once the peer has closed
    /// and all data is drained.
    pub fn recv(&self, ctx: &StrandCtx) -> Option<Bytes> {
        if let Some(b) = self.incoming.try_recv() {
            return Some(b);
        }
        {
            let st = self.state.lock();
            if st.fin_received || st.state == TcpState::Closed {
                // Drain anything that raced in.
                return self.incoming.try_recv();
            }
        }
        // Block until the protocol thread delivers or the peer closes.
        self.incoming.recv(ctx)
    }

    /// Takes a queued in-order chunk without blocking (the poller-driven
    /// read path: drain after a `READABLE` readiness event).
    pub fn try_recv(&self) -> Option<Bytes> {
        self.incoming.try_recv()
    }

    /// Receives exactly `n` bytes (concatenating chunks).
    pub fn recv_exact(&self, ctx: &StrandCtx, n: usize) -> Result<Vec<u8>, TcpError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.recv(ctx) {
                Some(b) => out.extend_from_slice(&b),
                None => return Err(TcpError::Closed),
            }
        }
        Ok(out)
    }

    /// Fires the FIN without waiting for the close handshake — the
    /// poller-driven close: the caller (a server strand multiplexing many
    /// connections) must not block per connection. Returns whether a FIN
    /// was actually sent.
    pub fn begin_close(self: &Arc<Self>) -> bool {
        let fin_seq = {
            let mut st = self.state.lock();
            match st.state {
                TcpState::Established => st.state = TcpState::FinWait1,
                TcpState::CloseWait => st.state = TcpState::LastAck,
                _ => return false,
            }
            let seq = st.snd_nxt;
            st.snd_nxt = st.snd_nxt.wrapping_add(1);
            st.retransmit.push_back(SendEntry {
                seq,
                data: Bytes::new(),
                fin: true,
            });
            seq
        };
        self.send_segment(
            TcpFlags {
                fin: true,
                ack: true,
                ..Default::default()
            },
            fin_seq,
            &[],
        );
        {
            let mut st = self.state.lock();
            self.arm_rto(&mut st);
        }
        true
    }

    /// Closes the send side and waits for the close handshake.
    pub fn close(self: &Arc<Self>, ctx: &StrandCtx) {
        if !self.begin_close() {
            return;
        }
        // Wait until fully closed (bounded by the channel close).
        let _ = self.closed.recv(ctx);
    }

    /// Handles an inbound segment (protocol-thread context; must not
    /// block).
    fn on_segment(self: &Arc<Self>, seg: &TcpSegment) {
        let h = &seg.header;
        let mut wake_senders = Vec::new();
        let mut deliver: Vec<Bytes> = Vec::new();
        let mut send_ack = false;
        let mut now_established = false;
        let mut now_closed = false;
        let mut fin_arrived = false;
        {
            let mut st = self.state.lock();
            if h.flags.rst {
                st.state = TcpState::Closed;
                st.fin_received = true;
                now_closed = true;
                wake_senders.append(&mut st.send_waiters);
            } else {
                // Handshake transitions.
                match st.state {
                    TcpState::SynSent if h.flags.syn && h.flags.ack => {
                        st.rcv_nxt = h.seq.wrapping_add(1);
                        st.snd_una = h.ack;
                        st.state = TcpState::Established;
                        now_established = true;
                        send_ack = true;
                        wake_senders.append(&mut st.send_waiters);
                    }
                    TcpState::SynReceived if h.flags.ack && !h.flags.syn => {
                        st.snd_una = h.ack;
                        st.state = TcpState::Established;
                        now_established = true;
                    }
                    _ => {}
                }
                st.peer_window = h.window as u32;

                // ACK processing.
                if h.flags.ack && seq_le(st.snd_una, h.ack) && seq_le(h.ack, st.snd_nxt) {
                    let advanced = h.ack != st.snd_una;
                    st.snd_una = h.ack;
                    while let Some(front) = st.retransmit.front() {
                        let end = front
                            .seq
                            .wrapping_add(front.data.len() as u32)
                            .wrapping_add(front.fin as u32);
                        if seq_le(end, h.ack) {
                            st.retransmit.pop_front();
                        } else {
                            break;
                        }
                    }
                    if advanced {
                        // Congestion growth: slow start then linear.
                        if st.cwnd < st.ssthresh {
                            st.cwnd += MSS as u32;
                        } else {
                            st.cwnd += (MSS * MSS) as u32 / st.cwnd.max(1);
                        }
                        if let Some(t) = st.rto_timer.take() {
                            self.exec.timers().cancel(t);
                        }
                        wake_senders.append(&mut st.send_waiters);
                        // Close-handshake progress.
                        if st.retransmit.is_empty() {
                            match st.state {
                                TcpState::FinWait1 => st.state = TcpState::FinWait2,
                                TcpState::LastAck => {
                                    st.state = TcpState::Closed;
                                    now_closed = true;
                                }
                                _ => {}
                            }
                        }
                    }
                }

                // Data and FIN processing.
                if !seg.payload.is_empty() || h.flags.fin {
                    if h.seq == st.rcv_nxt {
                        if !seg.payload.is_empty() {
                            st.rcv_nxt = st.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                            deliver.push(seg.payload.clone());
                        }
                        // Pull contiguous reassembly.
                        while let Some((&s, _)) = st.reassembly.first_key_value() {
                            if s == st.rcv_nxt {
                                let (_, data) = st.reassembly.pop_first().expect("peeked");
                                st.rcv_nxt = st.rcv_nxt.wrapping_add(data.len() as u32);
                                deliver.push(data);
                            } else {
                                break;
                            }
                        }
                        if h.flags.fin {
                            st.rcv_nxt = st.rcv_nxt.wrapping_add(1);
                            st.fin_received = true;
                            fin_arrived = true;
                            match st.state {
                                TcpState::Established => st.state = TcpState::CloseWait,
                                TcpState::FinWait2 | TcpState::FinWait1 => {
                                    st.state = TcpState::Closed;
                                    now_closed = true;
                                }
                                _ => {}
                            }
                        }
                        send_ack = true;
                    } else if seq_lt(st.rcv_nxt, h.seq) && !seg.payload.is_empty() {
                        st.reassembly.insert(h.seq, seg.payload.clone());
                        send_ack = true; // duplicate ACK for the gap
                    } else {
                        send_ack = true; // old segment: re-ACK
                    }
                }
            }
        }
        let mut note_mask = 0u8;
        if !deliver.is_empty() {
            note_mask |= interest::READABLE;
        }
        for b in deliver {
            self.incoming.try_push(b);
        }
        if fin_arrived {
            // No more data will arrive: wake any blocked receiver. Queued
            // chunks are still drained before `recv` reports end-of-stream.
            self.incoming.close();
        }
        if fin_arrived || now_closed {
            note_mask |= interest::CLOSED;
        }
        if note_mask != 0 {
            if let Some(r) = self.reg.lock().as_ref() {
                r.note(note_mask);
            }
        }
        if send_ack {
            let seq = self.state.lock().snd_nxt;
            self.send_segment(
                TcpFlags {
                    ack: true,
                    ..Default::default()
                },
                seq,
                &[],
            );
        }
        for w in wake_senders {
            self.exec.unblock(w);
        }
        if now_established {
            self.established.try_push(true);
        }
        if now_closed {
            self.incoming.close();
            self.closed.close();
        }
    }
}

impl Pollable for TcpConn {
    fn register(&self, r: Registration) -> u8 {
        let mut level = 0;
        if !self.incoming.is_empty() {
            level |= interest::READABLE;
        }
        {
            let st = self.state.lock();
            if st.fin_received || st.state == TcpState::Closed {
                level |= interest::CLOSED;
            }
        }
        *self.reg.lock() = Some(r);
        level
    }
}

/// A passive listener: pollable (readiness `ACCEPT`), with a bounded
/// backlog of established-but-unaccepted connections.
pub struct TcpListenerSocket {
    accept_ch: Arc<KChannel<Arc<TcpConn>>>,
    pub port: u16,
    reg: Mutex<Option<Registration>>,
}

impl TcpListenerSocket {
    /// Accepts the next established connection, blocking.
    pub fn accept(&self, ctx: &StrandCtx) -> Option<Arc<TcpConn>> {
        self.accept_ch.recv(ctx)
    }

    /// Accepts without blocking (the poller-driven path: drain after an
    /// `ACCEPT` readiness event).
    pub fn try_accept(&self) -> Option<Arc<TcpConn>> {
        self.accept_ch.try_recv()
    }

    /// Connections currently queued for accept.
    pub fn backlog(&self) -> usize {
        self.accept_ch.len()
    }
}

impl Pollable for TcpListenerSocket {
    fn register(&self, r: Registration) -> u8 {
        let level = if self.accept_ch.is_empty() {
            0
        } else {
            interest::ACCEPT
        };
        *self.reg.lock() = Some(r);
        level
    }
}

/// The listener snapshot: read-mostly (every SYN resolves a port),
/// rebuilt-and-swapped on `listen`.
type ListenerMap = BTreeMap<u16, Arc<TcpListenerSocket>>;

/// One stripe of the connection table (see [`shard_of`]).
type ConnShard = Mutex<BTreeMap<ConnKey, Arc<TcpConn>>>;

/// The per-host TCP extension.
#[derive(Clone)]
pub struct TcpStack {
    stack: NetStack,
    exec: Arc<Executor>,
    /// Connection table, striped by [`shard_of`]: webscale install and
    /// teardown never contend on a single stack-wide lock.
    conns: Arc<Vec<ConnShard>>,
    listeners: Arc<RwLock<Arc<ListenerMap>>>,
    next_port: Arc<AtomicU32>,
    isn: Arc<AtomicU32>,
}

impl TcpStack {
    /// Installs TCP on a stack: a handler on `TCP.PktArrived` routes
    /// segments to connections and listeners.
    pub fn install(stack: &NetStack) -> TcpStack {
        let tcp = TcpStack {
            stack: stack.clone(),
            exec: stack.executor().clone(),
            conns: Arc::new(
                (0..CONN_SHARDS)
                    .map(|_| Mutex::new(BTreeMap::new()))
                    .collect(),
            ),
            listeners: Arc::new(RwLock::new(Arc::new(BTreeMap::new()))),
            next_port: Arc::new(AtomicU32::new(0)),
            isn: Arc::new(AtomicU32::new(1_000)),
        };
        let tcp2 = tcp.clone();
        stack
            .events()
            .tcp_arrived
            .install(Identity::kernel("TCPConn"), move |seg: &TcpSegment| {
                tcp2.on_segment(seg);
            })
            .expect("install TCP segment router");
        stack.topology().note("TCP.PktArrived", "TCP connections");
        tcp
    }

    fn new_conn(&self, key: ConnKey, state: TcpState, snd_nxt: u32, rcv_nxt: u32) -> Arc<TcpConn> {
        Arc::new(TcpConn {
            key,
            stack: self.stack.clone(),
            exec: self.exec.clone(),
            state: Mutex::new(ConnState {
                state,
                snd_una: snd_nxt,
                snd_nxt,
                peer_window: RECV_WINDOW as u32,
                cwnd: 2 * MSS as u32,
                ssthresh: 64 * 1024,
                rcv_nxt,
                reassembly: BTreeMap::new(),
                retransmit: VecDeque::new(),
                send_waiters: Vec::new(),
                rto_timer: None,
                retransmissions: 0,
                fin_received: false,
            }),
            incoming: KChannel::new(self.exec.clone(), 1024),
            established: KChannel::new(self.exec.clone(), 1),
            closed: KChannel::new(self.exec.clone(), 1),
            reg: Mutex::new(None),
        })
    }

    /// Starts listening on `port` with the default backlog (64).
    pub fn listen(&self, port: u16) -> Arc<TcpListenerSocket> {
        self.listen_backlog(port, 64)
    }

    /// Starts listening on `port` with an explicit backlog depth. A SYN
    /// arriving with the backlog full is dropped (the client's SYN retry
    /// recovers), so storm-scale servers size this to their drain rate.
    pub fn listen_backlog(&self, port: u16, depth: usize) -> Arc<TcpListenerSocket> {
        let listener = Arc::new(TcpListenerSocket {
            accept_ch: KChannel::new(self.exec.clone(), depth),
            port,
            reg: Mutex::new(None),
        });
        // Rebuild-and-swap: SYN routing reads the snapshot lock-free of
        // any listen in progress.
        let mut lk = self.listeners.write();
        let mut map = (**lk).clone();
        map.insert(port, listener.clone());
        *lk = Arc::new(map);
        drop(lk);
        listener
    }

    /// Opens a connection to `dst:port`, blocking through the handshake.
    pub fn connect(
        &self,
        ctx: &StrandCtx,
        dst: IpAddr,
        port: u16,
    ) -> Result<Arc<TcpConn>, TcpError> {
        let n = self.next_port.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let local_port = EPHEMERAL_BASE + (n % EPHEMERAL_SPAN) as u16;
        let isn = self.isn.fetch_add(64_000, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let key = ConnKey {
            local_port,
            peer: dst,
            peer_port: port,
        };
        let conn = self.new_conn(key, TcpState::SynSent, isn.wrapping_add(1), 0);
        self.conns[shard_of(&key)].lock().insert(key, conn.clone());

        for _attempt in 0..SYN_RETRIES {
            // Register for the establishment/RST wakeup before the SYN can
            // possibly be answered.
            conn.state.lock().send_waiters.push(ctx.id());
            conn.send_segment(
                TcpFlags {
                    syn: true,
                    ..Default::default()
                },
                isn,
                &[],
            );
            // Wait for establishment, refusal, or a timeout tick.
            let exec = self.exec.clone();
            let waiter = ctx.id();
            let deadline = exec.clock().now() + RTO;
            let timer = self.exec.timers().schedule_at(deadline, move |_| {
                exec.unblock(waiter);
            });
            if conn.state() == TcpState::SynSent {
                ctx.block();
            }
            self.exec.timers().cancel(timer);
            match conn.state() {
                TcpState::Established => return Ok(conn),
                TcpState::Closed => {
                    self.conns[shard_of(&key)].lock().remove(&key);
                    return Err(TcpError::Refused);
                }
                _ => {}
            }
        }
        self.conns[shard_of(&key)].lock().remove(&key);
        Err(TcpError::Timeout)
    }

    fn on_segment(&self, seg: &TcpSegment) {
        let key = ConnKey {
            local_port: seg.header.dst_port,
            peer: seg.ip.src,
            peer_port: seg.header.src_port,
        };
        let shard = shard_of(&key);
        let existing = self.conns[shard].lock().get(&key).cloned();
        if let Some(conn) = existing {
            conn.on_segment(seg);
            // Reap fully closed connections.
            if conn.state() == TcpState::Closed {
                self.conns[shard].lock().remove(&key);
            }
            return;
        }
        if seg.header.flags.syn && !seg.header.flags.ack {
            let listener = self.listeners.read().get(&key.local_port).cloned();
            if let Some(listener) = listener {
                // Passive open: SYN-RECEIVED, send SYN-ACK.
                let isn = self.isn.fetch_add(64_000, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
                let conn = self.new_conn(
                    key,
                    TcpState::SynReceived,
                    isn.wrapping_add(1),
                    seg.header.seq.wrapping_add(1),
                );
                self.conns[shard].lock().insert(key, conn.clone());
                conn.send_segment(
                    TcpFlags {
                        syn: true,
                        ack: true,
                        ..Default::default()
                    },
                    isn,
                    &[],
                );
                listener.accept_ch.try_push(conn);
                if let Some(r) = listener.reg.lock().as_ref() {
                    r.note(interest::ACCEPT);
                }
                return;
            }
        }
        // No connection, no listener: refuse.
        if !seg.header.flags.rst {
            let reply = TcpHeader {
                src_port: key.local_port,
                dst_port: key.peer_port,
                seq: seg.header.ack,
                ack: seg.header.seq.wrapping_add(1),
                flags: TcpFlags {
                    rst: true,
                    ack: true,
                    ..Default::default()
                },
                window: 0,
            }
            .encode(&[]);
            let _ = self.stack.send_ip(key.peer, proto::TCP, reply);
        }
    }

    /// Open connections (diagnostics).
    pub fn connection_count(&self) -> usize {
        self.conns.iter().map(|s| s.lock().len()).sum()
    }
}

#[inline]
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[inline]
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Medium;
    use crate::testrig::TwoHosts;

    fn tcp_rig() -> (TwoHosts, TcpStack, TcpStack) {
        let rig = TwoHosts::new();
        let a = TcpStack::install(&rig.a);
        let b = TcpStack::install(&rig.b);
        (rig, a, b)
    }

    #[test]
    fn connect_and_exchange_data() {
        let (rig, a, b) = tcp_rig();
        let listener = b.listen(80);
        rig.exec.spawn("server", move |ctx| {
            let conn = listener.accept(ctx).expect("one client");
            let req = conn.recv(ctx).expect("request");
            assert_eq!(&req[..], b"ping");
            conn.send(ctx, b"pong").unwrap();
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let done = Arc::new(Mutex::new(false));
        let d2 = done.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = a.connect(ctx, dst, 80).expect("handshake");
            assert_eq!(conn.state(), TcpState::Established);
            conn.send(ctx, b"ping").unwrap();
            let reply = conn.recv(ctx).expect("reply");
            assert_eq!(&reply[..], b"pong");
            *d2.lock() = true;
        });
        rig.exec.run_until_idle();
        assert!(*done.lock());
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let (rig, a, _b) = tcp_rig();
        let dst = rig.b_ip(Medium::Ethernet);
        let result = Arc::new(Mutex::new(None));
        let r2 = result.clone();
        rig.exec.spawn("client", move |ctx| {
            *r2.lock() = Some(a.connect(ctx, dst, 81).err());
        });
        rig.exec.run_until_idle();
        assert_eq!(result.lock().clone().flatten(), Some(TcpError::Refused));
    }

    #[test]
    fn bulk_transfer_is_ordered_and_complete() {
        let (rig, a, b) = tcp_rig();
        let listener = b.listen(80);
        let received = Arc::new(Mutex::new(Vec::new()));
        let r2 = received.clone();
        rig.exec.spawn("server", move |ctx| {
            let conn = listener.accept(ctx).expect("client");
            while let Some(chunk) = conn.recv(ctx) {
                r2.lock().extend_from_slice(&chunk);
            }
        });
        let dst = rig.b_ip(Medium::Atm);
        let payload: Vec<u8> = (0..20_000).map(|i| (i % 241) as u8).collect();
        let p2 = payload.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = a.connect(ctx, dst, 80).unwrap();
            conn.send(ctx, &p2).unwrap();
            conn.close(ctx);
        });
        rig.exec.run_until_idle();
        assert_eq!(*received.lock(), payload);
    }

    #[test]
    fn retransmission_recovers_from_loss() {
        let (rig, a, b) = tcp_rig();
        // Drop every 5th frame on the Ethernet.
        rig.board.ethernet.set_drop_filter(|i| i % 5 == 4);
        let listener = b.listen(80);
        let received = Arc::new(Mutex::new(Vec::new()));
        let r2 = received.clone();
        rig.exec.spawn("server", move |ctx| {
            let conn = listener.accept(ctx).expect("client");
            while let Some(chunk) = conn.recv(ctx) {
                r2.lock().extend_from_slice(&chunk);
            }
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 199) as u8).collect();
        let p2 = payload.clone();
        let retx = Arc::new(Mutex::new(0u64));
        let rt2 = retx.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = a.connect(ctx, dst, 80).unwrap();
            conn.send(ctx, &p2).unwrap();
            // Give retransmissions time to drain before closing.
            ctx.sleep(2 * RTO * (SYN_RETRIES as u64));
            *rt2.lock() = conn.retransmissions();
            conn.close(ctx);
        });
        rig.exec.run_until_idle();
        assert_eq!(
            *received.lock(),
            payload,
            "all data must arrive despite loss"
        );
        assert!(*retx.lock() > 0, "loss must have forced retransmission");
    }

    #[test]
    fn close_handshake_reaps_connections() {
        let (rig, a, b) = tcp_rig();
        let listener = b.listen(80);
        let b2 = b.clone();
        rig.exec.spawn("server", move |ctx| {
            let conn = listener.accept(ctx).expect("client");
            // Drain to FIN, then close our side.
            while conn.recv(ctx).is_some() {}
            conn.close(ctx);
            let _ = b2;
        });
        let dst = rig.b_ip(Medium::Ethernet);
        let a2 = a.clone();
        rig.exec.spawn("client", move |ctx| {
            let conn = a2.connect(ctx, dst, 80).unwrap();
            conn.send(ctx, b"bye").unwrap();
            conn.close(ctx);
        });
        rig.exec.run_until_idle();
        assert_eq!(a.connection_count(), 0);
        assert_eq!(b.connection_count(), 0);
    }

    #[test]
    fn sequence_comparisons_wrap() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(seq_le(5, 5));
        assert!(!seq_lt(2, u32::MAX - 1));
    }
}
