//! `spin-net` — the extensible protocol stack of the SPIN reproduction.
//!
//! This crate implements §5.3's networking architecture: an x-kernel-like
//! protocol graph in which "each incoming packet is 'pushed' through the
//! protocol graph by events and 'pulled' by handlers", with user code
//! dynamically placeable anywhere in the stack. The Figure 5 boxes:
//!
//! * the link layers and the [`NetStack`] core (events, protocol thread,
//!   IP with per-protocol guards, UDP with per-port guards, ICMP/ping),
//! * [`TcpStack`] — TCP as a native extension,
//! * [`Forwarder`] — transparent UDP/TCP port forwarding (Table 6),
//! * [`ActiveMessages`] and [`Rpc`] — the A.M. and RPC transports,
//! * [`HttpServer`] — HTTP directly in the kernel (§5.4),
//! * [`VideoServer`]/[`VideoClient`] — the video system with the
//!   `SendPacket` multicast extension (Figure 6),
//! * [`measure`] — the Table 5 latency/bandwidth harnesses.

#![forbid(unsafe_code)]

pub mod am;
pub mod debugger;
pub mod forward;
pub mod http;
pub mod measure;
pub mod metrics;
pub mod netfs;
pub mod pkt;
pub mod poll;
pub mod rpc;
pub mod socket;
pub mod stack;
pub mod tcp;
pub mod testrig;
pub mod video;

pub use am::{ActiveMessages, AM_PORT};
pub use bytes::Bytes;
pub use debugger::{DebugClient, NetDebugger, DEBUG_PORT};
pub use forward::{FlowSnapshot, ForwardStats, Forwarder};
pub use http::{http_get, HttpConfig, HttpServer, HttpStats};
pub use http::{Request, Response};
pub use measure::{reliable_bandwidth, udp_round_trip};
pub use metrics::install_metrics;
pub use netfs::{NetFsClient, NetFsError, NetFsServer};
pub use pkt::{proto, IpAddr};
pub use poll::{interest, NetPoller, Pollable, ReadyBatch, Registration, Token};
pub use rpc::{Rpc, RpcError, RPC_PORT};
pub use socket::UdpSocket;
pub use stack::{
    AddressMap, IcmpPacket, IpPacket, LinkFrame, Medium, NetError, NetEvents, NetStack, NetStats,
    SendRequest, SendVerdict, TcpSegment, Topology, UdpPacket,
};
pub use tcp::{TcpConn, TcpError, TcpListenerSocket, TcpStack, TcpState};
pub use testrig::{ShardedPair, ThreeHosts, TwoHosts};
pub use video::{VideoClient, VideoServer, MULTICAST_GROUP, VIDEO_PORT};
