#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md) plus lint and format
# checks. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
