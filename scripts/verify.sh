#!/usr/bin/env bash
# Repo verification: the tier-1 gate (ROADMAP.md) plus lint and format
# checks. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> obs cost-model invariant (recorder on/off, capacity 1/64k)"
cargo test -q -p spin-bench --test obs_invariance

echo "==> chaos suite: seeded fault storm, quarantine budget, /metrics attribution"
cargo test -q --test chaos_faults

echo "==> fault-injection cost-model invariant (absent / disabled / armed-at-zero)"
cargo test -q -p spin-bench --test fault_invariance

echo "==> bench smoke: --json emission + virtual-time goldens"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
for bin in table1_sizes table2_comm fig5_stack; do
    (cd "$SMOKE_DIR" && cargo run -q --manifest-path "$OLDPWD/Cargo.toml" \
        -p spin-bench --bin "$bin" -- --json > /dev/null)
    test -s "$SMOKE_DIR/BENCH_$bin.json" || {
        echo "verify: $bin emitted no BENCH_$bin.json" >&2
        exit 1
    }
done
# table1 counts source lines (drifts with every commit): smoke-only.
# table2_comm and fig5_stack are pure virtual-time / topology output and
# must match the checked-in goldens byte-for-byte — this is the cost-model
# invariant gate: instrumentation must never move a reported number.
# Since fault containment landed, the same diff also gates the fault path:
# catch_unwind isolation and the injection hooks are compiled in here (with
# no plan armed), and must not move a golden by a single byte.
for bin in table2_comm fig5_stack; do
    diff -u "scripts/goldens/BENCH_$bin.json" "$SMOKE_DIR/BENCH_$bin.json" || {
        echo "verify: $bin diverged from scripts/goldens/BENCH_$bin.json" >&2
        exit 1
    }
done

echo "==> multicore invariance: shard barrier determinism at 1/2/4 workers"
# The sharded suites re-run every scenario at worker counts 1, 2 and 4 and
# assert byte-identical virtual outputs; s7_multicore does the same for the
# Table 6 forwarding topology (exits nonzero on any divergence). The golden
# diffs above stay the shared-timeline gate: those bins must not change by
# a byte whether or not the shard machinery is compiled in.
cargo test -q --test multicore_shards
cargo test -q -p spin-net sharded
cargo test -q -p spin-dsm sharded
(cd "$SMOKE_DIR" && cargo run -q --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p spin-bench --bin s7_multicore -- --json > /dev/null)
test -s "$SMOKE_DIR/BENCH_multicore.json" || {
    echo "verify: s7_multicore emitted no BENCH_multicore.json" >&2
    exit 1
}

echo "==> compiled dispatch: guard-set compilation invariance"
# Keyed (compiled) vs opaque (sequential) installations must charge
# identical virtual time on the real workloads, with observability absent
# (coalesced miss charges) and wired (charge-by-charge replay) alike.
cargo test -q -p spin-bench --test compiled_invariance
# s1_dispatcher_scaling asserts in-binary that compiled and sequential
# sweep columns are equal at every guard count, then measures the
# wall-clock win; its virtual rows — and the keyed forwarder's Table 6
# numbers — are golden-gated byte-for-byte with compilation enabled.
for bin in table6_forward s1_dispatcher_scaling; do
    (cd "$SMOKE_DIR" && cargo run -q --release --manifest-path "$OLDPWD/Cargo.toml" \
        -p spin-bench --bin "$bin" -- --json > /dev/null)
    diff -u "scripts/goldens/BENCH_$bin.json" "$SMOKE_DIR/BENCH_$bin.json" || {
        echo "verify: $bin diverged from scripts/goldens/BENCH_$bin.json" >&2
        exit 1
    }
done
# The wall-clock report (nondeterministic, never golden-diffed) must still
# be emitted; the concurrent raise-vs-plan-rebuild model runs in the
# spin-check suite below (raise_vs_keyed_plan_rebuild_swap, bound 2).
test -s "$SMOKE_DIR/BENCH_dispatch_compiled.json" || {
    echo "verify: s1_dispatcher_scaling emitted no BENCH_dispatch_compiled.json" >&2
    exit 1
}

echo "==> hot-swap invariance: idle machinery, mid-run swap, mid-storm bench"
# Tables 2/5/6 must not move by a byte with the swap machinery compiled in
# but idle — and a committed swap to a semantically identical forwarder
# must be invisible in the Table 6 numbers.
cargo test -q -p spin-bench --test swap_invariance
# Hold-queue reconciliation under raise/swap/rollback churn, and the
# seeded SITE_SWAP chaos storms (rollback restores the old version) run in
# the chaos/stress suites above; s8_hotswap swaps the UDP forwarder with
# >=10k packets in flight and exits nonzero on any dropped packet, any
# semantic divergence from the uninterrupted run, or any worker-count
# divergence. Its virtual outputs are golden-gated byte-for-byte.
(cd "$SMOKE_DIR" && cargo run -q --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p spin-bench --bin s8_hotswap -- --json > /dev/null)
diff -u "scripts/goldens/BENCH_hotswap.json" "$SMOKE_DIR/BENCH_hotswap.json" || {
    echo "verify: s8_hotswap diverged from scripts/goldens/BENCH_hotswap.json" >&2
    exit 1
}

echo "==> quota invariance: unlimited budgets, overload containment bench"
# Metering events, installing the scheduler quota hook and gating a
# mailbox lane with zero-valued (unlimited) budgets must not move a
# virtual-time figure by a byte — admission is free until a budget
# actually refuses.
cargo test -q -p spin-bench --test quota_invariance
# s9_overload drives a 12-shard storm (greedy flooder + slowloris +
# nine tenants) through the full escalation ladder — throttle, shed,
# quarantine, fallback swap to a degraded build — and exits nonzero if
# the ledger fails to reconcile, the well-behaved tenants' p99 leaves
# the containment bound, or any worker count diverges. Its virtual
# outputs are golden-gated byte-for-byte.
(cd "$SMOKE_DIR" && cargo run -q --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p spin-bench --bin s9_overload -- --json > /dev/null)
diff -u "scripts/goldens/BENCH_overload.json" "$SMOKE_DIR/BENCH_overload.json" || {
    echo "verify: s9_overload diverged from scripts/goldens/BENCH_overload.json" >&2
    exit 1
}

echo "==> webscale: million-connection storm on the readiness/socket API"
# The redesigned edge (DESIGN.md decision #14): readiness-equivalence
# proptests, then the s10 storm — ~10^6 connections over 12 shards
# against the single-strand poller-driven HTTP server, exiting nonzero
# on any connect failure, dropped frame/envelope, ledger mismatch,
# worker-count divergence, or super-2x per-connection wall-clock growth
# from 10^3 to 10^6. Its virtual outputs are golden-gated byte-for-byte.
cargo test -q -p spin-net --test readiness_props
cargo test -q -p spin-net --test mc_tcp
(cd "$SMOKE_DIR" && cargo run -q --release --manifest-path "$OLDPWD/Cargo.toml" \
    -p spin-bench --bin s10_webscale -- --json > /dev/null)
diff -u "scripts/goldens/BENCH_webscale.json" "$SMOKE_DIR/BENCH_webscale.json" || {
    echo "verify: s10_webscale diverged from scripts/goldens/BENCH_webscale.json" >&2
    exit 1
}
# The pre-webscale entry points are removed, not deprecated: no in-tree
# caller may use them (doc comments naming them for history are fine).
if grep -rn '\.udp_bind(\|\.udp_channel(' crates/ examples/ --include='*.rs' \
    | grep -v '^\s*//' ; then
    echo "verify: removed pre-webscale socket API called in-tree" >&2
    exit 1
fi

echo "==> spin-lint: token-level safety & determinism gate"
# The six-rule verifier (D1 determinism, D2 hash iteration, F1 sync
# facade, O1 ordering justifications, U1 unsafe containment, C1 charge
# coverage) must report zero findings, and its machine-readable report
# must match the golden byte-for-byte — so an allowlist entry can never
# slip in silently.
cargo build -q --release -p spin-check --bin spin-lint --bin spin-audit
LINT_START_NS=$(date +%s%N)
./target/release/spin-lint --json > "$SMOKE_DIR/lint_report.json"
LINT_ELAPSED_MS=$(( ($(date +%s%N) - LINT_START_NS) / 1000000 ))
diff -u scripts/goldens/lint_report.json "$SMOKE_DIR/lint_report.json" || {
    echo "verify: spin-lint diverged from scripts/goldens/lint_report.json" >&2
    exit 1
}
ALLOW_ENTRIES=$(grep -c '^\[\[allow\]\]' lint.toml)
if [ "$ALLOW_ENTRIES" -gt 10 ]; then
    echo "verify: lint.toml has $ALLOW_ENTRIES allow entries (cap: 10)" >&2
    exit 1
fi
# Runtime budget: the full-workspace lint must stay an instant pre-commit
# check (< 2s), or it stops being run.
if [ "$LINT_ELAPSED_MS" -ge 2000 ]; then
    echo "verify: spin-lint took ${LINT_ELAPSED_MS}ms (budget: 2000ms)" >&2
    exit 1
fi
echo "    spin-lint: clean in ${LINT_ELAPSED_MS}ms ($ALLOW_ENTRIES allow entries)"
# The back-compat alias must keep working for older scripts.
./target/release/spin-audit > /dev/null

echo "==> spin-check: model-check the lock-free kernel (--cfg spin_check)"
RUSTFLAGS="--cfg spin_check" CARGO_TARGET_DIR=target/spin-check \
    cargo test -q -p spin-check --tests

echo "==> spin-check: planted mutants must be caught (--cfg spin_check_mutant)"
RUSTFLAGS="--cfg spin_check --cfg spin_check_mutant" \
    CARGO_TARGET_DIR=target/spin-check-mutant \
    cargo test -q -p spin-check --test mutants

echo "==> miri (best effort): cargo miri test -p spin-obs ring"
if cargo miri --version >/dev/null 2>&1; then
    # Miri needs its sysroot (a network fetch on first run); skip cleanly
    # when it is not already set up (offline CI).
    if MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo miri setup >/dev/null 2>&1; then
        MIRIFLAGS="-Zmiri-disable-isolation" \
            cargo miri test -q -p spin-obs ring
    else
        echo "    miri sysroot unavailable (offline?); skipping"
    fi
else
    echo "    miri not installed; skipping"
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
