//! Integration: the full extension lifecycle across crates — boot, export,
//! dynamic linking against `SpinPublic`, nameserver authorization, event
//! dispatch, and §3's safety properties.

use spin_os::core::{
    CoreError, Identity, InstallDecision, Interface, Kernel, ObjectFile, ObjectFileBuilder,
};
use spin_os::sal::SimBoard;
use spin_os::vm::VmService;
use std::sync::Arc;

fn kernel() -> Kernel {
    let board = SimBoard::new();
    Kernel::boot(board.new_host(256))
}

#[test]
fn extension_links_imports_and_calls_a_core_service() {
    let k = kernel();
    let vm = VmService::install(&k);

    // A compiler-signed extension imports the Translation service.
    let mut b = ObjectFileBuilder::new("my-vm-tool");
    let trans = b.import::<spin_os::vm::TranslationService>("Translation", "service");
    let domain = k
        .load_extension(b.sign())
        .expect("links against SpinPublic");
    assert!(domain.fully_resolved());

    // Call through the resolved import: allocate a context, same service.
    let svc = trans.get().expect("resolved");
    let ctx = svc.create();
    assert!(svc.destroy(ctx).is_ok());
    drop(vm);
}

#[test]
fn unsigned_code_cannot_become_a_domain_but_asserted_code_can() {
    let k = kernel();
    let unsigned = ObjectFile::unsigned("vendor_driver", vec![]);
    assert!(matches!(
        k.load_extension(unsigned),
        Err(CoreError::UnsafeObjectFile { .. })
    ));
    let asserted = ObjectFile::unsigned("vendor_driver", vec![]).assert_safe();
    k.load_extension(asserted).expect("kernel vouches for it");
    assert_eq!(k.asserted_safe_count(), 1, "the kernel tracks its vouching");
}

#[test]
fn nameserver_authorization_gates_device_interfaces() {
    let k = kernel();
    let domain = spin_os::core::Domain::create_from_module(
        "disk-driver",
        vec![Interface::new("Disk").export("unit0", Arc::new(0u32))],
    );
    k.nameserver()
        .register_with_authorizer(
            "DiskService",
            domain,
            Identity::kernel("disk"),
            Some(Arc::new(|who: &Identity| {
                who.is_kernel() || who.name() == "fs"
            })),
        )
        .unwrap();
    let disk = k
        .nameserver()
        .import_typed::<u32>(&Identity::extension("fs"))
        .expect("fs is authorized");
    assert_eq!(disk.name(), "DiskService");
    assert_eq!(*disk, 0);
    assert!(matches!(
        k.nameserver()
            .import_typed::<u32>(&Identity::extension("game")),
        Err(CoreError::AuthorizationDenied { .. })
    ));
}

#[test]
fn event_owner_policies_compose_with_extension_guards() {
    let k = kernel();
    let (ev, owner) = k
        .dispatcher()
        .define::<u64, u64>("Service.Op", Identity::kernel("service"));
    owner.set_primary(|x| *x).unwrap();
    // Owner: deny "evil", constrain everyone else with an even-only guard.
    owner
        .set_auth(|req| {
            if req.installer.name() == "evil" {
                InstallDecision::Deny
            } else {
                InstallDecision::Allow {
                    owner_guard: Some(Arc::new(|x: &u64| x.is_multiple_of(2))),
                    constraints: None,
                }
            }
        })
        .unwrap();
    assert!(ev.install(Identity::extension("evil"), |_| 0).is_err());
    // Installer stacks a further guard: multiples of ten only.
    ev.install_guarded(Identity::extension("good"), |x| x % 10 == 0, |x| x + 1)
        .unwrap();
    assert_eq!(ev.raise(20), Ok(21), "both guards pass -> final handler");
    assert_eq!(ev.raise(4), Ok(4), "installer guard fails -> primary only");
    assert_eq!(ev.raise(15), Ok(15), "owner guard fails -> primary only");
}

#[test]
fn externalized_references_cross_the_user_boundary_safely() {
    let k = kernel();
    let vm = VmService::install(&k);
    let table = k.new_extern_table();
    // The kernel externalizes a physical-memory capability.
    let region = vm.phys.allocate(1, Default::default()).unwrap();
    let handle = table.externalize(region.clone());
    // User space returns the index; the kernel recovers the typed ref.
    let recovered = table.recover::<spin_os::vm::PhysRegion>(handle).unwrap();
    assert_eq!(recovered.id(), region.id());
    // Revocation invalidates without confusing types.
    table.revoke(handle).unwrap();
    assert!(table.recover::<spin_os::vm::PhysRegion>(handle).is_err());
}

#[test]
fn kernel_heap_reclaims_extension_garbage() {
    let k = kernel();
    // A sloppy extension allocates and forgets.
    for i in 0..10_000u64 {
        k.heap().alloc(i).expect("collector keeps the heap alive");
    }
    let stats = k.heap().stats();
    assert_eq!(stats.allocations, 10_000);
    // Explicit collection reclaims everything unreferenced.
    k.heap().collect();
    assert!(k.heap().live_bytes() < 1024);
}
