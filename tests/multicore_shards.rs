//! Multicore shard integration: cross-shard raises racing handler churn,
//! global deadlock aggregation, and deterministic fault injection on the
//! mailbox edge — all byte-identical at 1, 2 and 4 worker threads.

use spin_core::{Dispatcher, Identity};
use spin_sal::{MulticoreBoard, Nanos};
use spin_sched::{IdleOutcome, Multicore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cross-shard raises from shard A race a handler install/uninstall churn
/// loop on shard B. Every raise is delivered on B's timeline at a
/// deterministic virtual time, so the set of raises that see the extra
/// handler — and therefore the exact hit count — is a pure function of
/// virtual time, not of the OS scheduler.
#[test]
fn cross_shard_raises_race_handler_churn_deterministically() {
    let run = |workers: usize| -> (u64, u64, Nanos, Nanos, u64) {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(workers, board.lookahead());
        let a = board.new_host(16);
        let b = board.new_host(16);
        let (a_id, b_id) = (a.id, b.id);
        let disp_a = Dispatcher::new(a.clock.clone(), a.profile.clone());
        let disp_b = Dispatcher::new(b.clock.clone(), b.profile.clone());
        let ea = mc.add_host(a);
        let eb = mc.add_host(b);
        mc.wire_dispatcher(&disp_a, a_id);
        mc.wire_dispatcher(&disp_b, b_id);

        let (ev, owner) = disp_b.define::<u64, u64>("Churn.Tick", Identity::kernel("b"));
        let primary_hits = Arc::new(AtomicU64::new(0));
        let extra_hits = Arc::new(AtomicU64::new(0));
        let p2 = primary_hits.clone();
        owner
            .set_primary(move |x| {
                p2.fetch_add(1, Ordering::Relaxed);
                *x
            })
            .expect("fresh event");

        // Shard B: install/uninstall a secondary handler in a tight churn
        // loop, exercising the dispatcher's snapshot plan swap from the
        // same shard the deliveries land on.
        let churn_ev = ev.clone();
        let churn_disp = disp_b.clone();
        let churn_extra = extra_hits.clone();
        eb.spawn("churner", move |ctx| {
            for _ in 0..12 {
                let e2 = churn_extra.clone();
                let id = churn_ev
                    .install(Identity::extension("churn"), move |x: &u64| {
                        e2.fetch_add(1, Ordering::Relaxed);
                        *x
                    })
                    .expect("install");
                ctx.sleep(40_000);
                churn_disp
                    .uninstall(&churn_ev, id, &Identity::extension("churn"))
                    .expect("uninstall");
                ctx.sleep(40_000);
            }
        });

        // Shard A: fire cross-shard raises into the churn window.
        ea.spawn("raiser", move |ctx| {
            for _ in 0..25 {
                let posted = disp_a.raise_on(b_id, &ev, 1).expect("routed");
                assert!(posted.is_none(), "cross-shard raises are async");
                ctx.sleep(30_000);
            }
        });

        assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
        let st = mc.stats();
        (
            primary_hits.load(Ordering::Relaxed),
            extra_hits.load(Ordering::Relaxed),
            mc.shard(a_id).expect("shard a").host.clock.now(),
            mc.shard(b_id).expect("shard b").host.clock.now(),
            st.mail_posted,
        )
    };
    let base = run(1);
    assert_eq!(base.0, 25, "every cross-shard raise reached the primary");
    assert!(base.4 >= 25, "raises travelled via the mailbox");
    assert_eq!(run(2), base, "2 workers diverged");
    assert_eq!(run(4), base, "4 workers diverged");
}

/// A strand blocked forever on one shard is reported in the *global*
/// deadlock verdict — only once every shard is idle and no cross-shard
/// mail is in flight that could still wake it.
#[test]
fn global_deadlock_aggregates_blocked_strands_across_shards() {
    let board = MulticoreBoard::new();
    let mut mc = Multicore::new(2, board.lookahead());
    let ea = mc.add_host(board.new_host(16));
    let eb = mc.add_host(board.new_host(16));
    ea.spawn("worker", |ctx| ctx.work(50_000));
    eb.spawn("stuck", |ctx| ctx.block());
    match mc.run_until_idle() {
        IdleOutcome::Deadlock { blocked } => assert_eq!(blocked, vec!["stuck".to_string()]),
        other => panic!("expected a global deadlock, got {other:?}"),
    }
}

/// Injected delays on the mailbox edge shift deliveries by a
/// deterministic draw, so the delayed timeline is *also* identical at
/// every worker count — fault injection composes with the barrier.
#[test]
fn mailbox_delay_injection_stays_worker_count_invariant() {
    let run = |workers: usize| -> (u64, Nanos, u64) {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(workers, board.lookahead());
        let a = board.new_host(16);
        let b = board.new_host(16);
        let (a_id, b_id) = (a.id, b.id);
        let disp_a = Dispatcher::new(a.clock.clone(), a.profile.clone());
        let disp_b = Dispatcher::new(b.clock.clone(), b.profile.clone());
        let ea = mc.add_host(a);
        let _eb = mc.add_host(b);
        mc.wire_dispatcher(&disp_a, a_id);
        mc.wire_dispatcher(&disp_b, b_id);
        let plan = spin_fault::FaultPlan::new(42);
        plan.configure(
            spin_fault::SITE_MAILBOX,
            spin_fault::SiteConfig {
                delay_every: 2,
                delay_ns: 500_000,
                ..Default::default()
            },
        );
        mc.set_fault_hook(plan.hook(spin_fault::SITE_MAILBOX));

        let (ev, owner) = disp_b.define::<u64, u64>("Delayed.Tick", Identity::kernel("b"));
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        owner
            .set_primary(move |x| {
                h2.fetch_add(1, Ordering::Relaxed);
                *x
            })
            .expect("fresh event");
        ea.spawn("raiser", move |ctx| {
            for _ in 0..8 {
                let _ = disp_a.raise_on(b_id, &ev, 1).expect("routed");
                ctx.sleep(100_000);
            }
        });
        assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
        let delays = plan
            .report()
            .into_iter()
            .find(|r| r.site == spin_fault::SITE_MAILBOX)
            .expect("site configured")
            .delays;
        (
            hits.load(Ordering::Relaxed),
            mc.shard(b_id).expect("shard b").host.clock.now(),
            delays,
        )
    };
    let base = run(1);
    assert_eq!(base.0, 8, "delays shift deliveries, never lose them");
    assert!(base.2 >= 1, "the plan actually injected delays");
    assert_eq!(run(2), base, "2 workers diverged");
    assert_eq!(run(4), base, "4 workers diverged");
}
