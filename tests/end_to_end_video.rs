//! Integration: the §5.4 video pipeline end to end — file system, video
//! server strand, `SendPacket` multicast extension, T3 wire, client
//! decompression — and the Figure 6 utilization claim in miniature.

use spin_os::fs::{BufferCache, FileSystem, LruPolicy};
use spin_os::net::{Medium, TwoHosts, VideoClient, VideoServer};
use spin_os::sal::HostId;

fn movie_fs(rig: &TwoHosts, bytes: usize) -> FileSystem {
    let cache = BufferCache::new(
        rig.host_a.disk.clone(),
        rig.exec.clone(),
        256,
        Box::new(LruPolicy::default()),
    );
    let fs = FileSystem::format(cache, 0, 600);
    let fs2 = fs.clone();
    rig.exec.spawn("mkfs", move |ctx| {
        fs2.create("/movie").unwrap();
        let content: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
        fs2.write_file(ctx, "/movie", &content).unwrap();
    });
    rig.exec.run_until_idle();
    fs
}

#[test]
fn every_frame_byte_reaches_every_client() {
    let rig = TwoHosts::new();
    let fs = movie_fs(&rig, 500_000);
    let client = VideoClient::install(&rig.b);
    let frames = 10u64;
    let server = VideoServer::start(&rig.a, fs, "/movie", 12_500, 30, frames, 8_000);
    server.add_client(rig.b.ip_on(Medium::T3));
    server.add_client(rig.b.ip_on(Medium::T3));
    server.add_client(rig.b.ip_on(Medium::T3));
    rig.exec.run_until_idle();
    let cs = client.stats();
    assert_eq!(server.stats().frames_sent, frames);
    assert_eq!(
        cs.bytes,
        3 * frames * 12_500,
        "three full streams delivered"
    );
}

#[test]
fn server_cpu_grows_sublinearly_per_client_thanks_to_multicast() {
    // The §5.4 claim: "each outgoing packet is pushed through the protocol
    // graph only once, and not once per client stream". Per-client cost is
    // therefore only the driver fan-out, not a full stack traversal.
    let busy_for = |clients: u32| {
        let rig = TwoHosts::new();
        let fs = movie_fs(&rig, 200_000);
        let _client = VideoClient::install(&rig.b);
        let server = VideoServer::start(&rig.a, fs, "/movie", 12_500, 30, 10, 8_000);
        for _ in 0..clients {
            server.add_client(rig.b.ip_on(Medium::T3));
        }
        let before = rig.exec.host_busy(HostId(0));
        rig.exec.run_until_idle();
        rig.exec.host_busy(HostId(0)) - before
    };
    let one = busy_for(1);
    let eight = busy_for(8);
    assert!(eight > one, "more clients cost more CPU");
    assert!(
        eight < 8 * one,
        "multicast must beat 8 independent stack traversals ({eight} vs 8x{one})"
    );
}

#[test]
fn utilization_orders_spin_under_osf1_model() {
    // Mini Figure 6: at 8 clients, the measured SPIN utilization must sit
    // well under the modelled OSF/1 utilization.
    let rig = TwoHosts::new();
    let fs = movie_fs(&rig, 200_000);
    let _client = VideoClient::install(&rig.b);
    let server = VideoServer::start(&rig.a, fs, "/movie", 12_500, 30, 15, 8_000);
    for _ in 0..8 {
        server.add_client(rig.b.ip_on(Medium::T3));
    }
    let t0 = rig.exec.clock().now();
    rig.exec.run_until_idle();
    let elapsed = rig.exec.clock().now() - t0;
    let spin_util = rig.exec.host_busy(HostId(0)) as f64 / elapsed as f64;

    let model = spin_os::baseline::Osf1Model::new(std::sync::Arc::new(
        spin_os::sal::MachineProfile::alpha_axp_3000_400(),
    ));
    let t3 = spin_os::sal::devices::nic::NicModel::t3_dma().driver_ns;
    let osf_per_second =
        30 * model.video_read_cpu(12_500) + 30 * 8 * 2 * model.video_send_cpu(8_000, t3);
    let osf_util = osf_per_second as f64 / 1e9;
    assert!(
        spin_util < osf_util,
        "SPIN ({spin_util:.3}) must consume less CPU than OSF/1 ({osf_util:.3})"
    );
    assert!(osf_util / spin_util > 1.5, "by a material factor");
}
