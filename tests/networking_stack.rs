//! Integration: the networking stack end to end — TCP over a lossy wire,
//! HTTP through the full graph, RPC + active messages coexisting, and the
//! dispatcher's per-instance guards keeping endpoints separate.

use parking_lot::Mutex;
use spin_os::fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
use spin_os::net::{http_get, ActiveMessages, HttpServer, Medium, Rpc, TcpStack, TwoHosts};
use std::sync::Arc;

#[test]
fn tcp_bulk_transfer_survives_heavy_loss_on_both_directions() {
    let rig = TwoHosts::new();
    rig.board.ethernet.set_drop_filter(|i| i % 4 == 3); // 25% loss
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let listener = tcp_b.listen(80);
    let received = Arc::new(Mutex::new(Vec::new()));
    let r2 = received.clone();
    rig.exec.spawn("server", move |ctx| {
        let conn = listener.accept(ctx).expect("client arrives despite loss");
        while let Some(chunk) = conn.recv(ctx) {
            r2.lock().extend_from_slice(&chunk);
        }
    });
    let dst = rig.b.ip_on(Medium::Ethernet);
    let payload: Vec<u8> = (0..30_000).map(|i| (i % 251) as u8).collect();
    let p2 = payload.clone();
    rig.exec.spawn("client", move |ctx| {
        let conn = tcp_a.connect(ctx, dst, 80).expect("handshake with retries");
        conn.send(ctx, &p2).unwrap();
        ctx.sleep(3_000_000_000); // let retransmissions drain
        conn.close(ctx);
    });
    rig.exec.run_until_idle();
    assert_eq!(*received.lock(), payload);
}

#[test]
fn rpc_and_active_messages_share_the_stack_without_interference() {
    let rig = TwoHosts::new();
    let rpc_a = Rpc::install(&rig.a).unwrap();
    let rpc_b = Rpc::install(&rig.b).unwrap();
    let am_a = ActiveMessages::install(&rig.a).unwrap();
    let am_b = ActiveMessages::install(&rig.b).unwrap();

    rpc_b.register("upper", |args| args.to_ascii_uppercase());
    let am_hits = Arc::new(Mutex::new(0u32));
    let h2 = am_hits.clone();
    am_b.register(1, move |_, _, _| *h2.lock() += 1);

    let dst = rig.b.ip_on(Medium::Ethernet);
    let rpc_result = Arc::new(Mutex::new(Vec::new()));
    let rr2 = rpc_result.clone();
    rig.exec.spawn("mixed-client", move |ctx| {
        am_a.send(dst, 1, [0; 4], b"");
        *rr2.lock() = rpc_a.call(ctx, dst, "upper", b"spin").unwrap();
        am_a.send(dst, 1, [0; 4], b"");
    });
    rig.exec.run_until_idle();
    assert_eq!(&rpc_result.lock()[..], b"SPIN");
    assert_eq!(*am_hits.lock(), 2);
    let _ = am_b;
}

#[test]
fn http_serves_through_the_whole_graph_with_hybrid_caching() {
    let rig = TwoHosts::new();
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec.clone(),
        32,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 400);
    let fs2 = fs.clone();
    rig.exec.spawn("content", move |ctx| {
        fs2.mkdir("/site").unwrap();
        fs2.create("/site/a.html").unwrap();
        fs2.write_file(ctx, "/site/a.html", b"alpha").unwrap();
        fs2.create("/site/b.html").unwrap();
        fs2.write_file(ctx, "/site/b.html", b"beta").unwrap();
    });
    rig.exec.run_until_idle();
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 4096,
        }),
    ));
    let server = HttpServer::start(&rig.b, &tcp_b, fs, cache, 80);

    let dst = rig.b.ip_on(Medium::Ethernet);
    let bodies = Arc::new(Mutex::new(Vec::new()));
    let b2 = bodies.clone();
    rig.exec.spawn("browser", move |ctx| {
        for path in [
            "/site/a.html",
            "/site/b.html",
            "/site/a.html",
            "/site/missing",
        ] {
            let (status, body) = http_get(ctx, &tcp_a, dst, 80, path).expect("response");
            b2.lock().push((status, body));
        }
    });
    rig.exec.run_until_idle();
    let b = bodies.lock();
    assert_eq!(b[0].1, b"alpha");
    assert_eq!(b[1].1, b"beta");
    assert_eq!(b[2].1, b"alpha");
    assert!(b[3].0.contains("404"));
    let stats = server.stats();
    assert_eq!((stats.ok, stats.not_found), (3, 1));
    assert_eq!(server.cache().stats().hits, 1);
}

#[test]
fn concurrent_flows_on_different_ports_do_not_cross() {
    let rig = TwoHosts::new();
    let sums = Arc::new(Mutex::new((0u64, 0u64)));
    let s1 = sums.clone();
    spin_net::UdpSocket::bind_with(&rig.b, 100, "flow-a", move |p| {
        s1.lock().0 += p.payload.len() as u64
    })
    .unwrap();
    let s2 = sums.clone();
    spin_net::UdpSocket::bind_with(&rig.b, 200, "flow-b", move |p| {
        s2.lock().1 += p.payload.len() as u64
    })
    .unwrap();
    let (a, dst) = (rig.a.clone(), rig.b.ip_on(Medium::Atm));
    rig.exec.spawn("sender", move |ctx| {
        for i in 0..20 {
            a.udp_send(
                9,
                dst,
                if i % 2 == 0 { 100 } else { 200 },
                &vec![0u8; 10 + i],
            )
            .unwrap();
            ctx.yield_now();
        }
    });
    rig.exec.run_until_idle();
    let (fa, fb) = *sums.lock();
    let even: u64 = (0..20).filter(|i| i % 2 == 0).map(|i| 10 + i).sum();
    let odd: u64 = (0..20).filter(|i| i % 2 == 1).map(|i| 10 + i).sum();
    assert_eq!((fa, fb), (even, odd));
}
