//! End-to-end test of the in-kernel `/metrics` extension: a simulated
//! HTTP client scrapes the Prometheus exposition served by the web
//! server, whose body is produced by raising the kernel's `Obs.Snapshot`
//! event — observability dogfooding the paper's own machinery.

use parking_lot::Mutex;
use spin_core::{Identity, Kernel};
use spin_fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
use spin_net::{http_get, install_metrics, HttpServer, Medium, TcpStack, TwoHosts};
use spin_obs::Obs;
use spin_vm::VmWorkbench;
use std::sync::Arc;

/// Extracts `spin_<metric>{domain="<domain>"} <value>` from the body.
fn metric(body: &str, metric: &str, domain: &str) -> Option<u64> {
    let needle = format!("spin_{metric}{{domain=\"{domain}\"}} ");
    body.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn metrics_endpoint_reports_every_instrumented_subsystem() {
    let rig = TwoHosts::new();
    let obs = Obs::new(65536);
    rig.wire_obs(&obs);

    // A kernel on host A: dispatcher + GC + trap-path hooks, the
    // Obs.Snapshot event, and the ObsService nameserver domain.
    let kernel = Kernel::boot(rig.host_a.clone());
    let snapshot = kernel.install_obs(&obs);

    // Exercise each subsystem so its counters move.
    kernel
        .register_syscalls(Identity::extension("null"), 0..1, |_| 0)
        .expect("install syscall");
    kernel.syscall(0, [0; 6]);

    let keep: Vec<_> = (0..64u64)
        .map(|i| kernel.heap().alloc_root(i).expect("alloc rooted"))
        .collect();
    for i in 0..5_000u64 {
        let _ = kernel.heap().alloc(i);
    }
    kernel.heap().collect();
    drop(keep);

    let wb = VmWorkbench::new();
    wb.trans.set_obs(obs.domain("vm"));
    wb.fault_ns();

    // The web server on host B, with the /metrics extension spliced in.
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 200);
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65_536,
        }),
    ));
    let server = HttpServer::start(&rig.b, &tcp_b, fs, cache, 80);
    install_metrics(&server, snapshot);

    // Generate net + sched traffic, then scrape.
    let dst = rig.b.ip_on(Medium::Ethernet);
    let got = Arc::new(Mutex::new(None));
    let g2 = got.clone();
    rig.exec.spawn("scraper", move |ctx| {
        *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/metrics");
    });
    rig.exec.run_until_idle();

    let (status, body) = got.lock().clone().expect("scrape completed");
    assert_eq!(status, "HTTP/1.0 200 OK");
    let body = String::from_utf8(body).expect("utf-8 exposition");

    // The acceptance bar: non-zero counters for at least dispatcher,
    // scheduler, VM, GC and net.
    for (m, domain) in [
        ("events_raised", "dispatcher"),
        ("cpu_virtual_ns", "sched"),
        ("context_switches", "sched"),
        ("vm_faults", "vm"),
        ("gc_collections", "gc"),
        ("gc_bytes_surviving", "gc"),
        ("packets_sent", "net"),
        ("bytes_received", "net"),
        ("syscalls", "kernel"),
    ] {
        let v = metric(&body, m, domain)
            .unwrap_or_else(|| panic!("missing spin_{m}{{domain=\"{domain}\"}} in:\n{body}"));
        assert!(v > 0, "spin_{m}{{domain=\"{domain}\"}} is zero:\n{body}");
    }
    assert!(
        metric(&body, "trace_pushed_total", "").is_none(),
        "trace_pushed_total is not per-domain"
    );
    assert!(
        body.contains("spin_trace_recording 1"),
        "recorder state line missing:\n{body}"
    );
}

/// The quota ledger's gauges, scraped end-to-end: a metered domain is
/// throttled into shedding and refused at a mailbox gate, and the
/// per-domain `spin_quota_*` series show up — with exact values — in the
/// `/metrics` body a simulated HTTP client scrapes off the wire. The
/// escalation also leaves a `quota_breach` record in the trace ring.
#[test]
fn quota_gauges_scrape_end_to_end() {
    let rig = TwoHosts::new();
    let obs = Obs::new(4_096);
    rig.wire_obs(&obs);
    let kernel = Kernel::boot(rig.host_a.clone());
    let snapshot = kernel.install_obs(&obs);

    let ledger = spin_core::QuotaLedger::new();
    ledger.wire_obs(&obs);
    let cell = ledger.register(
        "greedy",
        spin_core::QuotaSpec {
            window: 1_000_000,
            window_vt_budget: 1,
            shed_after_trips: 2,
            max_lane_occupancy: 1,
            ..spin_core::QuotaSpec::default()
        },
    );
    let (ev, owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Quota.Svc", Identity::kernel("quota"));
    let clock = rig.board.clock.clone();
    owner
        .set_primary(move |x| {
            clock.advance(100);
            *x
        })
        .expect("fresh event");
    assert_eq!(ev.bind_quota(cell.clone()), Ok(true));

    // One admitted raise burns the (tiny) window budget; the next two
    // throttle (trip, trip -> shedding: a breach), the one after sheds.
    assert_eq!(ev.raise(1), Ok(1));
    for _ in 0..2 {
        assert!(matches!(
            ev.raise(2),
            Err(spin_core::DispatchError::Throttled { .. })
        ));
    }
    assert!(matches!(
        ev.raise(3),
        Err(spin_core::DispatchError::Shed { .. })
    ));

    // The mailbox gate refuses a post past the lane budget.
    let mb = spin_sal::Mailbox::new();
    ledger.install_mailbox_gate(&mb, vec![(5, cell.clone())]);
    assert!(mb.post(10, 5, |_| {}));
    assert!(!mb.post(11, 5, |_| {}), "lane occupancy budget refuses");

    // Serve and scrape /metrics over the simulated wire.
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 200);
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65_536,
        }),
    ));
    let server = HttpServer::start(&rig.b, &tcp_b, fs, cache, 80);
    install_metrics(&server, snapshot);
    let dst = rig.b.ip_on(Medium::Ethernet);
    let got = Arc::new(Mutex::new(None));
    let g2 = got.clone();
    rig.exec.spawn("scraper", move |ctx| {
        *g2.lock() = http_get(ctx, &tcp_a, dst, 80, "/metrics");
    });
    rig.exec.run_until_idle();

    let (status, body) = got.lock().clone().expect("scrape completed");
    assert_eq!(status, "HTTP/1.0 200 OK");
    let body = String::from_utf8(body).expect("utf-8 exposition");

    let s = cell.snapshot();
    assert_eq!((s.throttled, s.shed, s.breaches), (2, 1, 1));
    for (m, want) in [
        ("quota_in_flight", 0),
        ("quota_held", 0),
        ("quota_shed", 1),
        ("quota_throttle_trips", 2),
        ("quota_mail_refused", 1),
        ("quota_breaches", 1),
    ] {
        let v = metric(&body, m, "greedy")
            .unwrap_or_else(|| panic!("missing spin_{m}{{domain=\"greedy\"}} in:\n{body}"));
        assert_eq!(v, want, "spin_{m}{{domain=\"greedy\"}}");
    }

    // The escalation crossing left a trace record under the quota domain.
    let dump = obs.dump();
    assert!(
        dump.contains("quota_breach"),
        "no quota_breach trace record in:\n{dump}"
    );
}

#[test]
fn obs_service_is_importable_from_the_nameserver() {
    let rig = TwoHosts::new();
    let obs = Obs::new(1024);
    let kernel = Kernel::boot(rig.host_a.clone());
    let _snapshot = kernel.install_obs(&obs);

    // An extension imports the subsystem like any other kernel interface —
    // by the service type, not a registration string (API v2).
    let svc = kernel
        .nameserver()
        .import_typed::<Obs>(&Identity::extension("profiler"))
        .expect("ObsService registered");
    assert_eq!(svc.name(), "ObsService");
    assert_eq!(svc.domain().name(), "ObsService");
    let handle: Arc<Obs> = svc.service().clone();
    handle
        .domain("profiler")
        .trace(spin_obs::TraceKind::EventRaise, 0, 0);
    assert_eq!(handle.ring().pushed(), 1);
}
