//! Integration: §4.3's isolation claim — "an extension's failure to use an
//! interface correctly is isolated to the extension itself (and any others
//! that rely on it)" and "the failure of an extension is no more
//! catastrophic than the failure of code executing in the runtime
//! libraries".

use spin_os::core::{Constraints, HandlerMode, Identity, InstallDecision, Kernel};
use spin_os::rt::GcError;
use spin_os::sal::SimBoard;
use spin_os::sched::{Executor, IdleOutcome};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn kernel() -> Kernel {
    let board = SimBoard::new();
    Kernel::boot(board.new_host(256))
}

#[test]
fn a_runaway_handler_is_aborted_and_other_handlers_still_run() {
    let k = kernel();
    let (ev, owner) = k
        .dispatcher()
        .define::<(), u32>("Service.Event", Identity::kernel("svc"));
    owner.set_primary(|_| 1).unwrap();
    // The owner bounds every third-party handler at 10 µs.
    owner
        .set_auth(|_| InstallDecision::Allow {
            owner_guard: None,
            constraints: Some(Constraints {
                mode: HandlerMode::Synchronous,
                time_bound: Some(10_000),
            }),
        })
        .unwrap();
    let clock = k.host().clock.clone();
    ev.install(Identity::extension("runaway"), move |_| {
        clock.advance(5_000_000); // 5 ms of "spinning"
        999
    })
    .unwrap();
    let well_behaved_ran = Arc::new(AtomicU32::new(0));
    let w2 = well_behaved_ran.clone();
    ev.install(Identity::extension("wellbehaved"), move |_| {
        w2.fetch_add(1, Ordering::Relaxed);
        2
    })
    .unwrap();

    // The runaway's result is discarded; the well-behaved handler's result
    // is the final one and stands.
    assert_eq!(ev.raise(()), Ok(2));
    assert_eq!(well_behaved_ran.load(Ordering::Relaxed), 1);
    assert_eq!(k.dispatcher().stats(&ev).unwrap().handlers_aborted, 1);
}

#[test]
fn a_thread_package_ignoring_unblock_only_harms_its_own_application() {
    // §4.3: "An application-specific thread package may ignore the event
    // that a particular user-level thread is runnable, but only the
    // application using the thread package will be affected."
    let board = SimBoard::new();
    let exec = Executor::new(
        board.clock.clone(),
        board.timers.clone(),
        board.profile.clone(),
    );

    // The victim application blocks and its (buggy) package never wakes it.
    let victim = exec.spawn("victim-app", |ctx| ctx.block());
    // An unrelated application gets on with its life.
    let healthy_done = Arc::new(AtomicU32::new(0));
    let h2 = healthy_done.clone();
    exec.spawn("healthy-app", move |ctx| {
        ctx.sleep(1_000_000);
        h2.fetch_add(1, Ordering::Relaxed);
    });
    match exec.run_until_idle() {
        IdleOutcome::Deadlock { blocked } => {
            assert_eq!(blocked, vec!["victim-app".to_string()]);
        }
        other => panic!("expected only the victim stuck, got {other:?}"),
    }
    assert_eq!(healthy_done.load(Ordering::Relaxed), 1);
    assert!(!exec.is_done(victim));
}

#[test]
fn a_panicking_extension_strand_does_not_take_down_the_system() {
    let board = SimBoard::new();
    let exec = Executor::new(
        board.clock.clone(),
        board.timers.clone(),
        board.profile.clone(),
    );
    let bad = exec.spawn("buggy-extension", |_| panic!("index out of bounds"));
    let good_done = Arc::new(AtomicU32::new(0));
    let g2 = good_done.clone();
    exec.spawn("core-service", move |ctx| {
        ctx.sleep(100);
        g2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(exec.run_until_idle(), IdleOutcome::AllComplete);
    assert!(exec.panicked(bad), "the failure is recorded");
    assert_eq!(
        good_done.load(Ordering::Relaxed),
        1,
        "everyone else survives"
    );
}

#[test]
fn leaked_memory_from_a_dead_extension_is_reclaimed() {
    // "resources released by an extension, either through inaction or as a
    // result of premature termination, are eventually reclaimed" (§5.5).
    let k = kernel();
    let heap = k.heap().clone();
    let board_exec = Executor::for_host(k.host());
    let leaked = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let l2 = leaked.clone();
    let h2 = heap.clone();
    let ext = board_exec.spawn("leaky-extension", move |_| {
        for i in 0..1000u64 {
            l2.lock().push(h2.alloc(i).unwrap());
        }
        panic!("extension dies holding 1000 objects");
    });
    board_exec.run_until_idle();
    assert!(board_exec.panicked(ext));
    // The extension is gone; its references die with it.
    let refs: Vec<_> = std::mem::take(&mut *leaked.lock());
    drop(refs);
    heap.collect();
    assert!(heap.live_bytes() < 1024, "the collector reclaimed the leak");
}

#[test]
fn stale_references_fail_safely_never_alias() {
    let k = kernel();
    let heap = k.heap();
    let stale = heap.alloc(0xDEAD_BEEFu64).unwrap();
    heap.collect(); // unrooted: reclaimed
                    // Allocate a different type; even if storage is reused, the stale
                    // reference cannot observe it.
    let _other = heap.alloc(String::from("fresh")).unwrap();
    assert_eq!(heap.get(stale), Err(GcError::Dangling));
}
