//! The chaos suite: a seeded fault-injection storm across subsystems.
//!
//! A [`spin_fault::FaultPlan`] drives panics, delays and resource
//! failures into the dispatcher, the executor, the disk pager, the
//! kernel heap and the network stack — well over a hundred injected
//! handler panics per run — and the kernel must shrug: no process abort,
//! every contained fault attributed to an installer domain on the
//! `/metrics` page (the `Obs.Snapshot` body the in-kernel HTTP extension
//! serves), and counters that reconcile *exactly* with what the plan
//! says it injected. Because the plan is seeded and the simulation runs
//! on virtual time, two identical storms produce identical wreckage.

use parking_lot::Mutex;
use spin_core::{
    Constraints, ContainmentPolicy, DispatchError, Domain, DomainFaultInfo, Event, Identity,
    InstallSpec, Kernel, QuotaLedger, QuotaSnapshot, QuotaSpec,
};
use spin_fault::{
    FaultPlan, Injection, SiteConfig, SiteReport, SITE_DISPATCH, SITE_NET_STACK, SITE_QUOTA,
    SITE_RT_HEAP, SITE_SCHED, SITE_SWAP, SITE_VM_PAGER,
};
use spin_net::{Medium, TwoHosts};
use spin_obs::Obs;
use spin_sal::{SimBoard, PAGE_SHIFT};
use spin_swap::{SwapCoordinator, SwapError, SwapSupervisor, UndoAction};
use spin_vm::{DiskPager, PhysAddrService, TranslationService, VirtAddrService};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const VM_PAGES: u64 = 32;

/// Extracts every `spin_faults{domain="..."} N` line, sorted by domain.
fn faults_by_domain(body: &str) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = body
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("spin_faults{domain=\"")?;
            let (domain, value) = rest.split_once("\"} ")?;
            Some((domain.to_string(), value.trim().parse().ok()?))
        })
        .collect();
    v.sort();
    v
}

/// One full storm. Returns the plan's exact per-site report, the number
/// of faults the containment sink saw, and the per-domain `/metrics`
/// attribution — so the determinism test can compare two runs.
fn storm(seed: u64) -> (Vec<SiteReport>, u64, Vec<(String, u64)>) {
    let rig = TwoHosts::new();
    let obs = Obs::new(65_536);
    rig.wire_obs(&obs);

    // The kernel under attack lives on host A; its dispatcher carries
    // the chaos events, the page-fault events and the containment sink.
    let kernel = Kernel::boot(rig.host_a.clone());
    let snapshot = kernel.install_obs(&obs);
    // A lenient budget: this test is about containment and attribution,
    // not the breaker (which gets its own test below).
    let containment = kernel.install_fault_containment(ContainmentPolicy {
        strikes: u32::MAX,
        window: u64::MAX,
        trips_to_quarantine: u32::MAX,
    });
    containment.set_obs(&obs);

    let plan = FaultPlan::new(seed);
    plan.configure(
        SITE_DISPATCH,
        SiteConfig {
            panic_every: 5,
            ..SiteConfig::default()
        },
    );
    plan.configure(
        SITE_VM_PAGER,
        SiteConfig {
            panic_every: 2,
            ..SiteConfig::default()
        },
    );
    plan.configure(
        SITE_RT_HEAP,
        SiteConfig {
            panic_every: 3,
            fail_every: 3,
            ..SiteConfig::default()
        },
    );
    plan.configure(
        SITE_NET_STACK,
        SiteConfig {
            panic_every: 3,
            fail_every: 5,
            ..SiteConfig::default()
        },
    );
    kernel.dispatcher().set_fault_hook(plan.hook(SITE_DISPATCH));
    rig.exec.set_fault_hook(plan.hook(SITE_SCHED));
    kernel.heap().set_fault_hook(plan.hook(SITE_RT_HEAP));
    rig.a.set_fault_hook(plan.hook(SITE_NET_STACK));

    // Chaos events: each extension handler drags one subsystem into the
    // raise, so an injection there unwinds *through* the subsystem into
    // the dispatcher's containment region.
    let (svc, svc_owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Chaos.Svc", Identity::kernel("chaos"));
    svc_owner.set_primary(|x| *x).expect("fresh event");
    svc.install(Identity::extension("chaos-dispatch"), |x| x + 1)
        .expect("install");

    let (heap_ev, heap_owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Chaos.Heap", Identity::kernel("chaos"));
    heap_owner.set_primary(|_| 0).expect("fresh event");
    let k2 = kernel.clone();
    heap_ev
        .install(Identity::extension("chaos-heap"), move |v: &u64| {
            // An injected heap failure is the extension's problem to
            // tolerate; an injected heap panic is the dispatcher's.
            let _ = k2.heap().alloc(*v);
            1
        })
        .expect("install");

    let (net_ev, net_owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Chaos.Net", Identity::kernel("chaos"));
    net_owner.set_primary(|_| 0).expect("fresh event");
    let stack = rig.a.clone();
    let dst = rig.b.ip_on(Medium::Ethernet);
    net_ev
        .install(Identity::extension("chaos-net"), move |_| {
            let _ = stack.udp_send(9000, dst, 7, b"chaos");
            1
        })
        .expect("install");

    // The disk pager, installed against the kernel's dispatcher so its
    // injected page-fault panics land in the same containment sink.
    let trans = TranslationService::new(
        rig.host_a.mmu.clone(),
        rig.board.clock.clone(),
        rig.board.profile.clone(),
        kernel.dispatcher(),
    );
    let phys = PhysAddrService::new(rig.host_a.mem.clone(), kernel.dispatcher());
    let virt = VirtAddrService::new();
    let ctx = trans.create();
    let region = virt.allocate(VM_PAGES).expect("virtual region");
    trans.reserve(ctx, &region).expect("reserve");
    let pager = DiskPager::install(
        rig.exec.clone(),
        trans.clone(),
        phys.clone(),
        rig.host_a.disk.clone(),
        ctx,
        region.clone(),
        0,
    );
    pager.set_fault_hook(plan.hook(SITE_VM_PAGER));

    // Phase A: hammer the dispatcher, the heap and the net from the trap
    // path. Faulted raises surface as errors, never as unwinds.
    for i in 0..400u64 {
        let _ = svc.raise(i);
        let _ = heap_ev.raise(i);
        let _ = net_ev.raise(i);
    }

    // Phase B: reader strands fault the paged region in while the pager
    // site injects. An injected panic leaves the page unmapped, so the
    // bounded retry loop faults it again — more draws, more chaos.
    let mem = rig.host_a.mem.clone();
    for p in 0..VM_PAGES {
        let trans2 = trans.clone();
        let mem2 = mem.clone();
        let va = region.base() + (p << PAGE_SHIFT);
        rig.exec.spawn("vm-reader", move |_| {
            let mut buf = [0u8; 1];
            for _ in 0..8 {
                if trans2.read(ctx, va, &mut buf, &mem2).is_ok() {
                    break;
                }
            }
        });
    }
    rig.exec.run_until_idle();

    // Phase C: now arm the executor site and throw strands at it. Half
    // die at spawn — contained by the executor, not the dispatcher.
    plan.configure(
        SITE_SCHED,
        SiteConfig {
            panic_every: 2,
            ..SiteConfig::default()
        },
    );
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..64 {
        let r = ran.clone();
        rig.exec.spawn("chaos-strand", move |_| {
            r.fetch_add(1, Ordering::Relaxed);
        });
    }
    rig.exec.run_until_idle();

    // The storm is over. Disarm and audit.
    plan.set_enabled(false);
    let report = plan.report();
    let panics = |site: &str| {
        report
            .iter()
            .find(|r| r.site == site)
            .map(|r| r.panics)
            .unwrap_or(0)
    };

    // The kernel survived: clean raises still work, strands still run.
    assert_eq!(svc.raise(7), Ok(8), "the dispatcher still dispatches");
    assert_eq!(
        ran.load(Ordering::Relaxed) + panics(SITE_SCHED),
        64,
        "every chaos strand either ran or died to an injected spawn panic"
    );

    // Volume: a real storm, spread across the subsystems.
    let sink_panics = panics(SITE_DISPATCH)
        + panics(SITE_VM_PAGER)
        + panics(SITE_RT_HEAP)
        + panics(SITE_NET_STACK);
    assert!(
        sink_panics >= 100,
        "expected >= 100 contained handler panics, got {sink_panics} in {report:?}"
    );
    for site in [
        SITE_DISPATCH,
        SITE_SCHED,
        SITE_VM_PAGER,
        SITE_RT_HEAP,
        SITE_NET_STACK,
    ] {
        assert!(
            panics(site) >= 10,
            "site {site} injected too few panics: {report:?}"
        );
    }

    // Exact reconciliation: every panic that fired inside a dispatched
    // handler — and only those — reached the containment sink.
    assert_eq!(
        containment.faults_seen(),
        sink_panics,
        "sink deliveries must reconcile with injected handler panics"
    );

    // Attribution: the /metrics body (the Obs.Snapshot render the HTTP
    // extension serves) charges every fault to an installer domain.
    let body = snapshot
        .raise(())
        .expect("snapshot renders after the storm");
    let by_domain = faults_by_domain(&body);
    let attributed: u64 = by_domain.iter().map(|(_, v)| v).sum();
    assert_eq!(
        attributed,
        containment.faults_seen(),
        "every fault is attributed to a domain in /metrics: {by_domain:?}"
    );
    for domain in ["chaos-heap", "chaos-net", "DiskPager"] {
        assert!(
            by_domain.iter().any(|(d, v)| d == domain && *v > 0),
            "missing /metrics fault attribution for {domain}: {by_domain:?}"
        );
    }

    (report, containment.faults_seen(), by_domain)
}

#[test]
fn chaos_storm_is_contained_and_attributed() {
    storm(0xC0FFEE);
}

/// The harness promise: same seed, same workload, same wreckage — down
/// to the per-site injection counts and the per-domain attribution.
#[test]
fn chaos_storms_are_deterministic_for_a_seed() {
    assert_eq!(storm(42), storm(42));
}

/// A rebind closure swapping the service's handlers (same installer
/// identity across versions) to a new bias, returning the restore undo.
fn rebind_service(ev: &Event<u64, u64>, svc: &Identity, bias: u64) -> Vec<UndoAction> {
    let receipt = ev
        .rebind(
            svc,
            svc,
            vec![InstallSpec {
                installer: svc.clone(),
                handler: Arc::new(move |x: &u64| x + bias),
                guards: Vec::new(),
                constraints: Constraints::default(),
            }],
        )
        .expect("rebind service");
    let ev = ev.clone();
    let svc = svc.clone();
    vec![Box::new(move || {
        ev.restore(&svc, receipt).expect("restore service");
    })]
}

/// One seeded hot-swap storm: repeated upgrade attempts with panics
/// injected at the swap transfer site. Every injected panic must roll the
/// service back to the exact version that was serving, the kernel keeps
/// serving traffic throughout, and the rollbacks are domain-attributed on
/// `/metrics`. Returns `(committed, rolled_back, by_domain)` for the
/// determinism check.
fn swap_storm(seed: u64) -> (u64, u64, Vec<(String, u64)>) {
    const ATTEMPTS: u64 = 16;

    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    let obs = Obs::new(4_096);
    let snapshot = kernel.install_obs(&obs);
    let containment = kernel.install_fault_containment(ContainmentPolicy {
        strikes: u32::MAX,
        window: u64::MAX,
        trips_to_quarantine: u32::MAX,
    });
    containment.set_obs(&obs);

    let coord = SwapCoordinator::new(board.clock.clone());
    coord.wire_obs(&obs);
    coord.set_containment(&containment);
    let plan = FaultPlan::new(seed);
    plan.configure(
        SITE_SWAP,
        SiteConfig {
            panic_every: 2,
            ..SiteConfig::default()
        },
    );
    coord.set_fault_hook(&plan);

    let (ev, _owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Svc.Call", Identity::kernel("svc"));
    let svc = Identity::extension("svc");
    let mut bias = 1u64;
    ev.install(svc.clone(), move |x: &u64| x + 1)
        .expect("install v1");

    let (mut committed, mut rolled_back) = (0u64, 0u64);
    for attempt in 0..ATTEMPTS {
        let next = bias + 1;
        match coord.swap(
            "svc",
            vec![Arc::new(ev.clone())],
            &svc,
            &bias,
            |old| old + 1,
            None,
            |nb| rebind_service(&ev, &svc, nb),
        ) {
            Ok(_) => {
                bias = next;
                committed += 1;
            }
            Err(SwapError::TransferPanicked { .. }) => rolled_back += 1,
            Err(e) => panic!("unexpected swap failure: {e}"),
        }
        // The kernel is serving after every attempt, on the version the
        // protocol says is live — rolled-back upgrades leave the old one.
        assert_eq!(
            ev.raise(100 * attempt),
            Ok(100 * attempt + bias),
            "service must keep serving on the committed version"
        );
    }

    plan.set_enabled(false);
    assert_eq!(committed + rolled_back, ATTEMPTS);
    assert!(committed > 0, "seed produced no committed swaps");
    assert!(rolled_back > 0, "seed produced no rollbacks");
    assert_eq!(
        plan.injected_panics(),
        rolled_back,
        "every injected transfer panic rolled one swap back"
    );
    assert_eq!(
        containment.faults_seen(),
        rolled_back,
        "every rollback was noted by the containment layer"
    );
    let stats = coord.stats();
    assert_eq!(
        (stats.attempted, stats.committed, stats.rolled_back),
        (ATTEMPTS, committed, rolled_back)
    );

    // Attribution: the rollbacks are charged to the old domain on
    // /metrics, next to the spin_swap_* gauges.
    let body = snapshot.raise(()).expect("snapshot renders");
    let by_domain = faults_by_domain(&body);
    assert!(
        by_domain
            .iter()
            .any(|(d, v)| d == "svc" && *v == rolled_back),
        "rollbacks must be domain-attributed: {by_domain:?}"
    );
    assert!(body.contains(&format!("spin_swap_rolled_back_total {rolled_back}")));
    assert!(body.contains(&format!("spin_swap_committed_total {committed}")));
    (committed, rolled_back, by_domain)
}

#[test]
fn injected_swap_panics_roll_back_with_service_intact() {
    swap_storm(0xBADC0DE);
}

#[test]
fn swap_storms_are_deterministic_for_a_seed() {
    assert_eq!(swap_storm(99), swap_storm(99));
}

/// The fault-driven auto-swap loop (`Core.DomainFault` →
/// [`SwapSupervisor`]): a quarantined domain's registered fallback swap
/// runs at the next supervisor pump and restores service.
#[test]
fn domain_fault_triggers_fallback_swap_on_pump() {
    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    let containment = kernel.install_fault_containment(ContainmentPolicy {
        strikes: 1,
        window: u64::MAX,
        trips_to_quarantine: 1,
    });
    let sup = SwapSupervisor::install(&containment).expect("install supervisor");
    let coord = SwapCoordinator::new(board.clock.clone());

    let (svc, owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Svc.Flaky", Identity::kernel("svc"));
    owner.set_primary(|_| 0).expect("fresh event");
    let flaky = Identity::extension("flaky-ext");
    svc.install(flaky.clone(), |_| panic!("flaky boom"))
        .expect("install flaky");

    // Register the fallback: swap the (already-quarantined) flaky version
    // out for a known-good one under the same identity.
    let ev2 = svc.clone();
    let flaky2 = flaky.clone();
    let coord2 = coord.clone();
    sup.register_fallback("flaky-ext", move || {
        coord2
            .swap(
                "flaky-ext",
                vec![Arc::new(ev2.clone())],
                &flaky2,
                &(),
                |_| 7u64,
                None,
                |bias| rebind_service(&ev2, &flaky2, bias),
            )
            .expect("fallback swap commits");
    });

    // One faulting raise: strike → trip → quarantine → Core.DomainFault.
    // The handler is gone, the primary's result stands, and the fallback
    // has NOT run yet (it must not run inside the faulting raise).
    assert_eq!(svc.raise(1), Ok(0));
    assert!(containment.is_quarantined("flaky-ext"));
    assert_eq!(sup.pending(), vec!["flaky-ext"]);
    assert_eq!(svc.raise(1), Ok(0), "no fallback inside the raise");

    // The pump runs the fallback swap; the service serves v-fallback.
    assert_eq!(sup.pump(), 1);
    assert_eq!(svc.raise(1), Ok(8), "fallback version serving");
    assert_eq!(coord.stats().committed, 1);
    assert!(sup.pending().is_empty());
}

/// One seeded quota storm: the `core.quota` site injects spurious
/// throttles (`Fail`), delayed budget releases (`Delay` — the window
/// keeps the charge longer) and admission-edge panics (contained on the
/// spot and counted as throttles) into a metered domain's raises, on top
/// of the organic window-budget throttling the raise volume earns by
/// itself. The kernel survives — every refusal is a typed error, never
/// an unwind — the ledger reconciles exactly, and every shed/throttle is
/// domain-attributed on `/metrics` through the `spin_quota_*` gauges.
/// Returns the wreckage for the determinism check.
fn quota_storm(seed: u64) -> (Vec<SiteReport>, QuotaSnapshot, Vec<String>) {
    const RAISES: u64 = 600;

    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    let obs = Obs::new(16_384);
    let snapshot = kernel.install_obs(&obs);

    let ledger = QuotaLedger::new();
    ledger.wire_obs(&obs);
    let plan = FaultPlan::new(seed);
    plan.configure(
        SITE_QUOTA,
        SiteConfig {
            fail_every: 7,
            delay_every: 5,
            delay_ns: 40_000,
            panic_every: 11,
        },
    );
    ledger.set_fault_hook(plan.hook(SITE_QUOTA));

    let cell = ledger.register(
        "greedy",
        QuotaSpec {
            window: 1_000_000,
            window_vt_budget: 200_000,
            shed_after_trips: 8,
            ..QuotaSpec::default()
        },
    );
    let (ev, owner) = kernel
        .dispatcher()
        .define::<u64, u64>("Quota.Svc", Identity::kernel("quota"));
    let clock = board.clock.clone();
    owner
        .set_primary(move |x| {
            clock.advance(3_000);
            *x
        })
        .expect("fresh event");
    assert_eq!(ev.bind_quota(cell.clone()), Ok(true));

    let (mut ok, mut throttled, mut shed) = (0u64, 0u64, 0u64);
    for i in 0..RAISES {
        match ev.raise(i) {
            Ok(v) => {
                assert_eq!(v, i);
                ok += 1;
            }
            Err(DispatchError::Throttled { domain, .. }) => {
                assert_eq!(domain, "greedy", "throttles are domain-attributed");
                throttled += 1;
            }
            Err(DispatchError::Shed { domain, .. }) => {
                assert_eq!(domain, "greedy", "sheds are domain-attributed");
                shed += 1;
            }
            Err(e) => panic!("a quota refusal must be typed, got: {e}"),
        }
        // Idle time between raises lets windows roll and shedding decay.
        board.clock.advance(2_000);
    }
    plan.set_enabled(false);
    let report = plan.report();
    let site = report
        .iter()
        .find(|r| r.site == SITE_QUOTA)
        .expect("the quota site drew");

    // Volume: a real storm — injected and organic refusals both fired.
    assert!(site.fails > 0 && site.panics > 0 && site.delays > 0);
    assert!(throttled > 0, "no throttles in {RAISES} raises");
    assert!(shed > 0, "the ladder never escalated to shedding");
    assert!(ok > 0, "the domain was starved outright");
    assert!(
        throttled + shed >= site.fails + site.panics,
        "every injected fail/panic forces a refusal"
    );

    // Exact reconciliation: nothing lost, double-counted, or unattributed.
    let s = cell.snapshot();
    assert_eq!(s.attempts, RAISES);
    assert_eq!((s.admitted, s.throttled, s.shed), (ok, throttled, shed));
    assert_eq!(s.completed, ok, "every admitted raise completed");
    assert_eq!(s.in_flight, 0);
    assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);

    // The kernel survived: lift the quarantine-free ladder state and the
    // event serves again, unmetered by leftover window charge.
    cell.release(board.clock.now());
    assert_eq!(ev.raise(7), Ok(7), "the dispatcher still dispatches");

    // Attribution on /metrics: the spin_quota_* gauges carry the ledger,
    // per domain.
    let body = snapshot.raise(()).expect("snapshot renders");
    for (gauge, value) in [
        ("spin_quota_throttle_trips", s.trips),
        ("spin_quota_shed", s.shed),
        ("spin_quota_breaches", s.breaches),
    ] {
        let line = format!("{gauge}{{domain=\"greedy\"}} {value}");
        assert!(body.contains(&line), "missing `{line}` in:\n{body}");
    }
    let quota_lines: Vec<String> = body
        .lines()
        .filter(|l| l.starts_with("spin_quota_"))
        .map(str::to_string)
        .collect();
    (report, cell.snapshot(), quota_lines)
}

#[test]
fn quota_storm_is_contained_and_attributed() {
    quota_storm(0x0BE5E);
}

#[test]
fn quota_storms_are_deterministic_for_a_seed() {
    assert_eq!(quota_storm(1234), quota_storm(1234));
}

/// The breaker under injected fire: with `strikes = 2` and
/// `trips_to_quarantine = 3`, a domain whose handler panics on every
/// invocation is uninstalled every second fault and quarantined on
/// exactly the third trip — no earlier, no later — losing its handlers
/// and its nameserver exports.
#[test]
fn quarantine_trips_exactly_per_configured_budget() {
    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    let c = kernel.install_fault_containment(ContainmentPolicy {
        strikes: 2,
        window: u64::MAX,
        trips_to_quarantine: 3,
    });

    // The flaky domain exports an interface, so quarantine has something
    // to revoke.
    let flaky = Identity::extension("flaky-ext");
    kernel
        .nameserver()
        .register(
            "FlakyService",
            Domain::create_from_module("flaky-ext", vec![]),
            flaky.clone(),
        )
        .expect("register export");

    let plan = FaultPlan::new(7);
    plan.configure("chaos.flaky", SiteConfig::panic_always());
    let hook = plan.hook("chaos.flaky");

    let (tick, owner) = kernel
        .dispatcher()
        .define::<(), u32>("Chaos.Tick", Identity::kernel("chaos"));
    owner.set_primary(|_| 0).expect("fresh event");

    let trips_seen: Arc<Mutex<Vec<(u32, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = trips_seen.clone();
    c.domain_fault_event()
        .install(
            Identity::extension("supervisor"),
            move |info: &DomainFaultInfo| {
                assert_eq!(info.domain, "flaky-ext");
                t2.lock().push((info.trips, info.quarantined));
            },
        )
        .expect("supervise");

    for trip in 1..=3u32 {
        let h = hook.clone();
        tick.install(flaky.clone(), move |_| {
            if let Some(Injection::Panic) = h.draw() {
                h.fire_panic()
            }
            1
        })
        .expect("reinstall the flaky handler");
        assert_eq!(kernel.dispatcher().handler_count(&tick).unwrap(), 2);
        // Strike one: contained, the primary's result stands, no trip.
        assert_eq!(tick.raise(()), Ok(0));
        assert_eq!(c.trips("flaky-ext"), trip - 1, "one strike is not a trip");
        // Strike two: the breaker trips and the handler is gone.
        assert_eq!(tick.raise(()), Ok(0));
        assert_eq!(c.trips("flaky-ext"), trip);
        assert_eq!(
            kernel.dispatcher().handler_count(&tick).unwrap(),
            1,
            "the tripped handler is uninstalled"
        );
        assert_eq!(
            c.is_quarantined("flaky-ext"),
            trip == 3,
            "quarantine on exactly the configured trip count"
        );
    }

    assert_eq!(
        trips_seen.lock().as_slice(),
        &[(1, false), (2, false), (3, true)],
        "Core.DomainFault reported every trip, flagging only the quarantine"
    );
    assert_eq!(c.faults_seen(), 6);
    assert_eq!(
        plan.injected_panics(),
        6,
        "two strikes per trip, three trips"
    );
    assert!(
        !kernel
            .nameserver()
            .names()
            .contains(&"FlakyService".to_string()),
        "quarantine revoked the domain's exports"
    );

    // The domain is gone from the dispatcher: further raises run clean.
    assert_eq!(tick.raise(()), Ok(0));
    assert_eq!(c.faults_seen(), 6, "no handlers left to fault");
}
