//! Integration: the UNIX address-space extension under stress — deep fork
//! chains, COW fault storms, and reclaim interacting with translation.

use spin_os::core::{Dispatcher, Kernel};
use spin_os::sal::{Protection, SimBoard};
use spin_os::vm::{PhysAttrib, UnixAsExtension, VmService};
use std::sync::Arc;

fn setup() -> (Kernel, UnixAsExtension, VmService) {
    let board = SimBoard::new();
    let host = board.new_host(1024);
    let kernel = Kernel::boot(host.clone());
    let vm = VmService::install(&kernel);
    let unix = UnixAsExtension::install(
        vm.trans.clone(),
        vm.phys.clone(),
        vm.virt.clone(),
        host.mem.clone(),
    );
    (kernel, unix, vm)
}

#[test]
fn three_generation_fork_chain_isolates_writes() {
    let (_k, unix, _vm) = setup();
    let gen0 = unix.create();
    let base = unix.allocate(&gen0, 2, Protection::READ_WRITE).unwrap();
    unix.write(&gen0, base, b"gen0").unwrap();

    let gen1 = unix.copy(&gen0).unwrap();
    let gen2 = unix.copy(&gen1).unwrap();

    unix.write(&gen2, base, b"gen2").unwrap();
    unix.write(&gen1, base, b"gen1").unwrap();

    let mut buf = [0u8; 4];
    unix.read(&gen0, base, &mut buf).unwrap();
    assert_eq!(&buf, b"gen0");
    unix.read(&gen1, base, &mut buf).unwrap();
    assert_eq!(&buf, b"gen1");
    unix.read(&gen2, base, &mut buf).unwrap();
    assert_eq!(&buf, b"gen2");
}

#[test]
fn cow_fault_storm_resolves_every_share() {
    let (_k, unix, _vm) = setup();
    let parent = unix.create();
    const PAGES: u64 = 20;
    let base = unix
        .allocate(&parent, PAGES, Protection::READ_WRITE)
        .unwrap();
    for i in 0..PAGES {
        unix.write(&parent, base + i * 8192, &[i as u8]).unwrap();
    }
    let child = unix.copy(&parent).unwrap();
    assert_eq!(unix.cow_pending(), 2 * PAGES as usize);
    // The child dirties every page; the parent dirties every page after.
    for i in 0..PAGES {
        unix.write(&child, base + i * 8192, &[100 + i as u8])
            .unwrap();
    }
    for i in 0..PAGES {
        unix.write(&parent, base + i * 8192, &[200 + i as u8])
            .unwrap();
    }
    assert_eq!(unix.cow_pending(), 0, "every share resolved");
    let mut buf = [0u8; 1];
    for i in 0..PAGES {
        unix.read(&child, base + i * 8192, &mut buf).unwrap();
        assert_eq!(buf[0], 100 + i as u8);
        unix.read(&parent, base + i * 8192, &mut buf).unwrap();
        assert_eq!(buf[0], 200 + i as u8);
    }
}

#[test]
fn reclaim_invalidates_mappings_across_spaces() {
    let (k, _unix, vm) = setup();
    let _disp: &Dispatcher = k.dispatcher();
    // Two contexts share one physical region.
    let ctx_a = vm.trans.create();
    let ctx_b = vm.trans.create();
    let v_a = vm.virt.allocate(1).unwrap();
    let v_b = vm.virt.allocate(1).unwrap();
    let p = vm.phys.allocate(1, PhysAttrib::default()).unwrap();
    vm.trans
        .add_mapping(ctx_a, &v_a, &p, Protection::READ)
        .unwrap();
    vm.trans
        .add_mapping(ctx_b, &v_b, &p, Protection::READ)
        .unwrap();

    // The physical service reclaims the page; the translation service
    // "ultimately invalidates any mappings to a reclaimed page" (§4.1).
    let taken = vm.phys.reclaim(p.clone()).unwrap();
    assert_eq!(taken.id(), p.id());
    let invalidated = vm.trans.invalidate_phys(&p).unwrap();
    assert_eq!(invalidated, 2);
    use spin_os::sal::mmu::Access;
    assert!(vm.trans.access(ctx_a, v_a.base(), Access::Read).is_err());
    assert!(vm.trans.access(ctx_b, v_b.base(), Access::Read).is_err());
}

#[test]
fn address_space_composition_uses_only_public_services() {
    // §4.1: applications "may define their own [models] in terms of the
    // lower-level services". Build a tiny shared-memory model directly.
    let (_k, _unix, vm) = setup();
    let writer = vm.trans.create();
    let reader = vm.trans.create();
    let shared_phys = vm.phys.allocate(1, PhysAttrib::default()).unwrap();
    let v_w = vm.virt.allocate(1).unwrap();
    let v_r = vm.virt.allocate(1).unwrap();
    vm.trans
        .add_mapping(writer, &v_w, &shared_phys, Protection::READ_WRITE)
        .unwrap();
    vm.trans
        .add_mapping(reader, &v_r, &shared_phys, Protection::READ)
        .unwrap();

    let board_mem = {
        // Reach the same PhysMem the services use.
        vm.phys.memory().clone()
    };
    vm.trans
        .write(writer, v_w.base() + 5, b"shared!", &board_mem)
        .unwrap();
    let mut buf = [0u8; 7];
    vm.trans
        .read(reader, v_r.base() + 5, &mut buf, &board_mem)
        .unwrap();
    assert_eq!(&buf, b"shared!");
    // The reader cannot write through its read-only view.
    assert!(vm
        .trans
        .write(reader, v_r.base(), &[1], &board_mem)
        .is_err());
    let _ = Arc::strong_count(&shared_phys);
}
