//! Distributed shared memory (§4.1): two kernels share a page over the
//! network purely through fault handlers — a counter incremented from
//! both sides stays coherent.
//!
//! Run with: `cargo run --example dsm_counter`

use spin_dsm::DsmNode;
use spin_os::core::Dispatcher;
use spin_os::net::{Medium, TwoHosts};
use spin_os::vm::{PhysAddrService, TranslationService, VirtAddrService};

fn main() {
    let rig = TwoHosts::new();
    let disp_a = Dispatcher::new(rig.board.clock.clone(), rig.board.profile.clone());
    let disp_b = Dispatcher::new(rig.board.clock.clone(), rig.board.profile.clone());
    let trans_a = TranslationService::new(
        rig.host_a.mmu.clone(),
        rig.board.clock.clone(),
        rig.board.profile.clone(),
        &disp_a,
    );
    let trans_b = TranslationService::new(
        rig.host_b.mmu.clone(),
        rig.board.clock.clone(),
        rig.board.profile.clone(),
        &disp_b,
    );
    let phys_a = PhysAddrService::new(rig.host_a.mem.clone(), &disp_a);
    let phys_b = PhysAddrService::new(rig.host_b.mem.clone(), &disp_b);
    let virt = VirtAddrService::new();
    let region = virt.allocate(1).unwrap();
    let (ctx_a, ctx_b) = (trans_a.create(), trans_b.create());

    let node_a = DsmNode::install(
        &rig.a,
        &rig.exec,
        &trans_a,
        &phys_a,
        &rig.host_a.mem,
        ctx_a,
        region.clone(),
        rig.b.ip_on(Medium::Ethernet),
        true,
    );
    let node_b = DsmNode::install(
        &rig.b,
        &rig.exec,
        &trans_b,
        &phys_b,
        &rig.host_b.mem,
        ctx_b,
        region,
        rig.a.ip_on(Medium::Ethernet),
        false,
    );

    let base = node_a.base();
    const TURNS: u64 = 5;

    // Each side increments the shared counter on its turn (even = A's
    // turn, odd = B's). Every handoff migrates the page over the wire.
    let (ta, ma) = (trans_a.clone(), rig.host_a.mem.clone());
    rig.exec.spawn("host-a", move |ctx| {
        for _ in 0..TURNS {
            loop {
                let mut b = [0u8; 8];
                ta.read(ctx_a, base, &mut b, &ma).unwrap();
                let v = u64::from_be_bytes(b);
                if v % 2 == 0 {
                    ta.write(ctx_a, base, &(v + 1).to_be_bytes(), &ma).unwrap();
                    break;
                }
                ctx.sleep(1_000_000);
            }
        }
    });
    let (tb, mb) = (trans_b.clone(), rig.host_b.mem.clone());
    rig.exec.spawn("host-b", move |ctx| {
        for _ in 0..TURNS {
            loop {
                let mut b = [0u8; 8];
                tb.read(ctx_b, base, &mut b, &mb).unwrap();
                let v = u64::from_be_bytes(b);
                if v % 2 == 1 {
                    tb.write(ctx_b, base, &(v + 1).to_be_bytes(), &mb).unwrap();
                    break;
                }
                ctx.sleep(1_000_000);
            }
        }
    });
    rig.exec.run_until_idle();

    // Read the final value from A.
    let final_value = {
        let mut b = [0u8; 8];
        let done = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
        let d2 = done.clone();
        let (ta, ma) = (trans_a.clone(), rig.host_a.mem.clone());
        rig.exec.spawn("final-read", move |_| {
            let mut buf = [0u8; 8];
            ta.read(ctx_a, base, &mut buf, &ma).unwrap();
            *d2.lock() = u64::from_be_bytes(buf);
        });
        rig.exec.run_until_idle();
        let v = *done.lock();
        b[..].copy_from_slice(&v.to_be_bytes());
        v
    };
    println!("final counter: {final_value} (expected {})", 2 * TURNS);
    println!("node A stats: {:?}", node_a.stats());
    println!("node B stats: {:?}", node_b.stats());
    assert_eq!(final_value, 2 * TURNS);
    assert!(node_a.stats().invalidations + node_b.stats().invalidations >= TURNS);
    println!("dsm counter OK");
}
