//! The networked video system of §1.2 / §5.4: a server that streams
//! frames from its file system straight onto the network, a `SendPacket`
//! multicast extension, and clients that decompress to the framebuffer.
//!
//! Run with: `cargo run --example video_system`

use spin_os::fs::{BufferCache, FileSystem, LruPolicy};
use spin_os::net::{Medium, TwoHosts, VideoClient, VideoServer};
use spin_os::sal::HostId;

fn main() {
    let rig = TwoHosts::new();

    // Put a 2 MB "movie" on the server's disk.
    let cache = BufferCache::new(
        rig.host_a.disk.clone(),
        rig.exec.clone(),
        256,
        Box::new(LruPolicy::default()),
    );
    let fs = FileSystem::format(cache, 0, 1000);
    let fs2 = fs.clone();
    rig.exec.spawn("mkfs", move |ctx| {
        fs2.create("/movie.mjpeg").unwrap();
        let movie: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
        fs2.write_file(ctx, "/movie.mjpeg", &movie).unwrap();
    });
    rig.exec.run_until_idle();

    // Client extension on host B: decompress + blit.
    let client = VideoClient::install(&rig.b);

    // Server extensions on host A: reader/sender strand + multicast
    // handler on SendPacket. 30 frames/s, ~12.5 KB frames ≈ 3 Mb/s per
    // stream, over the T3 DMA interface as in Figure 6.
    let frames = 30;
    let server = VideoServer::start(&rig.a, fs, "/movie.mjpeg", 12_500, 30, frames, 8_000);
    server.add_client(rig.b.ip_on(Medium::T3));
    server.add_client(rig.b.ip_on(Medium::T3)); // a second stream

    let t0 = rig.exec.clock().now();
    rig.exec.run_until_idle();
    let elapsed = rig.exec.clock().now() - t0;

    let ss = server.stats();
    let cs = client.stats();
    println!(
        "server: {} frames sent, {} packets multicast, {} bytes read",
        ss.frames_sent, ss.packets_multicast, ss.bytes_read
    );
    println!(
        "client: {} packets, {} bytes decompressed and displayed",
        cs.packets, cs.bytes
    );
    let server_busy = rig.exec.host_busy(HostId(0));
    println!(
        "elapsed {:.1} ms virtual; server CPU busy {:.1} ms ({:.1}% utilization)",
        elapsed as f64 / 1e6,
        server_busy as f64 / 1e6,
        100.0 * server_busy as f64 / elapsed as f64
    );

    assert_eq!(ss.frames_sent, frames);
    assert!(cs.bytes >= 2 * frames * 12_500, "both streams delivered");
    println!("video system OK");
}
