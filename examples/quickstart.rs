//! Quickstart: boot a SPIN kernel, export a Console service, and load the
//! paper's Figure 1 `Gatekeeper` extension.
//!
//! Demonstrates the four §1.1 techniques end to end: co-location (the
//! extension runs in the kernel), enforced modularity (the console handle
//! is opaque), logical protection domains (the extension is an object file
//! resolved against the kernel's exports), and dynamic call binding (the
//! console's `Write` is an event another extension can observe).
//!
//! Run with: `cargo run --example quickstart`

use spin_os::core::{Dispatcher, Event, Identity, Interface, Kernel, ObjectFileBuilder};
use spin_os::sal::SimBoard;
use std::sync::Arc;

/// The opaque console capability (the paper's `Console.T`).
struct ConsoleT {
    device: spin_os::sal::devices::console::Console,
}

/// What the Console interface exports: typed procedures (which are also
/// events — "any procedure exported by an interface is also an event").
struct ConsoleService {
    write: Event<(Arc<ConsoleT>, String), ()>,
    open: Arc<dyn Fn() -> Arc<ConsoleT> + Send + Sync>,
}

fn main() {
    // Boot a kernel on one simulated Alpha workstation.
    let board = SimBoard::new();
    let host = board.new_host(256);
    let kernel = Kernel::boot(host.clone());
    let dispatcher: &Dispatcher = kernel.dispatcher();

    // --- The Console implementation module exports itself (Figure 1). ---
    let console = Arc::new(ConsoleT {
        device: host.console.clone(),
    });
    let (write_ev, write_owner) = dispatcher
        .define::<(Arc<ConsoleT>, String), ()>("Console.Write", Identity::kernel("Console"));
    write_owner
        .set_primary(|(t, msg): &(Arc<ConsoleT>, String)| {
            t.device.put_str(msg);
        })
        .expect("fresh event");
    let open_console = console.clone();
    let service = Arc::new(ConsoleService {
        write: write_ev.clone(),
        open: Arc::new(move || open_console.clone()),
    });
    kernel.publish(Interface::new("ConsoleService").export("service", service));

    // --- The Gatekeeper extension links against it dynamically. ---
    let mut gatekeeper = ObjectFileBuilder::new("gatekeeper");
    let console_import = gatekeeper.import::<ConsoleService>("ConsoleService", "service");
    let domain = kernel
        .load_extension(gatekeeper.sign())
        .expect("gatekeeper links");
    println!(
        "loaded extension domain: {domain:?} (fully resolved: {})",
        domain.fully_resolved()
    );

    // IntruderAlert(): exactly the Figure 1 body. The extension holds an
    // opaque Console.T — it cannot reach the device fields, only the
    // interface procedures.
    let svc = console_import.get().expect("resolved at load time");
    let c = (svc.open)();
    svc.write
        .raise((c.clone(), "Intruder Alert".to_string()))
        .expect("console write");

    // --- Dynamic call binding: a monitoring extension observes writes. ---
    write_ev
        .install(
            Identity::extension("auditor"),
            |(_, msg): &(Arc<ConsoleT>, String)| {
                println!("auditor saw a console write: {msg:?}");
            },
        )
        .expect("auditor may observe");
    svc.write
        .raise((c, " -- second alert".to_string()))
        .expect("console write");

    println!("console output: {:?}", host.console.output());
    println!(
        "virtual time elapsed: {:.1} µs on the DEC Alpha AXP 3000/400 profile",
        board.clock.now() as f64 / 1000.0,
    );

    assert_eq!(host.console.output(), "Intruder Alert -- second alert");
    println!("quickstart OK");
}
