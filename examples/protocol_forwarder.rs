//! The §5.3 protocol forwarder: an extension that splices a port's
//! traffic — data *and* control packets — to a secondary host, preserving
//! TCP's end-to-end semantics (Table 6's experiment).
//!
//! Run with: `cargo run --example protocol_forwarder`

use spin_os::net::{Forwarder, Medium, TcpStack, ThreeHosts};
use std::sync::Arc;

fn main() {
    // A = client, B = forwarder, C = the real server.
    let rig = ThreeHosts::new();
    let fwd_udp = Forwarder::install_udp(&rig.b, 7, rig.c.ip_on(Medium::Ethernet));
    let fwd_tcp = Forwarder::install_tcp(&rig.b, 80, rig.c.ip_on(Medium::Ethernet));
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_c = TcpStack::install(&rig.c);

    // UDP echo service on C.
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
        let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
    })
    .unwrap();

    // TCP service on C: a single strand parked on a readiness poller —
    // the listener is token 0, each accepted connection gets its own.
    let listener = tcp_c.listen(80);
    let poller = spin_net::NetPoller::new(&rig.c);
    poller.add(listener.as_ref(), 0, spin_net::interest::ACCEPT);
    let server_strand = rig.exec.spawn("tcp-server", move |ctx| {
        let mut conns = std::collections::BTreeMap::new();
        let mut next_token = 1u64;
        loop {
            for (token, _mask) in poller.wait(ctx) {
                if token == 0 {
                    while let Some(conn) = listener.try_accept() {
                        poller.add(conn.as_ref(), next_token, spin_net::interest::READABLE);
                        conns.insert(next_token, conn);
                        next_token += 1;
                    }
                } else if let Some(conn) = conns.remove(&token) {
                    let req = conn.try_recv().unwrap_or_default();
                    let reply = format!("you said {} bytes via {:?}", req.len(), conn.peer().0);
                    conn.send(ctx, reply.as_bytes()).unwrap();
                    conn.close(ctx);
                }
            }
        }
    });
    rig.exec.set_daemon(server_strand);

    // Client on A talks only to B — the forwarder is transparent.
    let b_ip = rig.b.ip_on(Medium::Ethernet);
    let a = rig.a.clone();
    let reply_ch = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).unwrap();
    let clock = rig.exec.clock().clone();
    rig.exec.spawn("client", move |ctx| {
        // UDP round trip through the splice.
        let t0 = clock.now();
        a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
        let echo = reply_ch.recv(ctx).expect("forwarded echo");
        println!(
            "UDP 16-byte round trip through the forwarder: {:.0} µs ({} bytes back)",
            (clock.now() - t0) as f64 / 1e3,
            echo.payload.len()
        );

        // Full TCP connection through the splice: SYN, data, FIN all
        // forwarded.
        let t1 = clock.now();
        let conn = tcp_a
            .connect(ctx, b_ip, 80)
            .expect("handshake through forwarder");
        conn.send(ctx, b"hello across the splice").unwrap();
        let reply = conn.recv(ctx).expect("reply");
        conn.close(ctx);
        println!(
            "TCP request/reply through the forwarder: {:.0} µs — server said: {}",
            (clock.now() - t1) as f64 / 1e3,
            String::from_utf8_lossy(&reply)
        );
    });
    rig.exec.run_until_idle();

    println!("UDP forwarder stats: {:?}", fwd_udp.stats());
    println!("TCP forwarder stats: {:?}", fwd_tcp.stats());
    let u = fwd_udp.stats();
    assert_eq!((u.forwarded, u.replies), (1, 1));
    assert!(
        fwd_tcp.stats().forwarded >= 3,
        "SYN + data + ACKs + FIN all spliced"
    );
    let _ = Arc::strong_count(&Arc::new(()));
    println!("protocol forwarder OK");
}
