//! The §1.2 UNIX server: processes with copy-on-write fork, descriptors,
//! pipes — a shell-style pipeline `producer | consumer` run on SPIN.
//!
//! Run with: `cargo run --example unix_server`

use spin_os::core::Kernel;
use spin_os::fs::{BufferCache, FileSystem, LruPolicy};
use spin_os::sal::SimBoard;
use spin_os::sched::Executor;
use spin_os::vm::{UnixAsExtension, VmService};
use spin_unix::{UnixServer, SYSCALL_BASE};

fn main() {
    let board = SimBoard::new();
    let host = board.new_host(512);
    let exec = Executor::for_host(&host);
    let kernel = Kernel::boot(host.clone());
    let vm = VmService::install(&kernel);
    let unix_vm = UnixAsExtension::install(
        vm.trans.clone(),
        vm.phys.clone(),
        vm.virt.clone(),
        host.mem.clone(),
    );
    let cache = BufferCache::new(
        host.disk.clone(),
        exec.clone(),
        64,
        Box::new(LruPolicy::default()),
    );
    let fs = FileSystem::format(cache, 0, 400);
    let server = UnixServer::start(&kernel, exec.clone(), unix_vm, fs);

    let srv = server.clone();
    let exec2 = exec.clone();
    exec.spawn("sh", move |ctx| {
        let sh = srv.spawn_init();
        println!("init pid {}", sh.0);

        // A memory image the children will inherit copy-on-write.
        let base = srv.sbrk(sh, 1).unwrap();
        srv.copyout(sh, base, b"shared environment").unwrap();

        // pipeline: producer | consumer
        let (rfd, wfd) = srv.pipe(sh).unwrap();
        let producer = srv.fork(sh).unwrap();
        let consumer = srv.fork(sh).unwrap();

        let srv_p = srv.clone();
        exec2.spawn("producer", move |pctx| {
            for line in ["alpha\n", "beta\n", "gamma\n"] {
                srv_p.write(pctx, producer, wfd, line.as_bytes()).unwrap();
            }
            srv_p.close(producer, wfd).unwrap();
            srv_p.close(producer, rfd).unwrap();
            srv_p.exit(producer, 0);
        });
        let srv_c = srv.clone();
        exec2.spawn("consumer", move |cctx| {
            srv_c.close(consumer, wfd).unwrap();
            let out = srv_c.open(consumer, "/tmp_out").unwrap();
            let mut lines = 0;
            loop {
                let chunk = srv_c.read(cctx, consumer, rfd, 64).unwrap();
                if chunk.is_empty() {
                    break;
                }
                lines += chunk.iter().filter(|&&b| b == b'\n').count();
                srv_c.write(cctx, consumer, out, &chunk).unwrap();
            }
            println!("consumer counted {lines} lines");
            srv_c.exit(consumer, lines as i32);
        });

        // The shell closes its pipe ends and reaps both children.
        srv.close(sh, rfd).unwrap();
        srv.close(sh, wfd).unwrap();
        let (_p1, s1) = srv.waitpid(ctx, sh).unwrap();
        let (_p2, s2) = srv.waitpid(ctx, sh).unwrap();
        println!("children exited with statuses {s1} and {s2}");
        assert_eq!(s1.max(s2), 3, "three lines flowed through the pipe");

        // The COW environment is untouched in the shell.
        let mut buf = [0u8; 18];
        srv.copyin(sh, base, &mut buf).unwrap();
        assert_eq!(&buf, b"shared environment");
    });
    exec.run_until_idle();

    // The register-only band goes through Trap.SystemCall.
    assert_eq!(
        kernel.syscall(SYSCALL_BASE + 1, [0; 6]),
        1,
        "one live process (init)"
    );
    println!(
        "unix server OK — {} process(es) remain",
        server.process_count()
    );
}
