//! The §5.4 web server: HTTP directly in the kernel, with the hybrid
//! object-cache policy (LRU for small files, no-cache for large ones) over
//! an uncached file system — controlling the cache *and* avoiding double
//! buffering.
//!
//! Run with: `cargo run --example web_server`

use spin_os::fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
use spin_os::net::{http_get, HttpServer, Medium, TcpStack, TwoHosts};
use std::sync::Arc;

fn main() {
    let rig = TwoHosts::new();
    let tcp_client = TcpStack::install(&rig.a);
    let tcp_server = TcpStack::install(&rig.b);

    // The server's file system runs with NO block caching: the HTTP
    // extension's object cache is the only cache (no double buffering).
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 2000);
    let fs2 = fs.clone();
    rig.exec.spawn("content", move |ctx| {
        fs2.mkdir("/www").unwrap();
        fs2.create("/www/index.html").unwrap();
        fs2.write_file(ctx, "/www/index.html", b"<html>SPIN web server</html>")
            .unwrap();
        fs2.create("/www/paper.ps").unwrap();
        fs2.write_file(ctx, "/www/paper.ps", &vec![0x25u8; 300_000])
            .unwrap();
    });
    rig.exec.run_until_idle();

    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 64 * 1024,
        }),
    ));
    let server = HttpServer::start(&rig.b, &tcp_server, fs, cache, 80);

    // A client fetches the small page twice (second is cached) and the
    // large file twice (never cached).
    let dst = rig.b.ip_on(Medium::Ethernet);
    let clock = rig.exec.clock().clone();
    let tcp2 = tcp_client.clone();
    rig.exec.spawn("browser", move |ctx| {
        for path in [
            "/www/index.html",
            "/www/index.html",
            "/www/paper.ps",
            "/www/paper.ps",
        ] {
            let t0 = clock.now();
            let (status, body) = http_get(ctx, &tcp2, dst, 80, path).expect("response");
            println!(
                "GET {path:<18} -> {status} ({} bytes) in {:.2} ms",
                body.len(),
                (clock.now() - t0) as f64 / 1e6
            );
        }
    });
    rig.exec.run_until_idle();

    let stats = server.stats();
    let cstats = server.cache().stats();
    println!("server stats: {stats:?}");
    println!("object cache: {cstats:?}");
    assert_eq!(stats.ok, 4);
    assert_eq!(cstats.hits, 1, "second index fetch is a cache hit");
    assert_eq!(cstats.bypasses, 2, "large file is never cached");
    println!("web server OK");
}
