//! Extensible scheduling (§4.2): observe strand events through the
//! dispatcher and replace the global scheduling policy with an
//! application-specific one.
//!
//! "An application can provide its own thread package and scheduler that
//! executes within the kernel." Here a shortest-job-first policy replaces
//! the default round-robin priority scheduler, and a profiler extension
//! watches `Strand.Resume` events to report the schedule.
//!
//! Run with: `cargo run --example custom_scheduler`

use parking_lot::Mutex;
use spin_os::core::{Dispatcher, Identity};
use spin_os::sal::SimBoard;
use spin_os::sched::{Executor, SchedulerPolicy, StrandEvents, StrandId, StrandRef};
use std::collections::HashMap;
use std::sync::Arc;

/// An application-specific policy: shortest declared job first.
struct ShortestJobFirst {
    declared: Arc<Mutex<HashMap<StrandId, u64>>>,
    ready: Vec<StrandId>,
}

impl SchedulerPolicy for ShortestJobFirst {
    fn enqueue(&mut self, strand: StrandId, _priority: u8) {
        self.ready.push(strand);
    }
    fn dequeue(&mut self) -> Option<StrandId> {
        if self.ready.is_empty() {
            return None;
        }
        let declared = self.declared.lock();
        let (i, _) = self
            .ready
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| declared.get(s).copied().unwrap_or(u64::MAX))?;
        Some(self.ready.remove(i))
    }
    fn remove(&mut self, strand: StrandId) {
        self.ready.retain(|&s| s != strand);
    }
    fn name(&self) -> &'static str {
        "shortest-job-first"
    }
}

fn main() {
    let board = SimBoard::new();
    let exec = Executor::new(
        board.clock.clone(),
        board.timers.clone(),
        board.profile.clone(),
    );
    let dispatcher = Dispatcher::new(board.clock.clone(), board.profile.clone());
    let events = StrandEvents::attach(&exec, &dispatcher);

    // A profiler extension observes every Resume through the dispatcher.
    let schedule = Arc::new(Mutex::new(Vec::new()));
    let s2 = schedule.clone();
    events
        .resume
        .install(Identity::extension("profiler"), move |s: &StrandRef| {
            s2.lock().push(s.0);
        })
        .expect("observe resumes");

    // Declare three jobs with different lengths, spawned long-first.
    let declared = Arc::new(Mutex::new(HashMap::new()));
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut ids = Vec::new();
    for (name, work) in [
        ("long", 9_000_000u64),
        ("medium", 3_000_000),
        ("short", 500_000),
    ] {
        let order2 = order.clone();
        let id = exec.spawn(name, move |ctx| {
            ctx.work(work);
            order2.lock().push(name);
        });
        declared.lock().insert(id, work);
        ids.push(id);
    }

    // Swap in the application-specific policy (a trusted operation; "the
    // global scheduling policy is replaceable").
    exec.set_policy(Box::new(ShortestJobFirst {
        declared: declared.clone(),
        ready: Vec::new(),
    }));

    exec.run_until_idle();
    println!("completion order under SJF: {:?}", order.lock());
    println!("resume trace: {:?}", schedule.lock());
    assert_eq!(*order.lock(), vec!["short", "medium", "long"]);
    println!("custom scheduler OK");
}
