//! Extensible memory management (§4.1): compose the three services, fork
//! an address space with copy-on-write, and demand-page a region from
//! disk — all through extensions handling `Translation.*` fault events.
//!
//! Run with: `cargo run --example fault_handling`

use parking_lot::Mutex;
use spin_os::core::Kernel;
use spin_os::sal::{Protection, SimBoard};
use spin_os::sched::Executor;
use spin_os::vm::{DiskPager, UnixAsExtension, VmService};
use std::sync::Arc;

fn main() {
    let board = SimBoard::new();
    let host = board.new_host(512);
    let exec = Executor::for_host(&host);
    let kernel = Kernel::boot(host.clone());
    let vm = VmService::install(&kernel);

    // --- §4.1's composition: a page, a frame, a mapping. ---
    let ctx_id = vm.trans.create();
    let v = vm.virt.allocate(1).unwrap();
    let p = vm.phys.allocate(1, Default::default()).unwrap();
    vm.trans
        .add_mapping(ctx_id, &v, &p, Protection::READ_WRITE)
        .unwrap();
    vm.trans
        .write(ctx_id, v.base(), b"composed from three services", &host.mem)
        .unwrap();
    println!("mapped one page at {:#x} and wrote through it", v.base());

    // --- The UNIX address-space extension: fork with COW. ---
    let unix = UnixAsExtension::install(
        vm.trans.clone(),
        vm.phys.clone(),
        vm.virt.clone(),
        host.mem.clone(),
    );
    let parent = unix.create();
    let base = unix.allocate(&parent, 2, Protection::READ_WRITE).unwrap();
    unix.write(&parent, base, b"inherited data").unwrap();
    let child = unix.copy(&parent).unwrap();
    println!(
        "forked: {} copy-on-write shares pending",
        unix.cow_pending()
    );
    unix.write(&child, base, b"child's own data").unwrap(); // triggers COW
    let mut buf = [0u8; 14];
    unix.read(&parent, base, &mut buf).unwrap();
    println!("parent still sees: {:?}", String::from_utf8_lossy(&buf));
    assert_eq!(&buf, b"inherited data");
    unix.read(&child, base, &mut buf).unwrap();
    assert_eq!(&buf, b"child's own da");

    // --- Demand paging from disk. ---
    // Stage recognizable data on disk blocks 50..52.
    use spin_os::sal::devices::disk::{BlockId, DiskRequest, BLOCK_SIZE};
    for (b, fill) in [(50u64, b'S'), (51, b'P')] {
        let disk = host.disk.clone();
        exec.spawn("stage", move |ctx| {
            let exec = ctx.executor().clone();
            let me = ctx.id();
            disk.submit(
                DiskRequest::Write(BlockId(b), vec![fill; BLOCK_SIZE]),
                move |r| {
                    r.unwrap();
                    exec.unblock(me);
                },
            );
            ctx.block();
        });
    }
    exec.run_until_idle();

    let paged_ctx = vm.trans.create();
    let region = vm.virt.allocate(2).unwrap();
    vm.trans.reserve(paged_ctx, &region).unwrap();
    let pager = DiskPager::install(
        exec.clone(),
        vm.trans.clone(),
        vm.phys.clone(),
        host.disk.clone(),
        paged_ctx,
        region.clone(),
        50,
    );

    let trans = vm.trans.clone();
    let mem = host.mem.clone();
    let base = region.base();
    let result = Arc::new(Mutex::new(Vec::new()));
    let r2 = result.clone();
    exec.spawn("app", move |_| {
        let mut b = [0u8; 1];
        trans.read(paged_ctx, base, &mut b, &mem).unwrap();
        r2.lock().push(b[0]);
        trans
            .read(paged_ctx, base + BLOCK_SIZE as u64, &mut b, &mem)
            .unwrap();
        r2.lock().push(b[0]);
    });
    exec.run_until_idle();
    println!(
        "demand-paged bytes: {:?}; pager stats: {:?}",
        String::from_utf8_lossy(&result.lock()),
        pager.stats()
    );
    assert_eq!(*result.lock(), vec![b'S', b'P']);
    assert_eq!(pager.stats().faults, 2);
    println!("fault handling OK");
}
