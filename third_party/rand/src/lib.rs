//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`] (SplitMix64 — not cryptographic, but
//! deterministic and well distributed, which is all the lottery scheduler
//! and tests need), [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges.

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<Range<T>>,
        Self: Sized,
    {
        let range = range.into();
        T::sample(self, range)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types uniformly sampleable from a [`Range`].
pub trait SampleUniform: Sized {
    /// A uniform draw from `range`.
    fn sample<G: RngCore>(g: &mut G, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: RngCore>(g: &mut G, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift rejection-free mapping: bias is negligible
                // for the simulation's spans (all far below 2^32).
                let draw = ((g.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
