//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable view into shared storage
//! (`Arc<[u8]>` plus a sub-range); [`Bytes::slice`] is O(1) and never
//! copies. [`BytesMut`] is a growable buffer that freezes into [`Bytes`].

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a static slice (copied here; the upstream crate
    /// keeps the reference, but the semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An O(1) sub-view sharing the same storage.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} of {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

/// Write access to a growable buffer (big-endian `put_*`, as on the wire).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_a_shared_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s.slice(1..), [3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_mut_builds_wire_frames() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u16(0x0800);
        m.put_u32(7);
        m.extend_from_slice(b"x");
        let b = m.freeze();
        assert_eq!(b, [0xAB, 0x08, 0x00, 0, 0, 0, 7, b'x']);
    }
}
