//! Offline shim for the `criterion` crate.
//!
//! Measures wall-clock ns/iter with a warm-up phase followed by timed
//! batches, and prints one line per benchmark in criterion's familiar
//! `name  time: [...]` shape. No statistical machinery beyond mean over
//! timed batches and min/max batch means — adequate for the order-of-
//! magnitude claims the repository's benches substantiate.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness root.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            name,
            measurement: Duration::from_millis(400),
            warm_up: Duration::from_millis(150),
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            id,
            Duration::from_millis(400),
            Duration::from_millis(150),
            f,
        );
    }
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    warm_up: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{id}", self.name),
            self.measurement,
            self.warm_up,
            f,
        );
    }

    /// Benchmarks `f` with a displayed input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.measurement,
            self.warm_up,
            |b| f(b, input),
        );
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the hot code.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    /// (total ns, total iters, min batch mean, max batch mean)
    outcome: Option<(u128, u64, f64, f64)>,
}

impl Bencher {
    /// Times `f` over repeated calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also calibrates the per-batch iteration count.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let per_batch = (warm_iters / 20).max(1);

        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        let (mut min_mean, mut max_mean) = (f64::INFINITY, f64::NEG_INFINITY);
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos();
            let mean = ns as f64 / per_batch as f64;
            min_mean = min_mean.min(mean);
            max_mean = max_mean.max(mean);
            total_ns += ns;
            total_iters += per_batch;
        }
        self.outcome = Some((total_ns, total_iters, min_mean, max_mean));
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }

        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        let (mut min_mean, mut max_mean) = (f64::INFINITY, f64::NEG_INFINITY);
        let deadline = Instant::now() + self.measurement;
        let mut remaining = (warm_iters * 3).max(1);
        while Instant::now() < deadline && remaining > 0 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let ns = t0.elapsed().as_nanos();
            min_mean = min_mean.min(ns as f64);
            max_mean = max_mean.max(ns as f64);
            total_ns += ns;
            total_iters += 1;
            remaining -= 1;
        }
        self.outcome = Some((total_ns, total_iters, min_mean, max_mean));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement: Duration,
    warm_up: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        measurement,
        warm_up,
        outcome: None,
    };
    f(&mut b);
    match b.outcome {
        Some((total_ns, iters, min, max)) if iters > 0 => {
            let mean = total_ns as f64 / iters as f64;
            println!(
                "{label:<44} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(max)
            );
        }
        _ => println!("{label:<44} time: [no measurement]"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(2));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter_with_setup(|| vec![0u8; n as usize], |v| v.len())
        });
        g.finish();
    }
}
