//! Offline shim for the `proptest` crate.
//!
//! Runs each property over `cases` deterministically generated inputs.
//! The generator seed is derived from the test's module path and name plus
//! the case index, so failures reproduce exactly across runs without any
//! persistence file. There is no shrinking: a failing case panics with the
//! ordinary `assert!` message (inputs are reconstructible from the case
//! index, which is printed by [`test_runner::TestRng::for_case`] on entry
//! being re-run).

pub mod test_runner {
    /// Run configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one (test, case) pair.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// A uniform draw from `[lo, hi)` as usize.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy producing exactly one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_in(0, self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + frac * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

    /// `&str` patterns generate matching strings for the regex subset
    /// `(literal | [class])({n} | {m,n})?` — enough for patterns like
    /// `"[a-z]{3,8}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat min"),
                        n.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = rng.usize_in(min, max + 1);
            for _ in 0..count {
                out.push(alphabet[rng.usize_in(0, alphabet.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (see [`any`]).
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// The canonical strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index {
                raw: rng.next_u64() as usize,
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A size range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Generates `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `HashSet`s of `element` with a target size in `size`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.usize_in(self.size.min, self.size.max_exclusive);
            let mut set = HashSet::with_capacity(target);
            // Duplicates shrink the yield; bound the retries so tiny
            // alphabets cannot loop forever (the set may come up short,
            // as with upstream proptest's filtering).
            let mut attempts = 0;
            while set.len() < target && attempts < 20 * target + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    /// A position drawn independently of the collection it indexes.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: usize,
    }

    impl Index {
        /// This index projected onto a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__path, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-test inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_the_range(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_maps_and_tuples_compose(
            pair in prop_oneof![
                (1u32..5, any::<bool>()).prop_map(|(n, b)| (n, b)),
                Just((9u32, true)),
            ],
        ) {
            let (n, _b) = pair;
            prop_assert!((1..5).contains(&n) || n == 9);
        }

        #[test]
        fn string_patterns_match_their_class(
            s in prop::collection::hash_set("[a-z]{3,8}", 1..12),
        ) {
            for word in &s {
                prop_assert!(word.len() >= 3 && word.len() <= 8);
                prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..50);
        let a = strat.generate(&mut TestRng::for_case("t", 3));
        let b = strat.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
