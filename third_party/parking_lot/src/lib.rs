//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API: guards are
//! returned directly (no `Result`), and poisoning is ignored — a thread
//! panicking while holding a lock does not wedge every later acquirer,
//! which the deterministic executor's panic-isolation tests rely on.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard out by `&mut` reference; it is always `Some` outside `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits for a notification,
    /// reacquiring before returning (spurious wakeups possible).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning");
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(1u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
    }
}
