//! # spin-os — a Rust reproduction of the SPIN operating system
//!
//! This workspace reproduces *Extensibility, Safety and Performance in the
//! SPIN Operating System* (Bershad et al., SOSP 1995) as a deterministic
//! user-space simulation calibrated to the paper's 133 MHz DEC Alpha
//! testbed. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results for every table and figure.
//!
//! The facade re-exports each subsystem crate:
//!
//! * [`sal`] — simulated hardware: virtual clock, cost model, MMU,
//!   devices, wire;
//! * [`core`] — the extensibility machinery: domains, the in-kernel
//!   linker, the nameserver, capabilities, and the event dispatcher;
//! * [`rt`] — the mostly-copying garbage collector;
//! * [`sched`] — strands, the deterministic executor, schedulers, thread
//!   packages;
//! * [`vm`] — the PhysAddr/VirtAddr/Translation services and extensions;
//! * [`fs`] — the buffer cache and file system;
//! * [`net`] — the extensible protocol stack and its extensions;
//! * [`fault`] — the deterministic fault-injection plan driving the
//!   containment and quarantine machinery in [`core`];
//! * [`baseline`] — the DEC OSF/1 and Mach 3.0 comparison models.
//!
//! ## Quickstart
//!
//! ```
//! use spin_os::core::{Identity, Interface, Kernel, ObjectFileBuilder};
//! use spin_os::sal::SimBoard;
//! use std::sync::Arc;
//!
//! // Boot a kernel on a simulated Alpha workstation.
//! let board = SimBoard::new();
//! let kernel = Kernel::boot(board.new_host(256));
//!
//! // A core service exports an interface into SpinPublic.
//! kernel.publish(Interface::new("Math").export("answer", Arc::new(42u32)));
//!
//! // An extension (a compiler-signed object file) imports it and is
//! // dynamically linked into the kernel.
//! let mut module = ObjectFileBuilder::new("my-extension");
//! let answer = module.import::<u32>("Math", "answer");
//! kernel.load_extension(module.sign()).unwrap();
//! assert_eq!(*answer.get().unwrap(), 42);
//!
//! // Extensions define application-specific system calls.
//! kernel
//!     .register_syscalls(Identity::extension("my-extension"), 100..101, |sc| {
//!         sc.args[0] as i64 * 2
//!     })
//!     .unwrap();
//! assert_eq!(kernel.syscall(100, [21, 0, 0, 0, 0, 0]), 42);
//! ```

pub use spin_baseline as baseline;
pub use spin_core as core;
pub use spin_fault as fault;
pub use spin_fs as fs;
pub use spin_net as net;
pub use spin_rt as rt;
pub use spin_sal as sal;
pub use spin_sched as sched;
pub use spin_vm as vm;
